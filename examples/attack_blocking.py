#!/usr/bin/env python3
"""Attack anatomy: watch RowBlocker stop a double-sided attack.

Drives a single aggressor row against a standalone RowBlocker (no full
system simulation) and prints the activation timeline: the initial
tRC-paced burst, the blacklisting moment at NBL, and the tDelay-paced
trickle afterwards.  Then verifies the sliding-window guarantee: no
refresh-window-sized interval ever contains more than NRH* activations.

Run:  python examples/attack_blocking.py
"""

from repro import BlockHammerConfig
from repro.security.adversary import OptimalAttacker, max_acts_in_any_window


def main() -> None:
    # A scaled configuration so the timeline is visible at a glance:
    # NRH*=256, NBL=128, 1 ms refresh window.
    config = BlockHammerConfig(
        nrh=512,
        t_refw_ns=1_000_000.0,
        t_cbf_ns=1_000_000.0,
        nbl=128,
        cbf_size=1024,
    )
    print("configuration:")
    for key, value in config.summary().items():
        print(f"  {key:>18}: {value}")

    attacker = OptimalAttacker(config)
    times = attacker.run(duration_ns=2 * config.t_refw_ns, row=1000)

    print(f"\nthe greedy attacker managed {len(times)} activations in 2 windows")
    print("\nactivation gaps (ns):")
    print(f"  first 5 (burst phase):    {[round(b - a) for a, b in zip(times, times[1:6])]}")
    around = config.nbl
    print(
        f"  around blacklisting (#{around}): "
        f"{[round(b - a) for a, b in zip(times[around - 2:], times[around - 1: around + 3])]}"
    )
    print(f"  last 3 (throttled):       {[round(b - a) for a, b in zip(times[-4:], times[-3:])]}")

    worst = max_acts_in_any_window(times, config.t_refw_ns)
    print(
        f"\nworst sliding refresh window: {worst} activations "
        f"(NRH* budget: {config.nrh_star:.0f}) -> "
        f"{'SAFE' if worst <= config.nrh_star else 'UNSAFE'}"
    )
    assert worst <= config.nrh_star


if __name__ == "__main__":
    main()
