#!/usr/bin/env python3
"""Quickstart: protect a simulated system with BlockHammer.

Builds an eight-thread system (one double-sided RowHammer attacker plus
seven benign SPEC-like applications), runs it unprotected and then under
BlockHammer, and prints the paper's headline comparison: bit-flips,
benign performance, attacker throughput, and DRAM energy.

Run:  python examples/quickstart.py
"""

from repro import HarnessConfig, Runner, attack_mixes, format_table


def main() -> None:
    # A 1/128-scale refresh window keeps the simulation snappy while
    # preserving every threshold ratio (see DESIGN.md, substitution 3).
    hcfg = HarnessConfig(scale=128, paper_nrh=32768, instructions_per_thread=80_000)
    runner = Runner(hcfg)
    mix = attack_mixes(1)[0]
    print(f"workload: {', '.join(mix.app_names)}")
    print(f"RowHammer threshold: {hcfg.paper_nrh} (simulated at {hcfg.sim_nrh})\n")

    rows = []
    for mechanism in ("none", "blockhammer"):
        outcome = runner.run_mix(mix, mechanism)
        benign_ipc = sum(t.ipc for t in outcome.result.threads[1:]) / 7
        attacker = outcome.result.threads[0]
        rows.append(
            [
                mechanism,
                outcome.bitflips,
                round(benign_ipc, 3),
                attacker.mem.activations,
                round(outcome.energy.total_mj, 3),
            ]
        )

    print(
        format_table(
            ["mechanism", "bit-flips", "benign IPC", "attacker ACTs", "DRAM energy (mJ)"],
            rows,
        )
    )
    base, bh = rows
    print(
        f"\nBlockHammer: {base[1]} -> {bh[1]} bit-flips, "
        f"benign IPC {base[2]} -> {bh[2]} "
        f"({(bh[2] / base[2] - 1) * 100:+.1f}%), "
        f"DRAM energy {(bh[4] / base[4] - 1) * 100:+.1f}%"
    )


if __name__ == "__main__":
    main()
