#!/usr/bin/env python3
"""Compare all seven mitigation mechanisms under an active attack.

Reproduces a single-mix slice of Figure 5's "RowHammer attack present"
scenario: for each mechanism, benign weighted speedup (normalized to the
unprotected baseline), DRAM energy, victim refreshes issued, and whether
any bit flipped.

Run:  python examples/mechanism_comparison.py
"""

from repro import HarnessConfig, Runner, attack_mixes, compute_metrics, format_table
from repro.mitigations.registry import PAPER_MECHANISMS


def main() -> None:
    hcfg = HarnessConfig(scale=128, paper_nrh=32768, instructions_per_thread=80_000)
    runner = Runner(hcfg)
    mix = attack_mixes(1)[0]
    print(f"workload: attacker + {', '.join(mix.app_names[1:])}\n")

    baseline = runner.run_mix(mix, "none")
    shared, alone = runner.benign_ipc_maps(mix, baseline)
    base_metrics = compute_metrics(shared, alone)
    base_energy = baseline.energy.total_j

    rows = [["none (baseline)", 1.0, 1.0, 0, baseline.bitflips]]
    for name in PAPER_MECHANISMS:
        outcome = runner.run_mix(mix, name)
        shared, alone = runner.benign_ipc_maps(mix, outcome)
        metrics = compute_metrics(shared, alone)
        rows.append(
            [
                name,
                round(metrics.weighted_speedup / base_metrics.weighted_speedup, 3),
                round(outcome.energy.total_j / base_energy, 3),
                outcome.result.victim_refreshes,
                outcome.bitflips,
            ]
        )

    print(
        format_table(
            ["mechanism", "norm. weighted speedup", "norm. DRAM energy", "victim refreshes", "bit-flips"],
            rows,
        )
    )
    print(
        "\nreading the table: reactive mechanisms (PARA...Graphene) spend"
        "\nvictim refreshes to stop the attack but leave benign performance"
        "\nat baseline; BlockHammer throttles the attacker instead, so"
        "\nbenign threads speed up and DRAM energy drops."
        "\n(probabilistic mechanisms may show residual flips here: their"
        "\nper-ACT probabilities are paper-scale-tuned, and the scaled"
        "\nwindow compresses NRH — see EXPERIMENTS.md, scaling caveats.)"
    )


if __name__ == "__main__":
    main()
