#!/usr/bin/env python3
"""Why commodity compatibility matters (Section 2.3).

Simulates a DRAM chip whose internal row mapping is scrambled (as real
vendors' proprietary mappings are).  A reactive-refresh mechanism
(Graphene) that assumes logical adjacency refreshes the wrong physical
rows and the attack succeeds; with vendor knowledge it succeeds in
protecting; BlockHammer protects without any mapping knowledge.

Run:  python examples/rowmap_ablation.py
"""

from repro import HarnessConfig, format_table
from repro.harness.experiments import rowmap_ablation


def main() -> None:
    hcfg = HarnessConfig(scale=128, paper_nrh=32768, instructions_per_thread=60_000)
    print("chip model: scrambled (proprietary) in-DRAM row mapping\n")
    rows = rowmap_ablation(hcfg, mechanisms=["graphene", "blockhammer"])
    print(
        format_table(
            ["mechanism", "adjacency knowledge", "bit-flips", "victim refreshes"],
            [
                [r["mechanism"], r["adjacency"], r["bitflips"], r["victim_refreshes"]]
                for r in rows
            ],
        )
    )
    print(
        "\nGraphene needs the proprietary mapping to find true victims;"
        "\nwith an assumed-linear mapping its refreshes land on the wrong"
        "\nrows and bits flip.  BlockHammer throttles aggressors by their"
        "\nactivation rate alone, so the mapping is irrelevant (Table 6,"
        "\n'compatible with commodity DRAM chips')."
    )


if __name__ == "__main__":
    main()
