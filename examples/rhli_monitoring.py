#!/usr/bin/env python3
"""RHLI as an OS-facing attack detector (Sections 3.2.1 and 3.2.3).

Runs BlockHammer in observe-only mode (blacklists and RHLI counters
active, no interference) and prints the per-thread RowHammer Likelihood
Index snapshot that BlockHammer can expose to the operating system — the
signal an OS scheduler could use to deschedule or kill an attacking
thread.

Run:  python examples/rhli_monitoring.py
"""

from repro import HarnessConfig, Runner, attack_mixes, format_table


def main() -> None:
    hcfg = HarnessConfig(scale=128, paper_nrh=32768, instructions_per_thread=80_000)
    runner = Runner(hcfg)
    mix = attack_mixes(1)[0]

    print("running in observe-only mode (no interference)...\n")
    outcome = runner.run_mix(mix, "blockhammer-observe")
    mechanism = outcome.mechanism

    rows = []
    for slot, app in enumerate(mix.app_names):
        rhli = mechanism.thread_max_rhli(slot)
        verdict = "ATTACK" if rhli > 1.0 else ("suspicious" if rhli > 0 else "benign")
        rows.append([slot, app, round(rhli, 3), verdict])
    print(format_table(["thread", "application", "max RHLI", "classification"], rows))

    snapshot = mechanism.throttler.rhli_snapshot()
    hot = sorted(snapshot.items(), key=lambda kv: -kv[1])[:5]
    print("\nhottest <thread, bank> pairs (the OS-exposed interface):")
    for (thread, bank), value in hot:
        print(f"  thread {thread}, bank {bank}: RHLI = {value:.2f}")

    print(
        "\nan RHLI above 1 means the thread activated blacklisted rows more"
        "\noften than a BlockHammer-protected system would ever allow —"
        "\na dependable indicator of a RowHammer attack (paper Sec. 3.2.1)."
    )
    assert mechanism.thread_max_rhli(0) > 1.0


if __name__ == "__main__":
    main()
