#!/bin/sh
# Chaos smoke: deterministic fault injection through the fault-tolerant
# sweep executor.  A worker crash (os._exit inside the child) breaks
# the process pool and the sweep rebuilds it, replays the victim, and
# converges to rows bit-identical to a fault-free run; an injected hang
# trips the per-job wall-clock timeout (kill, retry, converge — or a
# structured JobFailure once the attempt budget is spent); a corrupted
# cache entry is quarantined to *.corrupt and exactly that job
# re-simulates; an interrupted sweep resumes from its incremental
# checkpoints, executing only the jobs that never finished.  Pool-based
# tests self-skip where process pools cannot spawn.  Runs in seconds;
# part of tier-1 via the chaos_smoke marker.
#
# Usage: scripts/chaos_smoke.sh [extra pytest args]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -q -m chaos_smoke "$@"
