#!/usr/bin/env python
"""CI perf-regression guard: the hot loop must not get slower.

Re-measures the single-process hot-loop benchmarks (one attack mix
under ``none`` and under ``blockhammer``, best-of-N — section 3 of
``benchmarks/bench_speed.py``) and fails when the measured events/sec
falls more than ``--tolerance`` (default 20%) below the committed
``BENCH_speed.json`` baseline.

Only the singles run here: they take seconds, and events/sec is the
metric the optimization PRs move.  The full benchmark (sweeps, cache
replays, seed baseline) stays a manual ``benchmarks/bench_speed.py``
run whose output is committed.

Exit status: 0 = within tolerance, 1 = regression, 2 = baseline or
measurement problem.  Usage::

    PYTHONPATH=src python scripts/perf_guard.py [--tolerance 0.2] [--repeats 5]

``REPRO_PERF_TOLERANCE`` overrides the default tolerance (CI knob, no
workflow edit needed).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_speed.json"

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="allowed fractional events/sec drop vs baseline (default 0.20)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="best-of-N repeats per mechanism (default 5, as in bench_speed)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    if not BASELINE.exists():
        print(f"perf-guard: no baseline at {BASELINE}", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE.read_text())["current"]["single"]

    import bench_speed

    measured = bench_speed.measure_single_runs(repeats=args.repeats)

    failed = False
    for mechanism, row in measured.items():
        base = baseline.get(mechanism, {})
        base_rate = base.get("events_per_sec")
        rate = row.get("events_per_sec")
        if not base_rate or not rate:
            print(
                f"perf-guard: {mechanism}: missing events/sec "
                f"(baseline={base_rate}, measured={rate})",
                file=sys.stderr,
            )
            return 2
        floor = base_rate * (1.0 - args.tolerance)
        ratio = rate / base_rate
        verdict = "OK" if rate >= floor else "REGRESSION"
        print(
            f"perf-guard: {mechanism}: {rate} ev/s vs baseline {base_rate} "
            f"({ratio:.2f}x, floor {floor:.0f}) {verdict}"
        )
        if rate < floor:
            failed = True
    if failed:
        print(
            f"perf-guard: hot-loop event rate regressed more than "
            f"{args.tolerance:.0%} vs committed BENCH_speed.json",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
