"""Capture ``tests/golden_multichannel.json``.

Runs the canonical attack mix under BlockHammer (and one benign mix
under Graphene for reactive-refresh coverage) at 2 and 4 channels and
records every scheduling-sensitive ``SimResult`` field, per channel.
The fixture pins multi-channel results across scheduler rewrites the
same way ``golden_fig5.json`` pins single-channel results.

Provenance: first captured from the code *before* the incremental
FR-FCFS rewrite (PR 3); re-captured once during that PR when
``Selection.next_ready`` became a normative pure function of simulator
state.  The 2-channel rows and the single-channel ``golden_fig5.json``
were unchanged by the rewrite; the 4-channel attack row legitimately
shifted (~1.6% elapsed time) because the old policy's wake times were
implementation artifacts of its caching structure.  The re-captured
values are exactly what the naive :class:`ReferenceFrFcfsPolicy`
produces — verified bit-identical by ``tests/test_differential_scheduler
.py`` and re-asserted at capture time below — so the fixture's truth
now rests on the reference implementation, not on any historical
accident.

Usage::

    PYTHONPATH=src python scripts/capture_golden_multichannel.py

Only rerun this when a deliberate, differentially-validated semantic
change shifts multi-channel results; the point of the file is that the
current tree cannot quietly regenerate its own truth.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.harness.runner import HarnessConfig, Runner
from repro.workloads.mixes import attack_mixes, benign_mixes

CONFIG = {
    "scale": 128.0,
    "paper_nrh": 32768,
    "instructions_per_thread": 4000,
    "warmup_ns": 5000.0,
}

THREAD_FIELDS = (
    "reads",
    "writes",
    "row_hits",
    "row_misses",
    "row_conflicts",
    "activations",
    "read_latency_sum",
    "read_latency_count",
    "blocked_injections",
)


def capture(result, energy) -> dict:
    """Everything scheduling-sensitive in one JSON-friendly dict."""
    return {
        "mitigation": result.mitigation,
        "elapsed_ns": result.elapsed_ns,
        "counts": dataclasses.asdict(result.counts),
        "active_time_ns": result.active_time_ns,
        "refreshes": result.refreshes,
        "victim_refreshes": result.victim_refreshes,
        "commands_issued": result.commands_issued,
        "bitflips": len(result.bitflips),
        "energy_total_j": energy.total_j,
        "threads": [
            {
                "instructions": t.instructions,
                "finish_time_ns": t.finish_time_ns,
                "ipc": t.ipc,
                **{f: getattr(t.mem, f) for f in THREAD_FIELDS},
                "per_channel": [
                    {f: getattr(m, f) for f in THREAD_FIELDS}
                    for m in t.mem_per_channel
                ],
            }
            for t in result.threads
        ],
        "channels": [
            {
                "channel": c.channel,
                "counts": dataclasses.asdict(c.counts),
                "active_time_ns": c.active_time_ns,
                "bitflips": c.bitflips,
                "refreshes": c.refreshes,
                "victim_refreshes": c.victim_refreshes,
                "commands_issued": c.commands_issued,
                "refresh_phase_ns": c.refresh_phase_ns,
            }
            for c in result.channels
        ],
    }


def main() -> None:
    from repro.mem.scheduler import ReferenceFrFcfsPolicy

    runs = {}
    for channels in (2, 4):
        hcfg = HarnessConfig(num_channels=channels, **CONFIG)
        runner = Runner(hcfg)
        attack = runner.run_mix(attack_mixes(1)[0], "blockhammer")
        benign = runner.run_mix(benign_mixes(1)[0], "graphene")
        rows = {
            "attack_blockhammer": capture(attack.result, attack.energy),
            "benign_graphene": capture(benign.result, benign.energy),
        }
        # The fixture's legitimacy check: what we pin is exactly what
        # the naive reference policy produces.
        ref = Runner(hcfg, policy=ReferenceFrFcfsPolicy())
        ref_attack = ref.run_mix(attack_mixes(1)[0], "blockhammer")
        assert capture(ref_attack.result, ref_attack.energy) == rows["attack_blockhammer"], (
            f"fast policy disagrees with ReferenceFrFcfsPolicy at {channels} channels"
        )
        runs[str(channels)] = rows
    out = {"config": CONFIG, "runs": runs}
    path = pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden_multichannel.json"
    path.write_text(json.dumps(out, indent=1))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
