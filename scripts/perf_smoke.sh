#!/bin/sh
# Fast perf smoke: tiny sweeps through the parallel experiment executor
# (job pickling, pool fan-out, extractor transport, keyed assembly),
# through the persistent result cache — one 2-channel job goes through
# the pool+cache path cold then warm, asserting the warm run performs
# zero simulations — a cached channel-sweep smoke: the {1,2,4}
# channel-scaling driver cold-stores then warm-replays with zero
# simulations while emitting per-channel attribution rows for every
# sweep point — and a differential scheduler smoke: one attack seed
# simulated under both the incremental FR-FCFS policy and the naive
# ReferenceFrFcfsPolicy, asserting bit-identical command streams and
# result rows — and an OS-governor sweep smoke: the ossweep driver
# cold-stores then warm-replays with zero simulations while governor
# policies (kill/quota/migrate) actually fire — plus the observability
# acceptance smokes (obs_smoke): a traced attack-mix BlockHammer run
# whose trace-event counts match the SimResult counters exactly and
# whose results stay bit-identical with tracing on.  Runs in seconds;
# part of tier-1 via the markers.
#
# Usage: scripts/perf_smoke.sh [extra pytest args]
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -q -m "perf_smoke or obs_smoke" "$@"
