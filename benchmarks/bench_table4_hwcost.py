"""Table 4: per-rank area, access energy, and static power of
BlockHammer and the six baselines at NRH = 32K and NRH = 1K.

BlockHammer's row is computed from its actual configuration; baseline
rows follow their published sizing rules / anchors (see
``repro.hwcost.mechanisms``).  The assertions check the paper's
*scaling* claims rather than absolute values.
"""

from repro.harness.reporting import format_table
from repro.hwcost.mechanisms import mechanism_cost, table4_rows


def _rows():
    out = []
    for cost in table4_rows((32768, 1024)):
        out.append(
            [
                cost.name,
                cost.nrh,
                round(cost.sram_kb, 2),
                round(cost.cam_kb, 2),
                round(cost.total_area_mm2, 3),
                round(cost.cpu_area_percent, 3),
                round(cost.access_energy_pj, 1),
                round(cost.static_power_mw, 1),
            ]
        )
    return out


def test_table4_hardware_cost(benchmark, save_report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    save_report(
        "table4_hwcost",
        format_table(
            ["mechanism", "NRH", "SRAM KB", "CAM KB", "mm2", "% CPU", "pJ/access", "mW"],
            rows,
        ),
    )

    bh32 = mechanism_cost("blockhammer", 32768)
    bh1 = mechanism_cost("blockhammer", 1024)
    twice1 = mechanism_cost("twice", 1024)
    cbt1 = mechanism_cost("cbt", 1024)
    graphene32 = mechanism_cost("graphene", 32768)
    graphene1 = mechanism_cost("graphene", 1024)

    # Paper claims (Section 6.1): at NRH=1K TWiCe/CBT cost a multiple of
    # BlockHammer's area; Graphene's access energy explodes ~22x from
    # 32K to 1K and ends up many times BlockHammer's.
    assert bh32.cpu_area_percent < 0.5
    assert twice1.total_area_mm2 > 2.0 * bh1.total_area_mm2
    assert cbt1.total_area_mm2 > 1.5 * bh1.total_area_mm2
    assert graphene1.access_energy_pj > 10 * graphene32.access_energy_pj
    assert graphene1.access_energy_pj > 4 * bh1.access_energy_pj
    # PRoHIT/MRLoc cannot be rescaled (the paper's "x" cells).
    assert mechanism_cost("prohit", 1024) is None
    assert mechanism_cost("mrloc", 1024) is None
