"""Table 3 / Section 5: no access pattern defeats BlockHammer.

Runs the LP relaxation and exhaustive enumeration of the Table 3
constraint system, the straddling-window fast/delayed bound, and the
greedy adversarial simulation, for every Table 7 configuration.
"""

from repro.core.config import BlockHammerConfig
from repro.harness.reporting import format_table
from repro.security.adversary import simulate_optimal_attack
from repro.security.solver import prove_safety


def _security_rows():
    rows = []
    for nrh in (32768, 16384, 8192, 4096, 2048, 1024):
        config = BlockHammerConfig.for_nrh(nrh)
        proof = prove_safety(config)
        rows.append(
            [
                nrh,
                int(config.nrh_star),
                round(proof.lp_max_activations),
                proof.enumeration_max_activations,
                round(proof.fast_delayed_max),
                "SAFE" if proof.safe else "UNSAFE",
            ]
        )
    return rows


def _adversary_row():
    # Empirical cross-check on a scaled config (full scale would take
    # minutes; the bound is scale-invariant by construction).
    config = BlockHammerConfig(
        nrh=512, t_refw_ns=1_000_000.0, t_cbf_ns=1_000_000.0, nbl=128, cbf_size=1024
    )
    observed = simulate_optimal_attack(config, num_windows=3.0)
    return observed, config.nrh_star


def test_table3_no_feasible_attack(benchmark, save_report):
    rows = benchmark.pedantic(_security_rows, rounds=1, iterations=1)
    observed, nrh_star = _adversary_row()
    text = format_table(
        ["NRH", "NRH*", "LP max", "enum max", "window bound", "verdict"], rows
    )
    text += (
        f"\n\ngreedy adversary (scaled config): {observed} ACTs in the worst "
        f"tREFW window vs NRH* = {nrh_star:.0f}"
    )
    save_report("table3_security", text)
    assert all(r[5] == "SAFE" for r in rows)
    assert observed <= nrh_star
