"""Figure 6: scaling with worsening RowHammer vulnerability — normalized
performance and DRAM energy as NRH shrinks from 32K to 1K, for PARA,
TWiCe, Graphene, and BlockHammer, with and without an attack.

Paper shape:
* no attack: PARA's overhead grows sharply at low NRH (its refresh
  probability explodes); the deterministic mechanisms stay ~1.0;
* attack present: BlockHammer's benign-performance benefit *grows* as
  NRH shrinks (paper: +71% WS at 1K) because it throttles the attacker
  harder, while others stay at or below baseline.

NRH points {32K, 16K, 8K} with one mix per scenario: these are the
points where the 1/128-window scaling keeps threshold fidelity (at
paper-NRH 8K the scaled NBL is 16; below that, benign per-row counts
collide with single-digit NBL values and false-positive throttling
artifacts dominate — EXPERIMENTS.md "scaling caveats").  Lower paper
thresholds require proportionally smaller scale factors:
``fig6_scaling(HarnessConfig(scale=16, ...), [1024])`` reproduces the
paper's 1K point at ~40x the runtime.
"""

from repro.harness.experiments import fig6_scaling
from repro.harness.reporting import format_table

_NRH_POINTS = [32768, 16384, 8192]


def test_fig6_scaling(benchmark, sim_hcfg, save_report):
    rows = benchmark.pedantic(
        fig6_scaling,
        args=(sim_hcfg, _NRH_POINTS),
        kwargs={"num_mixes": 1},
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig6_scaling",
        format_table(
            ["NRH", "scenario", "mechanism", "WS mean", "MS mean", "energy", "flips"],
            [
                [
                    r["paper_nrh"],
                    r["scenario"],
                    r["mechanism"],
                    round(r["norm_ws_mean"], 3),
                    round(r["norm_ms_mean"], 3),
                    round(r["norm_energy_mean"], 3),
                    r["bitflips"],
                ]
                for r in rows
            ],
        ),
    )
    by_key = {(r["paper_nrh"], r["scenario"], r["mechanism"]): r for r in rows}

    # BlockHammer under attack: a large benign-performance benefit at
    # every threshold in the sweep (single-mix values are noisy — the
    # robust claim is the persistent, large win, paper Section 8.3).
    for nrh in _NRH_POINTS:
        bh = by_key[(nrh, "attack", "blockhammer")]
        assert bh["norm_ws_mean"] > 1.25, nrh
        assert bh["norm_energy_mean"] < 0.8, nrh

    # BlockHammer stays flip-free at every threshold.
    for nrh in _NRH_POINTS:
        assert by_key[(nrh, "attack", "blockhammer")]["bitflips"] == 0

    # Benign-only: BlockHammer overhead stays small across the sweep.
    assert by_key[(8192, "no-attack", "blockhammer")]["norm_ws_mean"] > 0.95
