"""Ablation (ours): the in-DRAM row-mapping compatibility challenge
(Section 2.3 / Table 6 "compatible with commodity DRAM chips").

On a chip with a scrambled (proprietary) row mapping, a reactive-refresh
mechanism that assumes linear adjacency refreshes the wrong rows and
fails to prevent bit-flips; given the true mapping it succeeds.
BlockHammer never consults a mapping, so it protects either way.
"""

from repro.harness.experiments import rowmap_ablation
from repro.harness.reporting import format_table


def test_rowmap_ablation(benchmark, quick_hcfg, save_report):
    rows = benchmark.pedantic(
        rowmap_ablation,
        args=(quick_hcfg,),
        kwargs={"mechanisms": ["graphene", "blockhammer"]},
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_rowmap",
        format_table(
            ["mechanism", "adjacency oracle", "bitflips", "victim refreshes"],
            [[r["mechanism"], r["adjacency"], r["bitflips"], r["victim_refreshes"]] for r in rows],
        ),
    )
    by_key = {(r["mechanism"], r["adjacency"]): r for r in rows}
    # The attack is effective on the unprotected system.
    assert by_key[("none", "n/a")]["bitflips"] > 0
    # Graphene protects with vendor knowledge, fails without it — even
    # though it issues the same number of (misdirected) refreshes.
    assert by_key[("graphene", "true")]["bitflips"] == 0
    assert by_key[("graphene", "assumed-linear")]["bitflips"] > 0
    assert by_key[("graphene", "assumed-linear")]["victim_refreshes"] > 0
    # BlockHammer needs no mapping knowledge at all.
    assert by_key[("blockhammer", "true")]["bitflips"] == 0
    assert by_key[("blockhammer", "assumed-linear")]["bitflips"] == 0
