"""Table 8: the 30 benign applications and their MPKI / RBCPKI.

Validates the synthetic trace generator against every application's
published operating point (a 9-app cross-section is simulated; the
remaining rows are covered by the same generator mechanics and can be
run via ``table8_calibration(hcfg, None)``).
"""

from repro.harness.experiments import table8_calibration
from repro.harness.reporting import format_table

_APPS = [
    "444.namd", "403.gcc", "ycsb.A",            # L
    "471.omnetpp", "482.sphinx3", "473.astar",  # M
    "450.soplex", "429.mcf", "470.lbm",         # H
]


def test_table8_workload_calibration(benchmark, quick_hcfg, save_report):
    rows = benchmark.pedantic(
        table8_calibration, args=(quick_hcfg, _APPS), rounds=1, iterations=1
    )
    save_report(
        "table8_workloads",
        format_table(
            ["app", "cat", "MPKI target", "MPKI measured", "RBCPKI target", "RBCPKI measured"],
            [
                [
                    r["app"],
                    r["category"],
                    r["target_mpki"],
                    round(r["measured_mpki"], 2),
                    r["target_rbcpki"],
                    round(r["measured_rbcpki"], 2),
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # MPKI within 40% of the Table 8 operating point (absolute floor
        # covers low-MPKI apps, whose per-run sample is tiny).
        tolerance = max(0.4 * r["target_mpki"], 0.15)
        assert abs(r["measured_mpki"] - r["target_mpki"]) < tolerance, r["app"]
    # Workloads stay in their RBCPKI category ordering: L < M < H.
    by_cat = {}
    for r in rows:
        by_cat.setdefault(r["category"], []).append(r["measured_rbcpki"])
    assert max(by_cat["L"]) < min(by_cat["H"])
