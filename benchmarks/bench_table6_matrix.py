"""Table 6: qualitative comparison of mitigation mechanisms across the
four key properties (comprehensive protection, commodity compatibility,
scaling, deterministic protection).
"""

from repro.harness.reporting import format_table
from repro.mitigations.registry import build_mitigation

_TABLE6_MECHANISMS = [
    "refresh-rate",
    "para",
    "prohit",
    "mrloc",
    "cbt",
    "twice",
    "graphene",
    "naive-throttle",
    "blockhammer",
]


def _matrix():
    rows = []
    for name in _TABLE6_MECHANISMS:
        mechanism = build_mitigation(name)
        rows.append(
            [
                name,
                "yes" if mechanism.comprehensive_protection else "no",
                "yes" if mechanism.commodity_compatible else "no",
                "yes" if mechanism.scales_with_vulnerability else "no",
                "yes" if mechanism.deterministic_protection else "no",
            ]
        )
    return rows


def test_table6_property_matrix(benchmark, save_report):
    rows = benchmark.pedantic(_matrix, rounds=1, iterations=1)
    save_report(
        "table6_matrix",
        format_table(
            ["mechanism", "comprehensive", "commodity", "scales", "deterministic"],
            rows,
        ),
    )
    complete = [r[0] for r in rows if all(c == "yes" for c in r[1:])]
    # The paper's conclusion: BlockHammer alone satisfies all four.
    assert complete == ["blockhammer"]
