"""Table 2: the five epoch types and their per-epoch activation bounds.

Regenerates Nepmax for T0..T4 under the Table 1 configuration.
"""

from repro.core.config import BlockHammerConfig
from repro.harness.reporting import format_table
from repro.security.epochs import EpochModel, EpochType

_DESCRIPTIONS = {
    EpochType.T0: "below NBL* both epochs (not blacklisted)",
    EpochType.T1: "crosses NBL* but not NBL",
    EpochType.T2: "crosses NBL (burst + tDelay-throttled)",
    EpochType.T3: "blacklisted from previous epoch, stays below NBL",
    EpochType.T4: "blacklisted throughout (fully tDelay-throttled)",
}


def _table2_rows():
    model = EpochModel(BlockHammerConfig())
    return [
        [t.name, _DESCRIPTIONS[t], model.nepmax(t)] for t in EpochType
    ]


def test_table2_epoch_bounds(benchmark, save_report):
    rows = benchmark.pedantic(_table2_rows, rounds=1, iterations=1)
    save_report("table2_epochs", format_table(["type", "meaning", "Nepmax"], rows))
    bounds = {r[0]: r[2] for r in rows}
    # T2 dominates; T3/T4 are tDelay-limited; NBL bounds T0/T1.
    assert bounds["T2"] > bounds["T0"] >= bounds["T1"]
    assert bounds["T4"] == bounds["T3"]
    assert bounds["T2"] == 12261 or abs(bounds["T2"] - 12261) <= 2
