"""Figure 5: eight-core multiprogrammed workloads — weighted speedup,
harmonic speedup, maximum slowdown, and DRAM energy, normalized to the
unprotected baseline, with and without a RowHammer attack present.

Paper shape (NRH = 32K):
* no attack: every mechanism ~1.0 (BlockHammer <1% overhead);
* attack present: BlockHammer *improves* benign weighted speedup (paper:
  +45% mean) and cuts DRAM energy (paper: -28.9%), while reactive
  mechanisms hover at baseline.

Two mixes per scenario keep the benchmark tractable; the paper uses 125.
Bit-flip counts for the probabilistic mechanisms (PARA/PRoHIT/MRLoc) are
a window-compression artifact under scaling and are reported, not
asserted (EXPERIMENTS.md, "scaling caveats").
"""

from repro.harness.experiments import fig5_multicore, summarize_mix_rows
from repro.harness.reporting import format_table

_NUM_MIXES = 2


def test_fig5_multicore(benchmark, sim_hcfg, save_report):
    rows = benchmark.pedantic(
        fig5_multicore, args=(sim_hcfg, _NUM_MIXES), rounds=1, iterations=1
    )
    summary = summarize_mix_rows(rows)
    save_report(
        "fig5_multicore",
        format_table(
            ["scenario", "mechanism", "WS mean", "WS max", "HS mean", "MS mean", "energy", "flips"],
            [
                [
                    s["scenario"],
                    s["mechanism"],
                    round(s["norm_ws_mean"], 3),
                    round(s["norm_ws_max"], 3),
                    round(s["norm_hs_mean"], 3),
                    round(s["norm_ms_mean"], 3),
                    round(s["norm_energy_mean"], 3),
                    s["bitflips"],
                ]
                for s in summary
            ],
        ),
    )
    by_key = {(s["scenario"], s["mechanism"]): s for s in summary}

    # No attack: BlockHammer within 3% of baseline on every metric.
    no_attack = by_key[("no-attack", "blockhammer")]
    assert no_attack["norm_ws_mean"] > 0.97
    assert no_attack["norm_energy_mean"] < 1.03

    # Attack present: BlockHammer improves benign performance and energy;
    # deterministic reactive mechanisms do not improve performance.
    attack = by_key[("attack", "blockhammer")]
    assert attack["norm_ws_mean"] > 1.10
    assert attack["norm_energy_mean"] < 0.90
    assert attack["bitflips"] == 0
    graphene = by_key[("attack", "graphene")]
    assert graphene["norm_ws_mean"] < attack["norm_ws_mean"]
    assert graphene["bitflips"] == 0
