"""Table 1: BlockHammer parameter values for DDR4 at NRH = 32K.

Regenerates every derived parameter of the paper's flagship
configuration from the public chip parameters and Eqs. 1/3.
"""

from repro.core.config import BlockHammerConfig
from repro.dram.spec import DDR4_2400
from repro.harness.reporting import format_table


def _table1_rows():
    cfg = BlockHammerConfig.for_nrh(32768, DDR4_2400)
    worst = BlockHammerConfig.for_nrh(32768, DDR4_2400, blast_radius=6)
    return [
        ["NRH", 32768, "32K (paper)"],
        ["NRH* (double-sided)", int(cfg.nrh_star), "16K (paper)"],
        ["NRH* (r_blast=6 worst case)", round(worst.nrh_star), "0.2539 x NRH (paper)"],
        ["NBL", cfg.nbl, "8K (paper)"],
        ["tCBF (ms)", cfg.t_cbf_ns / 1e6, "64 (paper)"],
        ["tDelay (us)", round(cfg.t_delay_ns / 1e3, 2), "7.7 (paper)"],
        ["CBF size (counters/bank)", cfg.cbf_size, "1K (paper)"],
        ["CBF hash functions", cfg.hash_count, "4 (paper)"],
        ["CBF counter bits", cfg.counter_bits, "13 (paper Table 4)"],
        ["History buffer entries/rank", cfg.history_entries, "887 (paper)"],
        ["AttackThrottler counters/pair", 2, "2 (paper)"],
    ]


def test_table1_configuration(benchmark, save_report):
    rows = benchmark.pedantic(_table1_rows, rounds=1, iterations=1)
    save_report(
        "table1_config",
        format_table(["parameter", "reproduced", "paper"], rows),
    )
    as_dict = {r[0]: r[1] for r in rows}
    assert as_dict["NRH* (double-sided)"] == 16384
    assert abs(as_dict["tDelay (us)"] - 7.7) < 0.15
    assert as_dict["History buffer entries/rank"] in (887, 888)
