"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  Results are printed and archived in
``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Scaling: simulation benchmarks use a 1/128-scaled refresh window with
all thresholds scaled consistently (DESIGN.md substitution 3); hardware
cost and security benchmarks run at full paper scale (they are
analytical).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.runner import HarnessConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Print a report block and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def sim_hcfg():
    """Scaled configuration for simulation benchmarks (NRH=32K point)."""
    return HarnessConfig(
        scale=128.0,
        paper_nrh=32768,
        instructions_per_thread=90_000,
        warmup_ns=50_000.0,
    )


@pytest.fixture(scope="session")
def quick_hcfg():
    """Smaller configuration for the cheaper simulation benchmarks."""
    return HarnessConfig(
        scale=128.0,
        paper_nrh=32768,
        instructions_per_thread=60_000,
        warmup_ns=40_000.0,
    )
