"""Section 3.2.1: the RowHammer Likelihood Index distinguishes attacks.

Paper: in observe-only mode attack threads reach RHLI >> 1 (avg 10.9,
range 6.9-15.5) while benign threads sit at exactly 0; full-functional
mode collapses attack RHLI below 1 (54x reduction) without touching
benign threads.
"""

from repro.harness.experiments import rhli_experiment
from repro.harness.reporting import format_table


def test_rhli_identifies_attacks(benchmark, quick_hcfg, save_report):
    rows = benchmark.pedantic(
        rhli_experiment, args=(quick_hcfg,), kwargs={"num_mixes": 1}, rounds=1, iterations=1
    )
    save_report(
        "rhli",
        format_table(
            ["mode", "attacker mean", "attacker max", "attacker min", "benign max"],
            [
                [
                    r["mode"],
                    round(r["attacker_rhli_mean"], 2),
                    round(r["attacker_rhli_max"], 2),
                    round(r["attacker_rhli_min"], 2),
                    round(r["benign_rhli_max"], 4),
                ]
                for r in rows
            ],
        ),
    )
    observe = next(r for r in rows if r["mode"] == "blockhammer-observe")
    full = next(r for r in rows if r["mode"] == "blockhammer")
    # RHLI > 1 reliably flags an attack; benign threads stay at 0.
    assert observe["attacker_rhli_min"] > 1.0
    assert observe["benign_rhli_max"] == 0.0
    # Full-functional mode keeps attack RHLI at or below 1.
    assert full["attacker_rhli_max"] <= 1.0
    # Throttling reduces the attack's RHLI by a large factor (paper: 54x).
    assert observe["attacker_rhli_mean"] > 5 * full["attacker_rhli_mean"]
