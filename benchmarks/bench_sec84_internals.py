"""Section 8.4: BlockHammer's internal mechanisms — Bloom-filter false
positive rate and the delay distribution of mistakenly-delayed
activations, over benign multiprogrammed workloads.

Paper: false-positive rate 0.010% at NRH=32K (0.012% at 1K), i.e.
>=99.98% of benign activations suffer no delay; mistaken delays are
P50=1.7us / P90=3.9us / P100=7.6us against the 7.7us tDelay bound.
"""

from repro.core.config import BlockHammerConfig
from repro.harness.experiments import sec84_internals
from repro.harness.reporting import format_table


def test_sec84_false_positives(benchmark, quick_hcfg, save_report):
    stats = benchmark.pedantic(
        sec84_internals, args=(quick_hcfg,), kwargs={"num_mixes": 2}, rounds=1, iterations=1
    )
    config = BlockHammerConfig.for_nrh(quick_hcfg.sim_nrh, quick_hcfg.spec())
    rows = [
        ["total benign ACTs", stats["total_acts"]],
        ["false-positive delayed ACTs", stats["false_positive_acts"]],
        ["false-positive rate", f"{stats['false_positive_rate']:.5%}"],
        ["FP delay P50 (us)", round(stats["fp_delay_p50_ns"] / 1e3, 2)],
        ["FP delay P90 (us)", round(stats["fp_delay_p90_ns"] / 1e3, 2)],
        ["FP delay P100 (us)", round(stats["fp_delay_p100_ns"] / 1e3, 2)],
        ["tDelay bound (us)", round(config.t_delay_ns / 1e3, 2)],
    ]
    save_report("sec84_internals", format_table(["metric", "value"], rows))
    # Paper: BlockHammer avoids delaying >= 99.98% of benign ACTs.
    assert stats["false_positive_rate"] <= 0.0002
    # No mistaken delay may exceed the tDelay bound.
    assert stats["fp_delay_p100_ns"] <= config.t_delay_ns * 1.001
