"""Ablation (ours): CBF sizing vs false-positive rate (Section 3.1.3).

The paper chooses a 1K-counter CBF because "reducing the CBF size below
1K significantly increases the false positive rate due to aliasing".
This benchmark reproduces that trade-off directly on the D-CBF data
structure: insert a benign-like row population and measure how many
never-hot rows alias over the blacklisting threshold.
"""

from repro.core.dcbf import DualCountingBloomFilter
from repro.harness.reporting import format_table
from repro.utils.rng import DeterministicRng

_NBL = 128
_HOT_ROWS = 16  # rows legitimately over the threshold
_COLD_ROWS = 2048  # benign background population
_COLD_ACTS = 4


def _false_positive_rate(cbf_size: int) -> float:
    rng = DeterministicRng(99)
    dcbf = DualCountingBloomFilter(
        size=cbf_size, epoch_ns=1e9, rng=rng, track_exact=False
    )
    for hot in range(_HOT_ROWS):
        for _ in range(_NBL):
            dcbf.insert(100_000 + hot)
    for cold in range(_COLD_ROWS):
        for _ in range(_COLD_ACTS):
            dcbf.insert(cold)
    false_positives = sum(1 for cold in range(_COLD_ROWS) if dcbf.count(cold) >= _NBL)
    return false_positives / _COLD_ROWS


def _sweep():
    return [[size, _false_positive_rate(size)] for size in (128, 256, 512, 1024, 2048, 4096)]


def test_cbf_size_vs_false_positives(benchmark, save_report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_report(
        "ablation_cbf",
        format_table(
            ["CBF counters", "false-positive rate"],
            [[size, f"{rate:.4%}"] for size, rate in rows],
        ),
    )
    rates = {size: rate for size, rate in rows}
    # Small filters alias catastrophically; the rate collapses with size
    # and is negligible at the paper-style sizing.
    assert rates[128] > 0.5
    assert rates[1024] < 0.01
    assert rates[4096] <= rates[1024] <= rates[256]
