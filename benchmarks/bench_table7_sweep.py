"""Table 7: BlockHammer configuration parameters for each NRH.

Regenerates CBF size, NBL, and tCBF for NRH = 32K .. 1K, plus the
derived tDelay and history-buffer sizing for each point.
"""

from repro.core.config import BlockHammerConfig
from repro.harness.reporting import format_table

_PAPER_TABLE7 = {
    32768: (1024, 8192),
    16384: (1024, 4096),
    8192: (1024, 2048),
    4096: (2048, 1024),
    2048: (4096, 512),
    1024: (8192, 256),
}


def _rows():
    rows = []
    for nrh, (paper_cbf, paper_nbl) in _PAPER_TABLE7.items():
        cfg = BlockHammerConfig.for_nrh(nrh)
        rows.append(
            [
                nrh,
                int(cfg.nrh_star),
                cfg.cbf_size,
                paper_cbf,
                cfg.nbl,
                paper_nbl,
                round(cfg.t_cbf_ns / 1e6),
                round(cfg.t_delay_ns / 1e3, 1),
                cfg.history_entries,
            ]
        )
    return rows


def test_table7_parameter_sweep(benchmark, save_report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    save_report(
        "table7_sweep",
        format_table(
            [
                "NRH",
                "NRH*",
                "CBF size",
                "paper CBF",
                "NBL",
                "paper NBL",
                "tCBF ms",
                "tDelay us",
                "HB entries",
            ],
            rows,
        ),
    )
    for row in rows:
        assert row[2] == row[3], f"CBF size mismatch at NRH={row[0]}"
        assert row[4] == row[5], f"NBL mismatch at NRH={row[0]}"
