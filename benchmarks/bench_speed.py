"""Wall-clock speed benchmark: the perf trajectory anchor.

Measures five things and emits ``BENCH_speed.json`` at the repo root:

1. **Canonical Figure 5 sweep** — ``fig5_multicore`` over
   ``--mixes`` mixes per scenario and all paper mechanisms, run
   serially (``workers=1``) and through the process-pool executor
   (``--workers``, default 4).  The two runs must produce *identical*
   rows; the JSON records both times and their ratio.
2. **Cached re-run** — the same sweep through the persistent result
   cache (throwaway directory): a cold run that stores every job, then
   a warm run that must perform **zero** simulations and reproduce the
   rows exactly.
3. **Single-process hot loop** — one attack mix under ``none`` and
   under ``blockhammer``, with events/second derived from
   ``SimResult.events_processed``.
4. **Channel-scaling sweep** — the ``channel_scaling`` driver over
   channels {1, 2, 4} (one mix per scenario, BlockHammer), cold through
   a throwaway result cache and warm again: the warm run must perform
   zero simulations while reproducing the summary/attribution rows
   exactly.
5. **Seed baseline** — the same sweep and single runs executed against
   the repository's seed commit (default: the root commit) in a
   temporary git worktree, giving the honest "vs. seed" speedups.
   ``--no-seed`` skips this and carries the baseline forward from an
   existing ``BENCH_speed.json``.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_speed.py
    PYTHONPATH=src python benchmarks/bench_speed.py --mixes 1 --no-seed

Future PRs regress against the committed ``BENCH_speed.json``: the
``current`` section must not get slower, and ``speedups`` records how
far the optimization work has moved since the seed.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_speed.json"
SEED_WORKTREE = REPO_ROOT / ".bench-seed-tmp"

#: Canonical benchmark configuration (kept small enough to finish in
#: minutes on one core while exercising every hot path).
CANONICAL = {
    "scale": 128.0,
    "paper_nrh": 32768,
    "instructions_per_thread": 20_000,
    "warmup_ns": 20_000.0,
}


def _hcfg():
    from repro.harness.runner import HarnessConfig

    return HarnessConfig(**CANONICAL)


def provenance() -> dict:
    """Where and how this report was produced: numbers in
    ``BENCH_speed.json`` are only comparable across commits when the
    interpreter and host class match, so stamp them."""
    import platform

    head = subprocess.run(
        ["git", "rev-parse", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": head.stdout.strip() or None,
    }


def measure_sweep(num_mixes: int, workers: int, cache=None):
    """(elapsed seconds, rows) for the canonical Fig. 5 sweep."""
    from repro.harness.experiments import fig5_multicore

    start = time.perf_counter()
    rows = fig5_multicore(_hcfg(), num_mixes, None, workers=workers, cache=cache)
    return time.perf_counter() - start, rows


def measure_cached_rerun(num_mixes: int, reference_rows):
    """Cold-store then warm-hit sweep through the persistent result
    cache (a throwaway directory): the warm run must perform zero
    simulations and reproduce the reference rows exactly."""
    import shutil
    import tempfile

    from repro.harness import parallel
    from repro.harness.cache import ResultCache

    cache_dir = tempfile.mkdtemp(prefix="bench-repro-cache-")
    try:
        cache = ResultCache(cache_dir)
        cold_s, cold_rows = measure_sweep(num_mixes, workers=1, cache=cache)
        executed_before = parallel.job_executions()
        warm_s, warm_rows = measure_sweep(num_mixes, workers=1, cache=cache)
        warm_sims = parallel.job_executions() - executed_before
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    # warm_s stays unrounded so speedup ratios are computed from the
    # true elapsed time; the report rounds display fields only.
    return {
        "cold_store_s": round(cold_s, 2),
        "warm_s": warm_s,
        "warm_simulations_executed": warm_sims,
        "rows_identical": cold_rows == warm_rows == reference_rows,
    }


def measure_channel_sweep(channel_counts=(1, 2, 4)):
    """Cold-store then warm-replay the channel-scaling study through a
    throwaway result cache; the warm run must perform zero simulations
    and reproduce the rows exactly."""
    import shutil
    import tempfile

    from repro.harness import parallel
    from repro.harness.cache import ResultCache
    from repro.harness.experiments import channel_scaling

    cache_dir = tempfile.mkdtemp(prefix="bench-repro-chansweep-")
    kwargs = dict(
        channel_counts=tuple(channel_counts),
        num_mixes=1,
        mechanisms=["blockhammer"],
        workers=1,
    )
    try:
        cache = ResultCache(cache_dir)
        start = time.perf_counter()
        cold = channel_scaling(_hcfg(), cache=cache, **kwargs)
        cold_s = time.perf_counter() - start
        executed_before = parallel.job_executions()
        start = time.perf_counter()
        warm = channel_scaling(_hcfg(), cache=cache, **kwargs)
        warm_s = time.perf_counter() - start
        warm_sims = parallel.job_executions() - executed_before
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "channel_counts": list(channel_counts),
        "cold_store_s": round(cold_s, 2),
        "warm_s": round(warm_s, 4),
        "warm_simulations_executed": warm_sims,
        "rows_identical": warm == cold,
        "attribution_rows": len(cold["attribution"]),
    }


def measure_single_runs(repeats: int = 5):
    """Hot-loop metrics from one attack mix per mechanism of interest.

    Best-of-N with a discarded warm-up run: this box is a noisy shared
    single CPU and these sub-second runs land right after the sweep
    churned it, so a single sample regularly swings ±10%.  The minimum
    of five back-to-back runs is the stable figure (simulations are
    deterministic — every repeat does identical work).
    """
    from repro.harness.runner import Runner
    from repro.workloads.mixes import attack_mixes

    runner = Runner(_hcfg())
    mix = attack_mixes(1)[0]
    out = {}
    for mechanism in ("none", "blockhammer"):
        runner.run_mix(mix, mechanism)  # warm trace/mapping caches
        best = float("inf")
        outcome = None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = runner.run_mix(mix, mechanism)
            best = min(best, time.perf_counter() - start)
        events = getattr(outcome.result, "events_processed", 0)
        out[mechanism] = {
            "run_s": round(best, 3),
            "events": events,
            "events_per_sec": round(events / best) if events else None,
        }
    return out


# ----------------------------------------------------------------------
# Seed baseline (runs inside a worktree of the seed commit).
# ----------------------------------------------------------------------
_CHILD = r"""
import json, sys, time
cfg = json.loads(sys.argv[1])
num_mixes = cfg.pop("num_mixes")
from repro.harness.runner import HarnessConfig, Runner
from repro.harness.experiments import fig5_multicore
from repro.workloads.mixes import attack_mixes
hcfg = HarnessConfig(**cfg)
start = time.perf_counter()
rows = fig5_multicore(hcfg, num_mixes, None)
sweep_s = time.perf_counter() - start
runner = Runner(hcfg)
mix = attack_mixes(1)[0]
single = {}
for mechanism in ("none", "blockhammer"):
    start = time.perf_counter()
    outcome = runner.run_mix(mix, mechanism)
    single[mechanism] = {"run_s": round(time.perf_counter() - start, 3)}
print(json.dumps({"sweep_serial_s": round(sweep_s, 2), "single": single}))
"""


def resolve_seed_rev(explicit: str | None) -> str:
    if explicit:
        return explicit
    root = subprocess.run(
        ["git", "rev-list", "--max-parents=0", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return root.stdout.split()[0]


def measure_seed(seed_rev: str, num_mixes: int):
    """Time the seed commit on the same workload via a temp worktree."""
    subprocess.run(
        ["git", "worktree", "add", "--force", str(SEED_WORKTREE), seed_rev],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
    )
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SEED_WORKTREE / "src")
        cfg = dict(CANONICAL, num_mixes=num_mixes)
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, json.dumps(cfg)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        result = json.loads(proc.stdout.strip().splitlines()[-1])
        result["rev"] = seed_rev
        return result
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(SEED_WORKTREE)],
            cwd=REPO_ROOT,
            check=False,
            capture_output=True,
        )


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mixes", type=int, default=2, help="mixes per scenario")
    parser.add_argument("--seed-rev", default=None, help="git rev of the seed baseline")
    parser.add_argument(
        "--no-seed",
        action="store_true",
        help="skip the seed worktree run; reuse the baseline already in --out",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    print(f"canonical fig5 sweep: {args.mixes} mixes/scenario, all paper mechanisms")
    # cache=False: the timed sweeps must measure simulations even when
    # the user has REPRO_CACHE exported; only measure_cached_rerun
    # (throwaway directory) exercises the cache path.
    serial_s, serial_rows = measure_sweep(args.mixes, workers=1, cache=False)
    print(f"  serial      : {serial_s:7.2f} s ({len(serial_rows)} rows)")
    parallel_s, parallel_rows = measure_sweep(
        args.mixes, workers=args.workers, cache=False
    )
    print(f"  {args.workers} workers   : {parallel_s:7.2f} s")
    identical = serial_rows == parallel_rows
    print(f"  identical rows: {identical}")
    cache_stats = measure_cached_rerun(args.mixes, serial_rows)
    print(
        f"  cache       : {cache_stats['cold_store_s']:7.2f} s cold-store, "
        f"{cache_stats['warm_s']:7.3f} s warm "
        f"({cache_stats['warm_simulations_executed']} sims, "
        f"identical={cache_stats['rows_identical']})"
    )
    single = measure_single_runs()
    channel_sweep = measure_channel_sweep()
    print(
        f"  chan sweep  : {channel_sweep['cold_store_s']:7.2f} s cold "
        f"({channel_sweep['channel_counts']} channels, "
        f"{channel_sweep['attribution_rows']} attribution rows), "
        f"{channel_sweep['warm_s']:7.4f} s warm "
        f"({channel_sweep['warm_simulations_executed']} sims, "
        f"identical={channel_sweep['rows_identical']})"
    )

    seed = None
    if args.no_seed:
        if args.out.exists():
            prior = json.loads(args.out.read_text())
            if prior.get("config") == dict(
                CANONICAL, num_mixes_per_scenario=args.mixes
            ):
                seed = prior.get("seed")
            else:
                print(
                    "prior BENCH_speed.json used a different config; "
                    "dropping its seed baseline (re-run without --no-seed)"
                )
    else:
        rev = resolve_seed_rev(args.seed_rev)
        print(f"measuring seed baseline ({rev[:12]}) in a temp worktree ...")
        seed = measure_seed(rev, args.mixes)
        print(f"  seed serial : {seed['sweep_serial_s']:7.2f} s")

    report = {
        "benchmark": "canonical fig5 sweep + single-run hot loop",
        "config": dict(CANONICAL, num_mixes_per_scenario=args.mixes),
        "machine": {"cpu_count": os.cpu_count(), "workers": args.workers},
        "provenance": provenance(),
        "current": {
            "sweep_serial_s": round(serial_s, 2),
            "sweep_parallel_s": round(parallel_s, 2),
            "serial_parallel_identical": identical,
            "cached_rerun": cache_stats,
            "single": single,
            "channel_sweep": channel_sweep,
        },
        "seed": seed,
    }
    speedups = {
        "parallel_vs_serial": round(serial_s / parallel_s, 2),
        # Ratio from the unrounded warm time (rounded for display below).
        "cached_rerun_vs_serial": round(serial_s / max(cache_stats["warm_s"], 1e-6)),
    }
    cache_stats["warm_s"] = round(cache_stats["warm_s"], 4)
    if seed:
        seed_serial = seed["sweep_serial_s"]
        speedups["single_process_vs_seed"] = round(seed_serial / serial_s, 2)
        speedups["sweep_4workers_vs_seed"] = round(seed_serial / parallel_s, 2)
        for mechanism, stats in single.items():
            base = seed.get("single", {}).get(mechanism)
            if base:
                speedups[f"single_run_{mechanism}_vs_seed"] = round(
                    base["run_s"] / stats["run_s"], 2
                )
    report["speedups"] = speedups
    if (os.cpu_count() or 1) < args.workers:
        report["note"] = (
            f"only {os.cpu_count()} CPU(s) available: the {args.workers}-worker "
            "run cannot exceed serial wall-clock on this machine; on a "
            f">= {args.workers}-core host the parallel sweep scales with the "
            "worker count on top of single_process_vs_seed"
        )

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(json.dumps(report["speedups"], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
