"""Figure 4: single-core benign applications — execution time and DRAM
energy under each mechanism, normalized to the unprotected baseline,
grouped by RBCPKI category (L/M/H).

Paper shape: BlockHammer (and the deterministic counters) ~1.00 in both
metrics; PARA/MRLoc show small but visible time/energy overheads that
grow with RBCPKI (their victim refreshes scale with row activations).

A 3-apps-per-category subset keeps the benchmark tractable; run
``repro.harness.experiments.fig4_singlecore`` with ``app_names=None``
for all 30 applications.
"""

from repro.harness.experiments import fig4_group_means, fig4_singlecore
from repro.harness.reporting import format_table

_APPS = [
    # L
    "403.gcc", "458.sjeng", "ycsb.A",
    # M
    "483.xalancbmk", "473.astar", "437.leslie3d",
    # H
    "429.mcf", "470.lbm", "462.libquantum",
]


def test_fig4_singlecore(benchmark, quick_hcfg, save_report):
    rows = benchmark.pedantic(
        fig4_singlecore, args=(quick_hcfg, _APPS), rounds=1, iterations=1
    )
    means = fig4_group_means(rows)
    save_report(
        "fig4_singlecore",
        format_table(
            ["category", "mechanism", "norm time", "norm energy"],
            [
                [m["category"], m["mechanism"], round(m["norm_time"], 4), round(m["norm_energy"], 4)]
                for m in means
            ],
        ),
    )
    bh = {m["category"]: m for m in means if m["mechanism"] == "blockhammer"}
    # Paper: BlockHammer introduces no single-core overhead (<1% here).
    for category in ("L", "M", "H"):
        assert bh[category]["norm_time"] < 1.02
        assert bh[category]["norm_energy"] < 1.02
    # No mechanism lets a benign app flip bits.
    assert all(r["bitflips"] == 0 for r in rows if r["mechanism"] == "blockhammer")
