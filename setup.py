"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` can use the legacy (setup.py develop) editable path
in offline environments where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
