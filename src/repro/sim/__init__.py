"""Discrete-event simulation: engine, system configuration, system wiring,
and result statistics."""

from repro.sim.engine import EventQueue
from repro.sim.config import SystemConfig
from repro.sim.stats import SimResult, ThreadResult
from repro.sim.system import System

__all__ = ["EventQueue", "SystemConfig", "SimResult", "ThreadResult", "System"]
