"""A minimal discrete-event queue.

Events are ``(time, callback)`` pairs; ties break by insertion order so
simulations are fully deterministic.  :meth:`EventQueue.pop_at` lets the
simulation loop drain every wake scheduled for one instant in a single
iteration (same-tick controller/core wakes are common: one per channel
plus request completions), skipping the per-event loop bookkeeping
without changing execution order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """Priority queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()

    def push(self, time: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback(time)``."""
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pop(self) -> tuple[float, Callable[[float], None]]:
        """Remove and return the earliest ``(time, callback)``."""
        time, _, callback = heapq.heappop(self._heap)
        return time, callback

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_at(self, time: float) -> Callable[[float], None] | None:
        """Pop the next callback only if it is scheduled exactly at
        ``time``; None otherwise.  Ties still drain in insertion order,
        including events pushed *for the same instant* while a batch is
        draining (they carry larger sequence numbers and pop last)."""
        heap = self._heap
        if heap and heap[0][0] == time:
            return heapq.heappop(heap)[2]
        return None

    @property
    def empty(self) -> bool:
        return not self._heap

    def __len__(self) -> int:
        return len(self._heap)
