"""Simulation results and derived statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.device import CommandCounts
from repro.dram.rowhammer import BitFlip
from repro.mem.controller import ThreadMemStats


@dataclass
class ChannelResult:
    """Per-channel outcome of one simulation (one row per memory
    channel; the aggregate lives on :class:`SimResult` itself).

    ``blocked_injections`` counts requests this channel's controller
    refused at injection time (queue-full plus mitigation in-flight
    quotas — the throttle-event side of per-channel attribution; the
    mechanism-side counters travel through the ``channel_attribution``
    extractor in :mod:`repro.harness.parallel`)."""

    channel: int
    counts: CommandCounts
    active_time_ns: list[float]
    bitflips: int
    refreshes: int
    victim_refreshes: int
    commands_issued: int
    refresh_phase_ns: float = 0.0
    blocked_injections: int = 0


@dataclass
class ThreadResult:
    """Per-thread outcome of one simulation.

    ``mem`` aggregates the thread's memory statistics across channels;
    ``mem_per_channel`` carries the per-channel rows when the system has
    more than one channel (empty on single-channel runs, whose aggregate
    *is* the per-channel row).
    """

    thread: int
    instructions: int
    finish_time_ns: float
    ipc: float
    mem: ThreadMemStats
    mem_per_channel: list[ThreadMemStats] = field(default_factory=list)

    @property
    def mpki(self) -> float:
        """Memory (LLC-miss) accesses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mem.accesses / self.instructions

    @property
    def rbcpki(self) -> float:
        """Row-buffer conflicts per kilo-instruction (Table 8 metric)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mem.row_conflicts / self.instructions


@dataclass
class SimResult:
    """Outcome of one :meth:`System.run` call."""

    mitigation: str
    threads: list[ThreadResult]
    elapsed_ns: float
    counts: CommandCounts
    active_time_ns: list[float]
    bitflips: list[BitFlip]
    refreshes: int
    victim_refreshes: int
    commands_issued: int
    #: Discrete events processed by the simulation loop (perf metric;
    #: excluded from result-equality comparisons by value symmetry —
    #: identical simulations process identical event streams).
    events_processed: int = 0
    #: One statistics row per memory channel (aggregates above are the
    #: sums/maxes over these; RHLI maxes live in the harness extractors).
    channels: list[ChannelResult] = field(default_factory=list)

    @property
    def num_channels(self) -> int:
        return len(self.channels) or 1

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    @property
    def total_bitflips(self) -> int:
        return len(self.bitflips)

    def thread_ipc(self, thread: int) -> float:
        return self.threads[thread].ipc

    def benign_ipcs(self, attacker_threads: set[int]) -> dict[int, float]:
        """IPC of every thread not in ``attacker_threads``."""
        return {
            t.thread: t.ipc for t in self.threads if t.thread not in attacker_threads
        }
