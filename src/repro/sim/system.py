"""System wiring and the event-driven simulation loop.

A :class:`System` assembles the channel-sharded memory system (one
controller + DRAM device shard + mitigation instance per channel, see
:class:`~repro.mem.memsystem.MemorySystem`), the cores, and drives them
to completion with a discrete-event loop.  Each entity (per-channel
controller, core) is woken only when it can make progress; a wake-up
is recognized as stale when the entity's recorded next-wake time no
longer matches the event's time, so the loop never executes an entity
twice for the same logical event.  Wake-up events reuse one bound
callable per entity instead of allocating a fresh closure per event —
several hundred thousand allocations per simulation on the hot path.
"""

from __future__ import annotations

from functools import partial

from repro.cpu.cache import SetAssocCache
from repro.cpu.core import Core
from repro.cpu.trace import Trace
from repro.dram.address import shared_mapping
from repro.mem.memsystem import MemorySystem, MitigationFactory
from repro.mem.request import Request
from repro.mem.scheduler import FrFcfsPolicy, SchedulingPolicy
from repro.mitigations.base import (
    AdjacencyOracle,
    MitigationMechanism,
    NoMitigation,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.stats import SimResult, ThreadResult
from repro.utils.rng import DeterministicRng
from repro.utils.validation import ConfigError

_NEVER = 1.0e30


class System:
    """A complete simulated machine: cores + N channel shards."""

    #: When True, every controller wake runs exactly one scheduling step
    #: (the legacy tick-by-tick cadence) instead of a quiescence-horizon
    #: batch.  Tests flip this to build a tick-by-tick oracle and check
    #: that batched runs are bit-identical.
    single_step = False

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        mitigation: MitigationMechanism | None = None,
        policy: SchedulingPolicy | None = None,
        adjacency_override: AdjacencyOracle | None = None,
        core_params_per_thread: list | None = None,
        mitigation_factory: MitigationFactory | None = None,
        governor=None,
        obs=None,
    ) -> None:
        """``mitigation_factory`` builds one fresh mechanism per channel
        (required for multi-channel systems, where mitigation state must
        not be shared).  Passing a single ``mitigation`` instance remains
        supported for single-channel systems only.

        ``governor`` attaches an OS governor
        (:class:`~repro.os.governor.Governor`): the event loop reviews
        it once per governor epoch and its policies act on the cores
        (kill / quota / channel migration).  ``None`` (default) costs
        nothing — no events are scheduled and no hooks fire.

        ``obs`` attaches a telemetry bus
        (:class:`~repro.obs.probe.TelemetryBus`): trace probes are bound
        through every layer (device command stream, controller, per-
        channel mechanism, governor) and metrics sampling events are
        scheduled once per sampling epoch.  ``None`` (default) binds
        nothing — component probe attributes stay ``None`` and the event
        loop runs exactly as without observability."""
        self.config = config
        self.rng = DeterministicRng(config.seed)
        spec = config.effective_spec()
        self.mapping = shared_mapping(spec, config.mapping_scheme, config.mop_run)

        if mitigation_factory is None:
            if mitigation is None:
                mitigation_factory = NoMitigation
            elif config.channels == 1:
                instance = mitigation
                mitigation_factory = lambda: instance  # noqa: E731
            else:
                raise ConfigError(
                    "multi-channel systems need a mitigation_factory: a single "
                    "mitigation instance cannot be shared across channels"
                )
        self.memsys = MemorySystem(
            config,
            num_threads=len(traces),
            mitigation_factory=mitigation_factory,
            policy=policy or FrFcfsPolicy(),
            adjacency_override=adjacency_override,
            rng=self.rng,
        )
        self.controllers = self.memsys.controllers
        for controller in self.controllers:
            controller.on_request_complete = self._on_request_complete
        # Single-channel aliases (the common configuration, and what the
        # pre-sharding tests and examples address).
        self.controller = self.controllers[0]
        self.device = self.memsys.devices[0]
        self.mitigation = self.memsys.mitigations[0]
        self.mitigations = self.memsys.mitigations

        self.cores: list[Core] = []
        for thread_id, trace in enumerate(traces):
            llc = (
                SetAssocCache(config.llc_bytes, config.llc_ways, spec.line_bytes)
                if config.use_llc
                else None
            )
            params = config.core
            if core_params_per_thread is not None and core_params_per_thread[thread_id]:
                params = core_params_per_thread[thread_id]
            self.cores.append(
                Core(thread_id, trace, self.memsys, self.mapping, params, llc)
            )

        self._events = EventQueue()
        num_channels = self.memsys.num_channels
        self._ctrl_scheduled: list[float | None] = [None] * num_channels
        self._core_scheduled: list[float | None] = [None] * len(self.cores)
        # One reusable wake callable per entity (no per-event closures).
        self._ctrl_fires = [
            partial(self._fire_ctrl, channel) for channel in range(num_channels)
        ]
        self._core_fires = [
            partial(self._fire_core, index) for index in range(len(self.cores))
        ]
        self._now = 0.0
        self.events_processed = 0
        # Controller batching plumbing: a bound peek so each batch
        # iteration can check the next pending global event, and the
        # warmup/deadline boundary batches must never leap across.
        self._peek = self._events.peek_time
        self._hard_limit = _NEVER
        # Completion tracking: cores with an instruction target are
        # "required"; a counter updated when a core stamps finish_time
        # replaces an all-cores scan per event in the main loop.
        self._core_finished = [False] * len(self.cores)
        self._required = [False] * len(self.cores)
        self._finished_required = 0
        self._total_required = 0
        # OS governor (repro.os): reviewed from the event loop; killed
        # threads must not gate completion, tracked here so a warmup
        # reset re-marks them finished.
        self.governor = governor
        self._descheduled = [False] * len(self.cores)
        if governor is not None:
            governor.attach(self)
        # Observability (repro.obs): wired only when a live bus is
        # passed; otherwise every component's probe attribute keeps its
        # class-level None and no sampling events exist.
        self.obs = obs
        self._metrics_period: float | None = None
        if obs is not None and obs.enabled:
            self._attach_obs(obs)

    # ------------------------------------------------------------------
    # Observability plumbing (repro.obs).
    # ------------------------------------------------------------------
    def _attach_obs(self, obs) -> None:
        """Bind the telemetry bus through every layer.

        Runs once at construction, only for a live bus: probes land on
        component attributes that otherwise stay ``None``, and the DRAM
        command stream is mirrored through the device's existing
        ``command_log`` hook (skipped for any device that already has a
        log attached — e.g. the differential harness's capture)."""
        from repro.obs.trace import ChannelCommandLog

        if obs.trace is not None:
            if obs.config.trace_commands:
                for channel, device in enumerate(self.memsys.devices):
                    if device.command_log is None:
                        device.command_log = ChannelCommandLog(obs.trace, channel)
            mem_probe = obs.probe("mem")
            for controller in self.controllers:
                controller.probe = mem_probe
                controller.policy.probe = mem_probe
            mitigation_probe = obs.probe("mitigation")
            for mitigation in self.memsys.mitigations:
                mitigation.bind_probe(mitigation_probe)
            if self.governor is not None:
                self.governor.probe = obs.probe("os")
        if obs.metrics is not None:
            self._metrics_period = self._metrics_epoch_ns()

    def _metrics_epoch_ns(self) -> float:
        """The metrics sampling period: the explicit config value, else
        the channel-0 mechanism's epoch, else half the refresh window
        (the same default the OS governor uses)."""
        configured = self.obs.config.metrics_epoch_ns
        if configured is not None:
            return configured
        mechanism_config = getattr(self.memsys.mitigations[0], "config", None)
        epoch = getattr(mechanism_config, "epoch_ns", None)
        if epoch:
            return epoch
        return self.config.effective_spec().tREFW / 2.0

    def _fire_metrics(self, now: float) -> None:
        self.obs.metrics.sample(self, now)
        # Same liveness guard as the governor: reschedule only while
        # the simulation still has work, or sampling alone would keep
        # the event loop spinning forever.
        if not self._events.empty or self.memsys.busy():
            self._events.push(now + self._metrics_period, self._fire_metrics)

    # ------------------------------------------------------------------
    # Event scheduling helpers.
    # ------------------------------------------------------------------
    def _schedule_ctrl(self, channel: int, time: float) -> None:
        scheduled = self._ctrl_scheduled[channel]
        if scheduled is not None and scheduled <= time:
            return
        self._ctrl_scheduled[channel] = time
        self._events.push(time, self._ctrl_fires[channel])

    def _fire_ctrl(self, channel: int, now: float) -> None:
        if self._ctrl_scheduled[channel] != now:
            return  # stale wake-up, superseded by an earlier one
        self._ctrl_scheduled[channel] = None
        if self.single_step:
            wake = self.controllers[channel].step(now)
        else:
            # Quiescence-horizon batch: the controller leaps through as
            # many scheduling steps as it can before the next pending
            # global event (or the warmup/deadline boundary), then
            # reports its next wake.  Each executed step counts as one
            # processed event, like the per-step wakes it replaces.
            steps, wake = self.controllers[channel].run_until(
                now, self._peek, self._hard_limit
            )
            if steps > 1:
                self.events_processed += steps - 1
        if wake < _NEVER:
            self._schedule_ctrl(channel, max(wake, now))

    def _schedule_core(self, index: int, time: float) -> None:
        scheduled = self._core_scheduled[index]
        if scheduled is not None and scheduled <= time:
            return
        self._core_scheduled[index] = time
        self._events.push(time, self._core_fires[index])

    def _fire_core(self, index: int, now: float) -> None:
        if self._core_scheduled[index] != now:
            return  # stale wake-up, superseded by an earlier one
        self._core_scheduled[index] = None
        core = self.cores[index]
        wake = core.wake(now)
        touched = self.memsys.touched
        if touched:
            # Injections created controller work on these channels.
            for channel in touched:
                self._schedule_ctrl(channel, now)
            touched.clear()
        if wake is not None:
            self._schedule_core(index, max(wake, now))
        elif not self._core_finished[index] and core.finish_time is not None:
            self._note_finished(index)

    def _on_request_complete(self, request: Request, done_time: float) -> None:
        self._events.push(done_time, partial(self._fire_complete, request))

    def _fire_complete(self, request: Request, now: float) -> None:
        index = request.thread
        core = self.cores[index]
        core.on_complete(request, now)
        self._schedule_core(index, now)
        if not self._core_finished[index] and core.finish_time is not None:
            self._note_finished(index)

    def _note_finished(self, index: int) -> None:
        self._core_finished[index] = True
        if self._required[index]:
            self._finished_required += 1

    # ------------------------------------------------------------------
    # OS governor plumbing.
    # ------------------------------------------------------------------
    def _fire_governor(self, now: float) -> None:
        next_review = self.governor.advance(now)
        # Reschedule only while the simulation is otherwise alive: when
        # the event queue is empty and no channel has work, everything
        # has drained and a recurring review would keep the loop spinning
        # forever on governor events alone.
        if not self._events.empty or self.memsys.busy():
            self._events.push(next_review, self._fire_governor)

    def deschedule_thread(self, index: int, now: float) -> None:
        """Kill a thread on the governor's behalf: the core issues no
        further requests and stops gating completion (its measured span
        ends at the kill timestamp)."""
        core = self.cores[index]
        core.deschedule(now)
        self._descheduled[index] = True
        if core.finish_time is None:
            core.finish_time = now
        if not self._core_finished[index]:
            self._note_finished(index)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(
        self,
        instructions_per_thread: int | list[int | None] | None = None,
        max_time_ns: float | None = None,
        warmup_ns: float = 0.0,
    ) -> SimResult:
        """Simulate until every *required* core retires its instruction
        target (and its reads drain), or until ``max_time_ns`` of
        measured time elapses.

        ``instructions_per_thread`` may be a single target for all
        threads or a per-thread list; threads whose entry is None run as
        background load (e.g. an attacker that a mitigation may throttle
        indefinitely) and do not gate completion.

        ``warmup_ns`` runs the system for that long before measurement
        begins (the paper fast-forwards 100M instructions): performance
        and energy counters are then reset while *mechanism state* —
        blacklists, RHLI counters, reactive-refresh tables — carries
        over, so measurements reflect steady-state behaviour.
        """
        if isinstance(instructions_per_thread, list):
            targets = instructions_per_thread
        else:
            targets = [instructions_per_thread] * len(self.cores)
        warming = warmup_ns > 0.0
        if not warming:
            for core, target in zip(self.cores, targets):
                core.instructions_target = target
        self._required = [target is not None for target in targets]
        self._total_required = sum(self._required)
        self._core_finished = [False] * len(self.cores)
        self._finished_required = 0
        for index in range(len(self.cores)):
            self._schedule_core(index, 0.0)
        for channel in range(self.memsys.num_channels):
            self._schedule_ctrl(channel, 0.0)
        if self.governor is not None:
            self._events.push(self.governor.start(0.0), self._fire_governor)
        if self._metrics_period is not None:
            # First sample one epoch in; samples ride the ordinary event
            # queue, so they only perturb ``events_processed`` (the one
            # SimResult field excluded from result equality).
            if warming:
                self.obs.metrics.begin_warmup()
            self._events.push(self._metrics_period, self._fire_metrics)

        measure_start = warmup_ns if warming else 0.0
        # Controller batches must not leap across the warmup boundary
        # (counters reset there) or the measurement deadline; within a
        # phase they may run ahead of the event loop freely.
        if warming:
            self._hard_limit = warmup_ns
        elif max_time_ns is not None:
            self._hard_limit = measure_start + max_time_ns
        else:
            self._hard_limit = _NEVER
        events = self._events
        pop_at = events.pop_at
        # The loop runs once per *instant* rather than once per event:
        # after the first pop, every further wake scheduled for the same
        # tick (one slot per channel, request completions, core wakes —
        # including wakes pushed for this tick by the batch itself)
        # drains in the same iteration, skipping the warmup/deadline
        # bookkeeping.  Completion stays an int comparison checked
        # between callbacks (cores bump ``_finished_required`` when they
        # stamp finish_time), so a run still stops mid-tick exactly
        # where the per-event loop did.
        while True:
            if (
                not warming
                and self._total_required
                and self._finished_required >= self._total_required
            ):
                break
            if warming or max_time_ns is not None:
                next_time = events.peek_time()
                if next_time is None:
                    break
                if warming and next_time > warmup_ns:
                    self._reset_measurement(warmup_ns, targets)
                    warming = False
                    self._hard_limit = (
                        measure_start + max_time_ns
                        if max_time_ns is not None
                        else _NEVER
                    )
                    continue
                if (
                    not warming
                    and max_time_ns is not None
                    and next_time > measure_start + max_time_ns
                ):
                    self._now = measure_start + max_time_ns
                    break
                time, callback = events.pop()
            else:
                try:
                    time, callback = events.pop()
                except IndexError:
                    break
            self._now = time
            processed = 1
            callback(time)
            # Same-instant batch drain (warming/deadline checks cannot
            # change within one tick; completion can).
            required = self._total_required if not warming else 0
            while True:
                if required and self._finished_required >= required:
                    break
                callback = pop_at(time)
                if callback is None:
                    break
                processed += 1
                callback(time)
            self.events_processed += processed

        return self._collect(self._now, measure_start)

    def _reset_measurement(self, now: float, targets: list[int | None]) -> None:
        """End the warmup phase: zero performance/energy counters while
        keeping all architectural and mechanism state."""
        for core, target in zip(self.cores, targets):
            core.reset_measurement(now, target)
        self._core_finished = [False] * len(self.cores)
        self._finished_required = 0
        self.memsys.reset_measurement(now)
        # Threads the governor killed during warmup stay dead: re-stamp
        # them finished so they never gate measured-phase completion.
        for index, dead in enumerate(self._descheduled):
            if dead:
                self.cores[index].finish_time = now
                self._note_finished(index)
        if self.obs is not None:
            self.obs.note_measurement_reset(now)

    # ------------------------------------------------------------------
    def _collect(self, end_time: float, measure_start: float = 0.0) -> SimResult:
        memsys = self.memsys
        memsys.finalize(end_time)
        multi_channel = memsys.num_channels > 1
        merged_stats = memsys.merged_thread_stats()
        threads = []
        for core in self.cores:
            finish = core.finish_time if core.finish_time is not None else end_time
            span = finish - core.measure_start
            cycles = span * core.params.freq_ghz
            ipc = core.instructions_retired / cycles if cycles > 0 else 0.0
            threads.append(
                ThreadResult(
                    thread=core.thread_id,
                    instructions=core.instructions_retired,
                    finish_time_ns=span,
                    ipc=ipc,
                    mem=merged_stats[core.thread_id],
                    mem_per_channel=(
                        [
                            controller.thread_stats[core.thread_id]
                            for controller in self.controllers
                        ]
                        if multi_channel
                        else []
                    ),
                )
            )
        return SimResult(
            mitigation=self.mitigation.name,
            threads=threads,
            elapsed_ns=end_time - measure_start,
            counts=memsys.aggregate_counts(),
            active_time_ns=memsys.aggregate_active_time(),
            bitflips=memsys.aggregate_bitflips(),
            refreshes=memsys.total_refreshes(),
            victim_refreshes=memsys.total_victim_refreshes(),
            commands_issued=memsys.total_commands_issued(),
            events_processed=self.events_processed,
            channels=memsys.channel_results(),
        )
