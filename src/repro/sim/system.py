"""System wiring and the event-driven simulation loop.

A :class:`System` assembles the DRAM device, memory controller, cores,
and the RowHammer mitigation mechanism from a :class:`SystemConfig`, and
drives them to completion with a discrete-event loop.  Each entity
(controller, core) is woken only when it can make progress; a wake-up
is recognized as stale when the entity's recorded next-wake time no
longer matches the event's time, so the loop never executes an entity
twice for the same logical event.  Wake-up events reuse one bound
callable per entity instead of allocating a fresh closure per event —
several hundred thousand allocations per simulation on the hot path.
"""

from __future__ import annotations

from functools import partial

from repro.cpu.cache import SetAssocCache
from repro.cpu.core import Core
from repro.cpu.trace import Trace
from repro.dram.address import AddressMapping
from repro.dram.device import DramDevice
from repro.mem.controller import MemoryController
from repro.mem.request import Request
from repro.mem.scheduler import FrFcfsPolicy, SchedulingPolicy
from repro.mitigations.base import (
    AdjacencyOracle,
    MitigationContext,
    MitigationMechanism,
    NoMitigation,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.stats import SimResult, ThreadResult
from repro.utils.rng import DeterministicRng

_NEVER = 1.0e30


class System:
    """A complete simulated machine: cores + controller + DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        mitigation: MitigationMechanism | None = None,
        policy: SchedulingPolicy | None = None,
        adjacency_override: AdjacencyOracle | None = None,
        core_params_per_thread: list | None = None,
    ) -> None:
        self.config = config
        self.rng = DeterministicRng(config.seed)
        rowmap = config.build_rowmap()
        self.device = DramDevice(config.spec, rowmap, config.disturbance)
        self.mitigation = mitigation or NoMitigation()
        self.mapping = AddressMapping(config.spec, config.mapping_scheme, config.mop_run)

        def true_adjacency(rank: int, bank: int, row: int, distance: int) -> list[int]:
            # Rank/bank are accepted for interface generality; the row
            # mapping is uniform across banks in this model.
            return rowmap.logical_neighbors(row, distance)

        context = MitigationContext(
            spec=config.spec,
            num_threads=len(traces),
            rng=self.rng.fork("mitigation"),
            adjacency=adjacency_override or true_adjacency,
            nrh=config.disturbance.nrh,
            blast_radius=config.disturbance.blast_radius,
            blast_decay=config.disturbance.decay,
        )
        self.mitigation.attach(context)

        self.controller = MemoryController(
            config.spec,
            self.device,
            self.mitigation,
            policy or FrFcfsPolicy(),
            config.controller,
            num_threads=len(traces),
        )
        self.controller.on_request_complete = self._on_request_complete

        self.cores: list[Core] = []
        for thread_id, trace in enumerate(traces):
            llc = (
                SetAssocCache(config.llc_bytes, config.llc_ways, config.spec.line_bytes)
                if config.use_llc
                else None
            )
            params = config.core
            if core_params_per_thread is not None and core_params_per_thread[thread_id]:
                params = core_params_per_thread[thread_id]
            self.cores.append(
                Core(thread_id, trace, self.controller, self.mapping, params, llc)
            )

        self._events = EventQueue()
        self._ctrl_scheduled: float | None = None
        self._core_scheduled: list[float | None] = [None] * len(self.cores)
        # One reusable wake callable per entity (no per-event closures).
        self._core_fires = [
            partial(self._fire_core, index) for index in range(len(self.cores))
        ]
        self._now = 0.0
        self.events_processed = 0
        # Completion tracking: cores with an instruction target are
        # "required"; a counter updated when a core stamps finish_time
        # replaces an all-cores scan per event in the main loop.
        self._core_finished = [False] * len(self.cores)
        self._required = [False] * len(self.cores)
        self._finished_required = 0
        self._total_required = 0

    # ------------------------------------------------------------------
    # Event scheduling helpers.
    # ------------------------------------------------------------------
    def _schedule_ctrl(self, time: float) -> None:
        if self._ctrl_scheduled is not None and self._ctrl_scheduled <= time:
            return
        self._ctrl_scheduled = time
        self._events.push(time, self._fire_ctrl)

    def _fire_ctrl(self, now: float) -> None:
        if self._ctrl_scheduled != now:
            return  # stale wake-up, superseded by an earlier one
        self._ctrl_scheduled = None
        wake = self.controller.step(now)
        if wake < _NEVER:
            self._schedule_ctrl(max(wake, now))

    def _schedule_core(self, index: int, time: float) -> None:
        scheduled = self._core_scheduled[index]
        if scheduled is not None and scheduled <= time:
            return
        self._core_scheduled[index] = time
        self._events.push(time, self._core_fires[index])

    def _fire_core(self, index: int, now: float) -> None:
        if self._core_scheduled[index] != now:
            return  # stale wake-up, superseded by an earlier one
        self._core_scheduled[index] = None
        enqueued_before = self.controller.total_enqueued
        core = self.cores[index]
        wake = core.wake(now)
        if self.controller.total_enqueued != enqueued_before:
            # Injections created controller work.
            self._schedule_ctrl(now)
        if wake is not None:
            self._schedule_core(index, max(wake, now))
        elif not self._core_finished[index] and core.finish_time is not None:
            self._note_finished(index)

    def _on_request_complete(self, request: Request, done_time: float) -> None:
        self._events.push(done_time, partial(self._fire_complete, request))

    def _fire_complete(self, request: Request, now: float) -> None:
        index = request.thread
        core = self.cores[index]
        core.on_complete(request, now)
        self._schedule_core(index, now)
        if not self._core_finished[index] and core.finish_time is not None:
            self._note_finished(index)

    def _note_finished(self, index: int) -> None:
        self._core_finished[index] = True
        if self._required[index]:
            self._finished_required += 1

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(
        self,
        instructions_per_thread: int | list[int | None] | None = None,
        max_time_ns: float | None = None,
        warmup_ns: float = 0.0,
    ) -> SimResult:
        """Simulate until every *required* core retires its instruction
        target (and its reads drain), or until ``max_time_ns`` of
        measured time elapses.

        ``instructions_per_thread`` may be a single target for all
        threads or a per-thread list; threads whose entry is None run as
        background load (e.g. an attacker that a mitigation may throttle
        indefinitely) and do not gate completion.

        ``warmup_ns`` runs the system for that long before measurement
        begins (the paper fast-forwards 100M instructions): performance
        and energy counters are then reset while *mechanism state* —
        blacklists, RHLI counters, reactive-refresh tables — carries
        over, so measurements reflect steady-state behaviour.
        """
        if isinstance(instructions_per_thread, list):
            targets = instructions_per_thread
        else:
            targets = [instructions_per_thread] * len(self.cores)
        warming = warmup_ns > 0.0
        if not warming:
            for core, target in zip(self.cores, targets):
                core.instructions_target = target
        self._required = [target is not None for target in targets]
        self._total_required = sum(self._required)
        self._core_finished = [False] * len(self.cores)
        self._finished_required = 0
        for index in range(len(self.cores)):
            self._schedule_core(index, 0.0)
        self._schedule_ctrl(0.0)

        measure_start = warmup_ns if warming else 0.0
        events = self._events
        # The loop runs once per event (hundreds of thousands per
        # simulation): completion is a counter comparison (cores bump
        # ``_finished_required`` when they stamp finish_time), and the
        # common post-warmup/no-deadline mode pops without peeking.
        while True:
            if (
                not warming
                and self._total_required
                and self._finished_required >= self._total_required
            ):
                break
            if warming or max_time_ns is not None:
                next_time = events.peek_time()
                if next_time is None:
                    break
                if warming and next_time > warmup_ns:
                    self._reset_measurement(warmup_ns, targets)
                    warming = False
                    continue
                if (
                    not warming
                    and max_time_ns is not None
                    and next_time > measure_start + max_time_ns
                ):
                    self._now = measure_start + max_time_ns
                    break
                time, callback = events.pop()
            else:
                try:
                    time, callback = events.pop()
                except IndexError:
                    break
            self._now = time
            self.events_processed += 1
            callback(time)

        return self._collect(self._now, measure_start)

    def _reset_measurement(self, now: float, targets: list[int | None]) -> None:
        """End the warmup phase: zero performance/energy counters while
        keeping all architectural and mechanism state."""
        for core, target in zip(self.cores, targets):
            core.reset_measurement(now, target)
        self._core_finished = [False] * len(self.cores)
        self._finished_required = 0
        from repro.dram.device import CommandCounts
        from repro.mem.controller import ThreadMemStats

        self.device.finalize_active_time(now)
        self.device.counts = CommandCounts()
        self.device.active_time = [0.0] * self.config.spec.ranks
        self.controller.thread_stats = [
            ThreadMemStats() for _ in range(len(self.cores))
        ]
        self.controller.vref_count = 0
        self.controller.commands_issued = 0

    # ------------------------------------------------------------------
    def _collect(self, end_time: float, measure_start: float = 0.0) -> SimResult:
        self.device.finalize_active_time(end_time)
        threads = []
        for core in self.cores:
            finish = core.finish_time if core.finish_time is not None else end_time
            span = finish - core.measure_start
            cycles = span * core.params.freq_ghz
            ipc = core.instructions_retired / cycles if cycles > 0 else 0.0
            threads.append(
                ThreadResult(
                    thread=core.thread_id,
                    instructions=core.instructions_retired,
                    finish_time_ns=span,
                    ipc=ipc,
                    mem=self.controller.thread_stats[core.thread_id],
                )
            )
        return SimResult(
            mitigation=self.mitigation.name,
            threads=threads,
            elapsed_ns=end_time - measure_start,
            counts=self.device.counts,
            active_time_ns=list(self.device.active_time),
            bitflips=list(self.device.bitflips),
            refreshes=sum(self.controller.refresh.refreshes_issued),
            victim_refreshes=self.controller.vref_count,
            commands_issued=self.controller.commands_issued,
            events_processed=self.events_processed,
        )
