"""System wiring and the event-driven simulation loop.

A :class:`System` assembles the DRAM device, memory controller, cores,
and the RowHammer mitigation mechanism from a :class:`SystemConfig`, and
drives them to completion with a discrete-event loop.  Each entity
(controller, core) is woken only when it can make progress; version
counters suppress stale wake-ups so the loop never executes an entity
twice for the same logical event.
"""

from __future__ import annotations

from repro.cpu.cache import SetAssocCache
from repro.cpu.core import Core
from repro.cpu.trace import Trace
from repro.dram.address import AddressMapping
from repro.dram.device import DramDevice
from repro.mem.controller import MemoryController
from repro.mem.request import Request
from repro.mem.scheduler import FrFcfsPolicy, SchedulingPolicy
from repro.mitigations.base import (
    AdjacencyOracle,
    MitigationContext,
    MitigationMechanism,
    NoMitigation,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import EventQueue
from repro.sim.stats import SimResult, ThreadResult
from repro.utils.rng import DeterministicRng

_NEVER = 1.0e30


class System:
    """A complete simulated machine: cores + controller + DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        traces: list[Trace],
        mitigation: MitigationMechanism | None = None,
        policy: SchedulingPolicy | None = None,
        adjacency_override: AdjacencyOracle | None = None,
        core_params_per_thread: list | None = None,
    ) -> None:
        self.config = config
        self.rng = DeterministicRng(config.seed)
        rowmap = config.build_rowmap()
        self.device = DramDevice(config.spec, rowmap, config.disturbance)
        self.mitigation = mitigation or NoMitigation()
        self.mapping = AddressMapping(config.spec, config.mapping_scheme, config.mop_run)

        def true_adjacency(rank: int, bank: int, row: int, distance: int) -> list[int]:
            # Rank/bank are accepted for interface generality; the row
            # mapping is uniform across banks in this model.
            return rowmap.logical_neighbors(row, distance)

        context = MitigationContext(
            spec=config.spec,
            num_threads=len(traces),
            rng=self.rng.fork("mitigation"),
            adjacency=adjacency_override or true_adjacency,
            nrh=config.disturbance.nrh,
            blast_radius=config.disturbance.blast_radius,
            blast_decay=config.disturbance.decay,
        )
        self.mitigation.attach(context)

        self.controller = MemoryController(
            config.spec,
            self.device,
            self.mitigation,
            policy or FrFcfsPolicy(),
            config.controller,
            num_threads=len(traces),
        )
        self.controller.on_request_complete = self._on_request_complete

        self.cores: list[Core] = []
        for thread_id, trace in enumerate(traces):
            llc = (
                SetAssocCache(config.llc_bytes, config.llc_ways, config.spec.line_bytes)
                if config.use_llc
                else None
            )
            params = config.core
            if core_params_per_thread is not None and core_params_per_thread[thread_id]:
                params = core_params_per_thread[thread_id]
            self.cores.append(
                Core(thread_id, trace, self.controller, self.mapping, params, llc)
            )

        self._events = EventQueue()
        self._ctrl_version = 0
        self._ctrl_scheduled: float | None = None
        self._core_versions = [0] * len(self.cores)
        self._core_scheduled: list[float | None] = [None] * len(self.cores)
        self._now = 0.0

    # ------------------------------------------------------------------
    # Event scheduling helpers.
    # ------------------------------------------------------------------
    def _schedule_ctrl(self, time: float) -> None:
        if self._ctrl_scheduled is not None and self._ctrl_scheduled <= time:
            return
        self._ctrl_version += 1
        self._ctrl_scheduled = time
        version = self._ctrl_version

        def fire(now: float) -> None:
            if version != self._ctrl_version:
                return
            self._ctrl_scheduled = None
            wake = self.controller.step(now)
            if wake < _NEVER:
                self._schedule_ctrl(max(wake, now))

        self._events.push(time, fire)

    def _schedule_core(self, index: int, time: float) -> None:
        scheduled = self._core_scheduled[index]
        if scheduled is not None and scheduled <= time:
            return
        self._core_versions[index] += 1
        self._core_scheduled[index] = time
        version = self._core_versions[index]

        def fire(now: float) -> None:
            if version != self._core_versions[index]:
                return
            self._core_scheduled[index] = None
            enqueued_before = self.controller.total_enqueued
            wake = self.cores[index].wake(now)
            if self.controller.total_enqueued != enqueued_before:
                # Injections created controller work.
                self._schedule_ctrl(now)
            if wake is not None:
                self._schedule_core(index, max(wake, now))

        self._events.push(time, fire)

    def _on_request_complete(self, request: Request, done_time: float) -> None:
        core = self.cores[request.thread]

        def fire(now: float) -> None:
            core.on_complete(request, now)
            self._schedule_core(request.thread, now)

        self._events.push(done_time, fire)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(
        self,
        instructions_per_thread: int | list[int | None] | None = None,
        max_time_ns: float | None = None,
        warmup_ns: float = 0.0,
    ) -> SimResult:
        """Simulate until every *required* core retires its instruction
        target (and its reads drain), or until ``max_time_ns`` of
        measured time elapses.

        ``instructions_per_thread`` may be a single target for all
        threads or a per-thread list; threads whose entry is None run as
        background load (e.g. an attacker that a mitigation may throttle
        indefinitely) and do not gate completion.

        ``warmup_ns`` runs the system for that long before measurement
        begins (the paper fast-forwards 100M instructions): performance
        and energy counters are then reset while *mechanism state* —
        blacklists, RHLI counters, reactive-refresh tables — carries
        over, so measurements reflect steady-state behaviour.
        """
        if isinstance(instructions_per_thread, list):
            targets = instructions_per_thread
        else:
            targets = [instructions_per_thread] * len(self.cores)
        warming = warmup_ns > 0.0
        if not warming:
            for core, target in zip(self.cores, targets):
                core.instructions_target = target
        required = [
            core for core, target in zip(self.cores, targets) if target is not None
        ]
        for index in range(len(self.cores)):
            self._schedule_core(index, 0.0)
        self._schedule_ctrl(0.0)

        measure_start = warmup_ns if warming else 0.0
        while not self._events.empty:
            if not warming and required and all(core.done for core in required):
                break
            next_time = self._events.peek_time()
            if warming and next_time is not None and next_time > warmup_ns:
                self._reset_measurement(warmup_ns, targets)
                warming = False
                continue
            if (
                not warming
                and max_time_ns is not None
                and next_time is not None
                and next_time > measure_start + max_time_ns
            ):
                self._now = measure_start + max_time_ns
                break
            time, callback = self._events.pop()
            self._now = time
            callback(time)

        return self._collect(self._now, measure_start)

    def _reset_measurement(self, now: float, targets: list[int | None]) -> None:
        """End the warmup phase: zero performance/energy counters while
        keeping all architectural and mechanism state."""
        for core, target in zip(self.cores, targets):
            core.reset_measurement(now, target)
        from repro.dram.device import CommandCounts
        from repro.mem.controller import ThreadMemStats

        self.device.finalize_active_time(now)
        self.device.counts = CommandCounts()
        self.device.active_time = [0.0] * self.config.spec.ranks
        self.controller.thread_stats = [
            ThreadMemStats() for _ in range(len(self.cores))
        ]
        self.controller.vref_count = 0
        self.controller.commands_issued = 0

    # ------------------------------------------------------------------
    def _collect(self, end_time: float, measure_start: float = 0.0) -> SimResult:
        self.device.finalize_active_time(end_time)
        threads = []
        for core in self.cores:
            finish = core.finish_time if core.finish_time is not None else end_time
            span = finish - core.measure_start
            cycles = span * core.params.freq_ghz
            ipc = core.instructions_retired / cycles if cycles > 0 else 0.0
            threads.append(
                ThreadResult(
                    thread=core.thread_id,
                    instructions=core.instructions_retired,
                    finish_time_ns=span,
                    ipc=ipc,
                    mem=self.controller.thread_stats[core.thread_id],
                )
            )
        return SimResult(
            mitigation=self.mitigation.name,
            threads=threads,
            elapsed_ns=end_time - measure_start,
            counts=self.device.counts,
            active_time_ns=list(self.device.active_time),
            bitflips=list(self.device.bitflips),
            refreshes=sum(self.controller.refresh.refreshes_issued),
            victim_refreshes=self.controller.vref_count,
            commands_issued=self.controller.commands_issued,
        )
