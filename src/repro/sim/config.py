"""System configuration (Table 5 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.rowmap import (
    LinearRowMapping,
    MirroredRowMapping,
    RowMapping,
    ScrambledRowMapping,
)
from repro.dram.spec import DDR4_2400, DramSpec
from repro.cpu.core import CoreParams
from repro.mem.controller import ControllerConfig
from repro.utils.validation import ConfigError


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`~repro.sim.system.System`.

    Defaults mirror the paper's Table 5: 3.2 GHz 4-wide cores, 64-entry
    read/write queues with FR-FCFS and MOP address mapping, one rank of
    16 banks of DDR4.
    """

    spec: DramSpec = DDR4_2400
    #: Memory channels the system instantiates (one controller + DRAM
    #: device shard + mitigation instance per channel).  ``None`` defers
    #: to ``spec.channels``; an explicit value overrides the spec.
    num_channels: int | None = None
    mapping_scheme: MappingScheme = MappingScheme.MOP
    mop_run: int = 4
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    core: CoreParams = field(default_factory=CoreParams)
    disturbance: DisturbanceProfile = field(default_factory=DisturbanceProfile)
    rowmap_kind: str = "linear"  # linear | mirrored | scrambled
    rowmap_seed: int = 0xC0FFEE
    use_llc: bool = False
    llc_bytes: int = 16 * 1024 * 1024
    llc_ways: int = 8
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_channels is not None and self.num_channels < 1:
            raise ConfigError("num_channels must be >= 1")

    @property
    def channels(self) -> int:
        """Effective channel count (explicit override, else the spec's)."""
        return self.num_channels if self.num_channels is not None else self.spec.channels

    def effective_spec(self) -> DramSpec:
        """The spec with the effective channel count applied, so the
        address mapping and the MemorySystem agree on channel bits."""
        return self.spec.with_channels(self.channels)

    def build_rowmap(self) -> RowMapping:
        """Instantiate the configured in-DRAM row mapping."""
        rows = self.spec.rows_per_bank
        if self.rowmap_kind == "linear":
            return LinearRowMapping(rows)
        if self.rowmap_kind == "mirrored":
            return MirroredRowMapping(rows)
        if self.rowmap_kind == "scrambled":
            return ScrambledRowMapping(rows, seed=self.rowmap_seed)
        raise ConfigError(f"unknown rowmap kind: {self.rowmap_kind!r}")
