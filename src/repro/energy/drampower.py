"""DRAM energy model in the style of DRAMPower [18].

DRAMPower integrates datasheet IDD currents over command traces; at the
granularity this study needs, that reduces to a per-command energy for
each ACT/PRE pair, read burst, write burst, and REF, plus background
power split between active standby (any row open) and precharge standby.
Default parameters approximate a DDR4-2400 x64 single-rank DIMM built
from 8 Gb x8 devices (derived from Micron datasheet IDD values at
VDD = 1.2 V).

The model consumes a :class:`~repro.sim.stats.SimResult`: command counts
come from the device, active/precharge standby time from the device's
rank-level open-bank time integral.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimResult
from repro.utils.validation import require


@dataclass(frozen=True)
class EnergyParams:
    """Per-command energies (nJ) and background power (W) per rank."""

    act_pre_nj: float = 25.0  # one ACT+PRE pair
    rd_nj: float = 15.0  # one read burst (64 B)
    wr_nj: float = 15.5  # one write burst (64 B)
    ref_nj: float = 260.0  # one all-bank REF
    vref_nj: float = 25.0  # directed victim refresh (internal ACT+PRE)
    p_active_standby_w: float = 1.10
    p_precharge_standby_w: float = 0.65

    def __post_init__(self) -> None:
        require(self.act_pre_nj >= 0 and self.ref_nj >= 0, "energies must be >= 0")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by component, all in Joules."""

    act_pre_j: float
    read_j: float
    write_j: float
    refresh_j: float
    victim_refresh_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        return (
            self.act_pre_j
            + self.read_j
            + self.write_j
            + self.refresh_j
            + self.victim_refresh_j
            + self.background_j
        )

    @property
    def total_mj(self) -> float:
        return self.total_j * 1e3


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from a simulation result."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def energy_of(self, result: SimResult) -> EnergyBreakdown:
        """Total DRAM energy for one simulation (benign + attack traffic,
        matching the paper's DRAM-energy metric)."""
        p = self.params
        counts = result.counts
        active_ns = sum(result.active_time_ns)
        elapsed_total_ns = result.elapsed_ns * max(1, len(result.active_time_ns))
        precharge_ns = max(0.0, elapsed_total_ns - active_ns)
        return EnergyBreakdown(
            act_pre_j=counts.act * p.act_pre_nj * 1e-9,
            read_j=counts.rd * p.rd_nj * 1e-9,
            write_j=counts.wr * p.wr_nj * 1e-9,
            refresh_j=counts.ref * p.ref_nj * 1e-9,
            victim_refresh_j=counts.vref * p.vref_nj * 1e-9,
            background_j=(
                active_ns * p.p_active_standby_w + precharge_ns * p.p_precharge_standby_w
            )
            * 1e-9,
        )
