"""DRAM energy estimation (DRAMPower-like command-count model)."""

from repro.energy.drampower import EnergyModel, EnergyParams, EnergyBreakdown

__all__ = ["EnergyModel", "EnergyParams", "EnergyBreakdown"]
