"""Memory access traces.

A trace is a stream of :class:`TraceRecord` items: ``gap`` instructions
of pure compute followed by one cache-line access at ``address``.  Cores
replay traces; workload generators (``repro.workloads``) synthesize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.utils.validation import require


@dataclass(frozen=True)
class TraceRecord:
    """``gap`` compute instructions, then one access to ``address``."""

    gap: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        require(self.gap >= 0, "instruction gap must be non-negative")
        require(self.address >= 0, "address must be non-negative")


class Trace:
    """Interface: an endless (or looping) stream of records."""

    def next_record(self) -> TraceRecord:
        raise NotImplementedError


class ListTrace(Trace):
    """Replays a fixed record list, looping when exhausted."""

    def __init__(self, records: Iterable[TraceRecord], loop: bool = True) -> None:
        self.records = list(records)
        require(len(self.records) > 0, "trace must contain at least one record")
        self.loop = loop
        self._index = 0

    def next_record(self) -> TraceRecord:
        if self._index >= len(self.records):
            if not self.loop:
                raise StopIteration("trace exhausted")
            self._index = 0
        record = self.records[self._index]
        self._index += 1
        return record


class CallableTrace(Trace):
    """Wraps a generator function producing records on demand."""

    def __init__(self, fn: Callable[[], TraceRecord]) -> None:
        self._fn = fn

    def next_record(self) -> TraceRecord:
        return self._fn()
