"""CPU-side substrate: access traces, a set-associative LLC model, and a
bounded-MLP core model (3.2 GHz, 4-wide, 128-entry window per Table 5)."""

from repro.cpu.trace import TraceRecord, Trace, ListTrace, CallableTrace
from repro.cpu.cache import SetAssocCache, CacheStats
from repro.cpu.core import Core, CoreParams

__all__ = [
    "TraceRecord",
    "Trace",
    "ListTrace",
    "CallableTrace",
    "SetAssocCache",
    "CacheStats",
    "Core",
    "CoreParams",
]
