"""A set-associative, write-back, write-allocate LLC model.

The paper's system has a 16 MB, 8-way, 64 B-line last-level cache
(Table 5).  Workload profiles in ``repro.workloads`` are calibrated as
LLC-miss streams (their MPKI is Table 8's post-LLC value), so systems may
run without a cache; the model is provided for end-to-end configurations
and for filtering raw traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.utils.validation import require


@dataclass
class CacheStats:
    """Hit/miss/writeback counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    writeback_address: int | None = None


class SetAssocCache:
    """LRU set-associative cache over cache-line addresses."""

    def __init__(
        self, size_bytes: int = 16 * 1024 * 1024, ways: int = 8, line_bytes: int = 64
    ) -> None:
        require(size_bytes % (ways * line_bytes) == 0, "size must be set-aligned")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        # Per set: OrderedDict tag -> dirty flag; LRU at the front.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Access one line; returns hit/miss and an eviction writeback."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = ways[tag] or is_write
            self.stats.hits += 1
            return AccessResult(hit=True)
        self.stats.misses += 1
        writeback = None
        if len(ways) >= self.ways:
            victim_tag, dirty = ways.popitem(last=False)
            if dirty:
                victim_line = victim_tag * self.num_sets + set_index
                writeback = victim_line * self.line_bytes
                self.stats.writebacks += 1
        ways[tag] = is_write
        return AccessResult(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]
