"""A bounded-MLP trace-replay core model.

Models the paper's cores (3.2 GHz, 4-wide issue, 128-entry instruction
window) at the fidelity DRAM studies need: compute instructions execute
at the issue width, reads occupy one of ``max_outstanding`` miss slots
until their data returns (bounding memory-level parallelism, as the
instruction window does), and writes are posted (they retire on queue
acceptance but still occupy DRAM bandwidth).

The core is event-driven: :meth:`wake` makes as much forward progress as
possible at the current time and reports when it next needs the clock;
the System calls :meth:`on_complete` when a read returns.

``wake``/``_fetch_next`` are the second-hottest path in the simulator
after the FR-FCFS scheduler (~15% of a baseline run): per-wake work is
kept to plain locals, the per-instruction time step and the trace/
mapping entry points are bound once instead of re-resolved per record,
and line-address decoding hits the mapping's per-address memo (a
looping trace decodes the same addresses millions of times).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cpu.cache import SetAssocCache
from repro.cpu.trace import Trace
from repro.dram.address import AddressMapping
from repro.mem.request import Request, RequestKind
from repro.utils.validation import require


@dataclass(frozen=True)
class CoreParams:
    """Core microarchitecture knobs (Table 5 defaults)."""

    freq_ghz: float = 3.2
    issue_width: int = 4
    max_outstanding: int = 8
    retry_delay_ns: float = 10.0
    retry_backoff_max_ns: float = 1000.0

    def __post_init__(self) -> None:
        require(self.freq_ghz > 0, "frequency must be positive")
        require(self.issue_width >= 1, "issue width must be >= 1")
        require(self.max_outstanding >= 1, "MLP must be >= 1")

    @property
    def ns_per_instruction(self) -> float:
        """Compute time per instruction at full issue width."""
        return 1.0 / (self.freq_ghz * self.issue_width)


class Core:
    """One thread's core, replaying a trace against the memory system.

    ``controller`` is anything with the controller enqueue interface —
    a single :class:`~repro.mem.controller.MemoryController` or the
    channel-routing :class:`~repro.mem.memsystem.MemorySystem`.
    """

    def __init__(
        self,
        thread_id: int,
        trace: Trace,
        controller,
        mapping: AddressMapping,
        params: CoreParams | None = None,
        llc: SetAssocCache | None = None,
    ) -> None:
        self.thread_id = thread_id
        self.trace = trace
        self.controller = controller
        self.mapping = mapping
        self.params = params or CoreParams()
        self.llc = llc
        self.instructions_target: int | None = None
        self.instructions_retired = 0
        self.finish_time: float | None = None
        self.measure_start = 0.0
        self._exec_head = 0.0  # virtual execution clock
        self._outstanding_reads: set[int] = set()
        self._pending: Request | None = None  # injection-blocked request
        self._pending_writeback: Request | None = None
        self._retry_delay = self.params.retry_delay_ns
        self._trace_done = False
        # OS governor hooks (repro.os): a descheduled core issues no
        # further requests; the MLP limit starts at the parameter value
        # and an OS quota policy may scale it down/back up; migration
        # rebinds the decoder to re-pin future requests to one channel.
        self.descheduled_at: float | None = None
        self.requests_issued = 0
        self.requests_at_deschedule: int | None = None
        self.repinned_channel: int | None = None
        self._mlp_limit = self.params.max_outstanding
        # Hot-path bindings, resolved once per core instead of per wake:
        # the per-instruction time step (a property computing a division)
        # and the mapping's memoized decoder.
        self._ns_per_instr = self.params.ns_per_instruction
        self._decode = mapping.decode
        # Bound-at-init dispatch: ``wake`` is an instance attribute
        # pointing at the live implementation; deschedule() swaps in
        # the dead-core stub, so the per-wake descheduled test the
        # running path used to pay disappears entirely.
        self.wake = self._wake_running

    # ------------------------------------------------------------------
    @property
    def trace(self) -> Trace:
        return self._trace

    @trace.setter
    def trace(self, trace: Trace) -> None:
        # Rebind the hot fetch entry point whenever the trace changes.
        self._trace = trace
        self._next_record = trace.next_record

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Target instructions retired and all reads returned."""
        if self.instructions_target is None:
            return False
        return (
            self.instructions_retired >= self.instructions_target or self._trace_done
        ) and not self._outstanding_reads

    def _goal_reached(self) -> bool:
        if self._trace_done:
            return True
        if self.instructions_target is None:
            return False
        return self.instructions_retired >= self.instructions_target

    # ------------------------------------------------------------------
    def _wake_running(self, now: float) -> float | None:
        """Advance the core as far as possible at ``now``.

        Returns the next time the core needs waking, or None when it is
        blocked waiting for a read completion (or finished).  Installed
        as ``self.wake`` while the core is scheduled; a descheduled core
        dispatches to :meth:`_wake_dead` instead.
        """
        controller = self.controller
        outstanding = self._outstanding_reads
        max_outstanding = self._mlp_limit
        while True:
            # Drain any stashed request first: it belongs to already-
            # retired instructions and must issue even if the retirement
            # goal has been reached meanwhile.
            request = self._pending or self._pending_writeback
            if request is None:
                if self._goal_reached():
                    self._maybe_finish(now)
                    return None
                fetched = self._fetch_next(now)
                if fetched is None:
                    continue  # LLC hit: account and fetch again
                request = fetched
            if now < self._exec_head:
                # Compute phase not finished yet; hold the request.
                self._stash(request)
                return self._exec_head

            if not request.is_write and len(outstanding) >= max_outstanding:
                self._stash(request)
                return None  # wait for a read to return

            request.arrival = now
            if not controller.enqueue(request, now):
                self._stash(request)
                delay = self._retry_delay
                self._retry_delay = min(
                    self._retry_delay * 2.0, self.params.retry_backoff_max_ns
                )
                return now + delay

            # Accepted.
            self.requests_issued += 1
            self._retry_delay = self.params.retry_delay_ns
            if request is self._pending:
                self._pending = None
            elif request is self._pending_writeback:
                self._pending_writeback = None
            if not request.is_write:
                outstanding.add(request.request_id)

    def _wake_dead(self, now: float) -> None:
        """A killed core issues nothing more."""
        return None

    def on_complete(self, request: Request, now: float) -> None:
        """A read this core issued has returned its data."""
        self._outstanding_reads.discard(request.request_id)
        self._maybe_finish(now)

    # ------------------------------------------------------------------
    # OS governor hooks (repro.os): deschedule / quota / migrate.
    # ------------------------------------------------------------------
    def deschedule(self, now: float) -> None:
        """Kill this thread: no request issues after ``now``.

        In-flight requests drain normally (they were issued before the
        kill); the stashed pending request, if any, never issues.
        """
        if self.descheduled_at is None:
            self.descheduled_at = now
            self.requests_at_deschedule = self.requests_issued
            self.wake = self._wake_dead

    def set_mlp_scale(self, scale: float) -> None:
        """Scale the MLP limit (OS quota): effective max-outstanding is
        ``max(1, floor(max_outstanding * scale))`` — a quota of one
        request keeps even a fully-decayed thread schedulable, matching
        AttackThrottler's nonzero floor below RHLI 1."""
        require(scale > 0.0, "quota scale must be positive")
        self._mlp_limit = max(1, int(self.params.max_outstanding * min(scale, 1.0)))

    def repin_channel(self, channel: int) -> None:
        """Re-pin future requests to ``channel`` (OS migration).

        Rebinds the decoder so every address decodes onto the
        quarantine channel; bank/row coordinates are unchanged
        (modeling the OS remapping the thread's pages channel-wise).
        The shared mapping memo is never mutated — remapped addresses
        live in a per-core memo.
        """
        if self.repinned_channel == channel:
            return
        self.repinned_channel = channel
        base_decode = self.mapping.decode
        memo: dict[int, object] = {}

        def decode(address: int, _base=base_decode, _memo=memo, _channel=channel):
            decoded = _memo.get(address)
            if decoded is None:
                decoded = replace(_base(address), channel=_channel)
                _memo[address] = decoded
            return decoded

        self._decode = decode

    # ------------------------------------------------------------------
    def _stash(self, request: Request) -> None:
        if request.is_write and self._pending is not None:
            self._pending_writeback = request
        elif request is not self._pending and request is not self._pending_writeback:
            self._pending = request

    def _fetch_next(self, now: float) -> Request | None:
        """Fetch the next trace record, filter it through the LLC.

        Returns a Request to inject, or None when the access hit in the
        LLC (instructions were still retired).
        """
        try:
            record = self._next_record()
        except StopIteration:
            self._trace_done = True
            self._maybe_finish(now)
            return None
        gap = record.gap
        self.instructions_retired += gap + 1
        exec_head = self._exec_head
        if exec_head < 0.0:
            exec_head = 0.0
        self._exec_head = exec_head + gap * self._ns_per_instr
        if self.llc is not None:
            result = self.llc.access(record.address, record.is_write)
            if result.hit:
                return None
            if result.writeback_address is not None:
                wb = Request(
                    self.thread_id,
                    RequestKind.WRITE,
                    self._decode(result.writeback_address),
                    arrival=now,
                )
                self._pending_writeback = wb
            # A write miss allocates the line: the DRAM-side request is a
            # line fill (read); the dirty data leaves later as writeback.
            kind = RequestKind.READ
        else:
            kind = RequestKind.WRITE if record.is_write else RequestKind.READ
        return Request(self.thread_id, kind, self._decode(record.address), arrival=now)

    def _maybe_finish(self, now: float) -> None:
        if self.finish_time is None and self.done:
            self.finish_time = now

    # ------------------------------------------------------------------
    def reset_measurement(self, now: float, target: int | None) -> None:
        """Zero performance counters after a warmup phase."""
        self.instructions_retired = 0
        self.finish_time = None
        self.measure_start = now
        self.instructions_target = target

    def ipc(self) -> float:
        """Retired instructions per *CPU cycle* over the measured span."""
        if self.finish_time is None:
            return 0.0
        span = self.finish_time - self.measure_start
        if span <= 0.0:
            return 0.0
        return self.instructions_retired / (span * self.params.freq_ghz)
