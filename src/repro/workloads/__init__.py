"""Workload synthesis: Table 8 benign application profiles, the
calibrated trace generator, RowHammer attack traces, and the paper's
multiprogrammed workload mixes."""

from repro.workloads.profiles import (
    WorkloadProfile,
    Category,
    TABLE8_PROFILES,
    profile_by_name,
    profiles_in_category,
)
from repro.workloads.generator import ProfileTrace, build_benign_trace
from repro.workloads.attacks import (
    build_attack_trace,
    double_sided_attack,
    many_sided_attack,
    single_sided_attack,
)
from repro.workloads.mixes import WorkloadMix, benign_mixes, attack_mixes

__all__ = [
    "WorkloadProfile",
    "Category",
    "TABLE8_PROFILES",
    "profile_by_name",
    "profiles_in_category",
    "ProfileTrace",
    "build_benign_trace",
    "build_attack_trace",
    "double_sided_attack",
    "many_sided_attack",
    "single_sided_attack",
    "WorkloadMix",
    "benign_mixes",
    "attack_mixes",
]
