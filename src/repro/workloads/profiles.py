"""Table 8: the 30 benign applications used in the paper's evaluation.

Each profile records the application's published MPKI (LLC misses per
kilo-instruction) and RBCPKI (row-buffer conflicts per kilo-instruction)
— RBCPKI being "an indicator of row activation rate, which is the key
workload property that triggers RowHammer mitigation mechanisms"
(Section 7) — plus generator knobs our synthesizer uses to hit that
operating point (working-set rows per bank, bank spread, write
fraction).

Applications whose MPKI column is "-" in Table 8 (non-temporal copies,
YCSB disk I/O, network accelerators) access memory directly; for those
we assign an effective MPKI consistent with their RBCPKI and access
nature (documented per entry).  These assignments are calibration
choices, validated by ``benchmarks/bench_table8_workloads.py``, which
regenerates the table from simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import ConfigError


class Category(enum.Enum):
    """Table 8 grouping by RBCPKI: L (<1), M (1..5), H (>5)."""

    L = "L"
    M = "M"
    H = "H"


@dataclass(frozen=True)
class WorkloadProfile:
    """One benign application's memory behaviour."""

    name: str
    suite: str
    category: Category
    mpki: float  # effective LLC-miss rate driving the generator
    rbcpki: float  # target row-buffer conflict rate
    table_mpki: float | None = None  # Table 8's MPKI column (None = "-")
    working_set_rows: int = 512  # distinct rows touched per bank
    banks_used: int = 16
    write_fraction: float = 0.2
    streaming: bool = False  # sequential row sweep (non-temporal copies)
    #: Pin the working set to one memory channel (None = spread rows
    #: across channels).  Channel-affine profiles model applications
    #: whose pages land on a single channel — the skewed-load scenarios
    #: a channel-sharded memory system must be exercised against.
    channel_affinity: int | None = None

    def pinned_to(self, channel: int) -> "WorkloadProfile":
        """This profile with its working set confined to ``channel``
        (modulo the system's channel count at trace-build time)."""
        from dataclasses import replace

        return replace(self, channel_affinity=channel)

    @property
    def conflict_fraction(self) -> float:
        """Fraction of accesses that should open a new row."""
        if self.mpki <= 0.0:
            return 0.0
        return min(1.0, self.rbcpki / self.mpki)

    @property
    def gap_mean(self) -> float:
        """Mean compute instructions between accesses."""
        if self.mpki <= 0.0:
            return 1.0e9
        return max(0.0, 1000.0 / self.mpki - 1.0)


def _p(name, suite, cat, mpki, rbcpki, table_mpki, ws=512, banks=16, wf=0.2, stream=False):
    return WorkloadProfile(
        name=name,
        suite=suite,
        category=cat,
        mpki=mpki,
        rbcpki=rbcpki,
        table_mpki=table_mpki,
        working_set_rows=ws,
        banks_used=banks,
        write_fraction=wf,
        streaming=stream,
    )


#: The 30 applications of Table 8 with their published MPKI/RBCPKI.
#: For "-" MPKI rows the effective MPKI is chosen as follows:
#:   * movnti.rowmaj — streaming row-major copy: high bandwidth, almost
#:     all row hits (MPKI 40, RBCPKI 0.2).
#:   * movnti.colmaj — streaming column-major copy: every access opens a
#:     new row (MPKI ~= RBCPKI).
#:   * ycsb.* — disk I/O with moderate locality (MPKI ~= 2.5x RBCPKI).
#:   * freescale* — network accelerators: near-random rows, almost every
#:     access conflicts (MPKI ~= 1.05x RBCPKI).
TABLE8_PROFILES: tuple[WorkloadProfile, ...] = (
    # --- L: RBCPKI < 1 ------------------------------------------------
    _p("444.namd", "SPEC2006", Category.L, 0.1, 0.03, 0.1, ws=64),
    _p("481.wrf", "SPEC2006", Category.L, 0.1, 0.04, 0.1, ws=64),
    _p("435.gromacs", "SPEC2006", Category.L, 0.2, 0.04, 0.2, ws=64),
    _p("456.hmmer", "SPEC2006", Category.L, 0.1, 0.04, 0.1, ws=64),
    _p("464.h264ref", "SPEC2006", Category.L, 0.1, 0.05, 0.1, ws=96),
    _p("447.dealII", "SPEC2006", Category.L, 0.1, 0.05, 0.1, ws=96),
    _p("403.gcc", "SPEC2006", Category.L, 0.2, 0.1, 0.2, ws=128),
    _p("401.bzip2", "SPEC2006", Category.L, 0.3, 0.1, 0.3, ws=128),
    _p("445.gobmk", "SPEC2006", Category.L, 0.4, 0.1, 0.4, ws=128),
    _p("458.sjeng", "SPEC2006", Category.L, 0.3, 0.2, 0.3, ws=128),
    _p("movnti.rowmaj", "NonTempCopy", Category.L, 40.0, 0.2, None, ws=256, wf=0.5, stream=True),
    _p("ycsb.A", "YCSB", Category.L, 1.0, 0.4, None, ws=256, wf=0.5),
    # --- M: 1 <= RBCPKI <= 5 -------------------------------------------
    _p("ycsb.F", "YCSB", Category.M, 2.5, 1.0, None, ws=384, wf=0.5),
    _p("ycsb.C", "YCSB", Category.M, 2.5, 1.0, None, ws=384, wf=0.0),
    _p("ycsb.B", "YCSB", Category.M, 2.8, 1.1, None, ws=384, wf=0.1),
    _p("471.omnetpp", "SPEC2006", Category.M, 1.3, 1.2, 1.3, ws=384),
    _p("483.xalancbmk", "SPEC2006", Category.M, 8.5, 2.4, 8.5, ws=512),
    _p("482.sphinx3", "SPEC2006", Category.M, 9.6, 3.7, 9.6, ws=512),
    _p("436.cactusADM", "SPEC2006", Category.M, 16.5, 3.7, 16.5, ws=512),
    _p("437.leslie3d", "SPEC2006", Category.M, 9.9, 4.6, 9.9, ws=512),
    _p("473.astar", "SPEC2006", Category.M, 5.6, 4.8, 5.6, ws=512),
    # --- H: RBCPKI > 5 --------------------------------------------------
    _p("450.soplex", "SPEC2006", Category.H, 10.2, 7.1, 10.2, ws=768),
    _p("462.libquantum", "SPEC2006", Category.H, 26.9, 7.7, 26.9, ws=768),
    _p("433.milc", "SPEC2006", Category.H, 13.6, 10.9, 13.6, ws=1024),
    _p("459.GemsFDTD", "SPEC2006", Category.H, 20.6, 15.3, 20.6, ws=1024),
    _p("470.lbm", "SPEC2006", Category.H, 36.5, 24.7, 36.5, ws=1024),
    _p("429.mcf", "SPEC2006", Category.H, 201.7, 62.3, 201.7, ws=2048),
    _p("movnti.colmaj", "NonTempCopy", Category.H, 31.0, 30.9, None, ws=2048, wf=0.5, stream=True),
    _p("freescale1", "Network", Category.H, 354.0, 336.8, None, ws=4096, wf=0.3),
    _p("freescale2", "Network", Category.H, 389.0, 370.4, None, ws=4096, wf=0.3),
)


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a Table 8 profile by application name."""
    for profile in TABLE8_PROFILES:
        if profile.name == name:
            return profile
    raise ConfigError(f"unknown workload profile: {name!r}")


def profiles_in_category(category: Category) -> list[WorkloadProfile]:
    """All profiles in one of the L/M/H groups."""
    return [p for p in TABLE8_PROFILES if p.category is category]
