"""Multiprogrammed workload mixes (Section 7).

The paper evaluates 125 eight-thread mixes of randomly-chosen benign
applications, plus 125 mixes where one thread is replaced by a
double-sided RowHammer attack.  Mixes are deterministic functions of
their index, so experiments are reproducible and subsets are stable.

Row-space layout: each thread's working set lives in its own stripe of
``rows_per_bank // threads`` rows (``slot * stride``), so co-running
threads never silently alias onto each other's rows — the old
``(slot * 8192) % rows_per_bank`` offset collapsed every thread onto
offset 0 whenever ``rows_per_bank`` divided 8192 (small-geometry test
specs).  For the canonical 8-thread mixes on the default 64K-row spec
the stride is exactly the historical 8192, so golden fixtures are
unchanged.

Attack traces are seeded per mix: mix 0 keeps the canonical fixed
victim row (:data:`~repro.workloads.attacks.DEFAULT_VICTIM_ROW`, which
the golden fixtures pin bit-exactly), and every later mix derives its
victim row from the mix's ``attack_seed`` within the attacker's row
stripe — previously all 125 attack mixes hosted the byte-identical
attack trace.

Channel-affine variants: :meth:`WorkloadMix.pinned` returns a mix whose
slot ``k`` is confined to channel ``k`` (modulo the system's channel
count at build time) — benign threads through
:meth:`~repro.workloads.profiles.WorkloadProfile.pinned_to`, the
attacker through the ``channels=`` kwarg of
:func:`~repro.workloads.attacks.double_sided_attack`.  Pinned mixes are
the skewed-load scenarios a channel-sharded memory system (and
per-channel attribution, the BreakHammer direction) must be exercised
against; on a single-channel system they degenerate to the interleaved
trace, record for record.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cpu.trace import Trace
from repro.dram.address import AddressMapping
from repro.dram.spec import DramSpec
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require
from repro.workloads.attacks import DEFAULT_VICTIM_ROW, double_sided_attack
from repro.workloads.generator import build_benign_trace
from repro.workloads.profiles import TABLE8_PROFILES


#: Thread index that hosts the attack in attack mixes.
ATTACKER_THREAD = 0

#: Canonical mix width (the paper's eight-thread mixes).  Alone-IPC
#: runs (:meth:`~repro.harness.runner.Runner.run_single`) mirror this
#: layout so their traces are bit-identical to the mix's.
DEFAULT_MIX_THREADS = 8


def mix_row_stride(spec: DramSpec, threads: int = DEFAULT_MIX_THREADS) -> int:
    """Rows-per-thread stripe width for a ``threads``-wide mix.

    Every thread's working set is offset by ``slot * stride``; deriving
    the stride from the geometry (instead of a fixed 8192) keeps the
    stripes disjoint on small-geometry specs.
    """
    require(threads >= 1, "mix needs at least one thread")
    stride = spec.rows_per_bank // threads
    require(
        stride >= 1,
        f"{threads} threads cannot get disjoint row stripes in "
        f"{spec.rows_per_bank} rows per bank",
    )
    return stride


def mix_row_offset(
    spec: DramSpec, slot: int, threads: int = DEFAULT_MIX_THREADS
) -> int:
    """Row offset of mix slot ``slot`` (see :func:`mix_row_stride`)."""
    return slot * mix_row_stride(spec, threads)


def _seeded_victim_row(stride: int, slot: int, seed: int) -> int:
    """Deterministic victim row inside slot ``slot``'s row stripe.

    Constraining the victim (and hence both aggressors, victim ± 1) to
    the attacker's own stripe keeps seeded attacks from aliasing onto a
    benign thread's working set.
    """
    require(
        stride >= 4,
        f"stride {stride} too small to place a double-sided attack "
        "(need victim +/- 1 inside the attacker's stripe)",
    )
    low = slot * stride + 1
    high = (slot + 1) * stride - 2
    rng = DeterministicRng(seed).fork("attack-victim")
    return rng.randint(low, high)


@dataclass(frozen=True)
class WorkloadMix:
    """A named multiprogrammed workload.

    ``attack_seed`` seeds the attack trace's victim-row choice (``None``
    keeps the canonical fixed :data:`DEFAULT_VICTIM_ROW`, the
    golden-fixture fallback).  ``pinned_channels`` confines each slot to
    one memory channel (``None`` = every slot interleaves).
    """

    name: str
    app_names: tuple[str, ...]
    has_attack: bool
    attack_seed: int | None = None
    pinned_channels: tuple[int | None, ...] | None = None

    @property
    def attacker_threads(self) -> set[int]:
        return {ATTACKER_THREAD} if self.has_attack else set()

    def pinned_channel(self, slot: int) -> int | None:
        """Channel slot ``slot`` is pinned to (None = interleaved)."""
        if self.pinned_channels is None:
            return None
        return self.pinned_channels[slot]

    def pinned(self) -> "WorkloadMix":
        """The channel-affine variant of this mix: slot ``k`` pinned to
        channel ``k`` (modulo the channel count at trace-build time), so
        an attacker in slot 0 is confined to channel 0."""
        return replace(
            self,
            name=f"{self.name}-pinned",
            pinned_channels=tuple(range(len(self.app_names))),
        )

    def build_traces(
        self, spec: DramSpec, mapping: AddressMapping, seed: int = 1
    ) -> list[Trace]:
        """Instantiate the mix's traces against a spec and mapping."""
        threads = len(self.app_names)
        if self.pinned_channels is not None:
            require(
                len(self.pinned_channels) == threads,
                "pinned_channels must have one entry per mix slot",
            )
        stride = mix_row_stride(spec, threads)
        # Disjoint per-thread stripes by construction; the old
        # (slot * 8192) % rows_per_bank offset aliased every thread onto
        # offset 0 whenever rows_per_bank divided 8192.
        offsets = [slot * stride for slot in range(threads)]
        assert len(set(offsets)) == threads, "thread row stripes must not alias"
        traces: list[Trace] = []
        for slot, app in enumerate(self.app_names):
            pinned = self.pinned_channel(slot)
            if app == "attack":
                if self.attack_seed is None:
                    victim_row = DEFAULT_VICTIM_ROW  # golden-fixture fallback
                else:
                    victim_row = _seeded_victim_row(
                        stride, slot, seed + self.attack_seed
                    )
                traces.append(
                    double_sided_attack(
                        spec,
                        mapping,
                        victim_row=victim_row,
                        channels=None if pinned is None else [pinned % spec.channels],
                    )
                )
            else:
                profile = next(p for p in TABLE8_PROFILES if p.name == app)
                if pinned is not None:
                    profile = profile.pinned_to(pinned)
                traces.append(
                    build_benign_trace(
                        profile,
                        spec,
                        mapping,
                        seed=seed + slot,
                        # Spread working sets across the row space.
                        row_offset=offsets[slot],
                    )
                )
        return traces


def _pick_apps(index: int, threads: int, master_seed: int) -> list[str]:
    rng = DeterministicRng(master_seed).fork(f"mix-{index}")
    return [rng.choice(TABLE8_PROFILES).name for _ in range(threads)]


def benign_mixes(count: int = 125, threads: int = 8, master_seed: int = 2021) -> list[WorkloadMix]:
    """The paper's "no RowHammer attack" mixes (8 benign threads)."""
    return [
        WorkloadMix(
            name=f"benign-{index:03d}",
            app_names=tuple(_pick_apps(index, threads, master_seed)),
            has_attack=False,
        )
        for index in range(count)
    ]


def attack_mixes(count: int = 125, threads: int = 8, master_seed: int = 2021) -> list[WorkloadMix]:
    """The paper's "RowHammer attack present" mixes (1 attacker + 7
    benign threads).

    Mix 0 keeps the canonical fixed attack (``attack_seed=None`` →
    victim row :data:`DEFAULT_VICTIM_ROW`) — the golden fixtures pin its
    results bit-exactly — while every later mix seeds its victim row
    from ``(master_seed, index)`` so the 125 attack mixes no longer
    host byte-identical attack traces.
    """
    mixes = []
    for index in range(count):
        apps = _pick_apps(index + 10_000, threads - 1, master_seed)
        names = ["attack"] + apps
        mixes.append(
            WorkloadMix(
                name=f"attack-{index:03d}",
                app_names=tuple(names),
                has_attack=True,
                attack_seed=None if index == 0 else master_seed * 100_000 + index,
            )
        )
    return mixes
