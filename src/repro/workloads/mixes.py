"""Multiprogrammed workload mixes (Section 7).

The paper evaluates 125 eight-thread mixes of randomly-chosen benign
applications, plus 125 mixes where one thread is replaced by a
double-sided RowHammer attack.  Mixes are deterministic functions of
their index, so experiments are reproducible and subsets are stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.trace import Trace
from repro.dram.address import AddressMapping
from repro.dram.spec import DramSpec
from repro.utils.rng import DeterministicRng
from repro.workloads.attacks import double_sided_attack
from repro.workloads.generator import build_benign_trace
from repro.workloads.profiles import TABLE8_PROFILES


#: Thread index that hosts the attack in attack mixes.
ATTACKER_THREAD = 0


@dataclass(frozen=True)
class WorkloadMix:
    """A named multiprogrammed workload."""

    name: str
    app_names: tuple[str, ...]
    has_attack: bool

    @property
    def attacker_threads(self) -> set[int]:
        return {ATTACKER_THREAD} if self.has_attack else set()

    def build_traces(
        self, spec: DramSpec, mapping: AddressMapping, seed: int = 1
    ) -> list[Trace]:
        """Instantiate the mix's traces against a spec and mapping."""
        traces: list[Trace] = []
        for slot, app in enumerate(self.app_names):
            if app == "attack":
                traces.append(double_sided_attack(spec, mapping))
            else:
                profile = next(p for p in TABLE8_PROFILES if p.name == app)
                traces.append(
                    build_benign_trace(
                        profile,
                        spec,
                        mapping,
                        seed=seed + slot,
                        # Spread working sets across the row space.
                        row_offset=(slot * 8192) % spec.rows_per_bank,
                    )
                )
        return traces


def _pick_apps(index: int, threads: int, master_seed: int) -> list[str]:
    rng = DeterministicRng(master_seed).fork(f"mix-{index}")
    return [rng.choice(TABLE8_PROFILES).name for _ in range(threads)]


def benign_mixes(count: int = 125, threads: int = 8, master_seed: int = 2021) -> list[WorkloadMix]:
    """The paper's "no RowHammer attack" mixes (8 benign threads)."""
    return [
        WorkloadMix(
            name=f"benign-{index:03d}",
            app_names=tuple(_pick_apps(index, threads, master_seed)),
            has_attack=False,
        )
        for index in range(count)
    ]


def attack_mixes(count: int = 125, threads: int = 8, master_seed: int = 2021) -> list[WorkloadMix]:
    """The paper's "RowHammer attack present" mixes (1 attacker + 7
    benign threads)."""
    mixes = []
    for index in range(count):
        apps = _pick_apps(index + 10_000, threads - 1, master_seed)
        names = ["attack"] + apps
        mixes.append(
            WorkloadMix(
                name=f"attack-{index:03d}",
                app_names=tuple(names),
                has_attack=True,
            )
        )
    return mixes
