"""Synthetic benign-application trace generation.

The generator reproduces a profile's (MPKI, RBCPKI) operating point —
the workload properties every mitigation mechanism in the study keys on
— with a simple behavioural model:

* accesses arrive every ``gap_mean`` instructions (geometric gaps),
* each access targets one of ``banks_used`` banks (round-robin with a
  random skip, giving realistic bank-level parallelism),
* per bank, the stream stays in the current row with probability
  ``1 - conflict_fraction`` and otherwise opens a new row drawn from the
  profile's working set (or the next sequential row for streaming
  profiles),
* within a row, columns walk sequentially (spatial locality).

Addresses are produced as byte addresses via the system's address
mapping, so the core-side decode is exactly inverse to generation.
"""

from __future__ import annotations

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.spec import DramSpec
from repro.utils.rng import DeterministicRng
from repro.workloads.profiles import WorkloadProfile


class ProfileTrace(Trace):
    """An endless trace stream matching a :class:`WorkloadProfile`."""

    def __init__(
        self,
        profile: WorkloadProfile,
        spec: DramSpec,
        mapping: AddressMapping,
        rng: DeterministicRng,
        rank: int = 0,
        row_offset: int = 0,
    ) -> None:
        self.profile = profile
        self.spec = spec
        self.mapping = mapping
        self.rng = rng
        self.rank = rank
        # Offset this thread's working set so co-running instances of
        # the same profile do not share rows.
        self.row_offset = row_offset % spec.rows_per_bank
        self.banks_used = min(profile.banks_used, spec.banks_per_rank)
        # Rows spread deterministically across channels (row % channels):
        # a bank's working set splits evenly over the channel shards
        # without consuming RNG draws, so single-channel streams are
        # bit-identical to the pre-channel generator (row % 1 == 0).
        # Channel-affine profiles instead pin every access to one
        # channel (modulo the channel count), modelling workloads whose
        # pages all live on a single channel shard.
        self._channels = spec.channels
        self._affinity = (
            None
            if profile.channel_affinity is None
            else profile.channel_affinity % spec.channels
        )
        self._bank_cursor = 0
        self._current_row = [0] * spec.banks_per_rank
        self._current_col = [0] * spec.banks_per_rank
        self._stream_row = 0
        for bank in range(spec.banks_per_rank):
            self._current_row[bank] = self._pick_new_row(bank)

    # ------------------------------------------------------------------
    def _pick_new_row(self, bank: int) -> int:
        profile = self.profile
        if profile.streaming:
            self._stream_row += 1
            row = self._stream_row % profile.working_set_rows
        else:
            row = self.rng.randint(0, profile.working_set_rows - 1)
        return (row + self.row_offset) % self.spec.rows_per_bank

    def _pick_bank(self) -> int:
        # Round-robin with random skips: spreads load across banks while
        # revisiting banks often enough for open rows to be reused.
        step = 1 if self.rng.uniform() < 0.75 else self.rng.randint(2, 3)
        self._bank_cursor = (self._bank_cursor + step) % self.banks_used
        return self._bank_cursor

    def next_record(self) -> TraceRecord:
        profile = self.profile
        gap = self.rng.geometric(profile.gap_mean)
        bank = self._pick_bank()
        if self.rng.uniform() < profile.conflict_fraction:
            self._current_row[bank] = self._pick_new_row(bank)
            self._current_col[bank] = 0
        col = self._current_col[bank]
        self._current_col[bank] = (col + 1) % self.spec.columns_per_row
        row = self._current_row[bank]
        channel = row % self._channels if self._affinity is None else self._affinity
        address = self.mapping.encode(
            DecodedAddress(self.rank, bank, row, col, channel)
        )
        is_write = self.rng.uniform() < profile.write_fraction
        return TraceRecord(gap=gap, address=address, is_write=is_write)


class _RecordStream:
    """A lazily-materialized, shared record sequence for one trace
    identity.  Multiple replays extend and read the same list."""

    __slots__ = ("source", "records")

    def __init__(self, source: ProfileTrace) -> None:
        self.source = source
        self.records: list[TraceRecord] = []


class ReplayTrace(Trace):
    """Deterministic replay over a cached :class:`ProfileTrace` stream.

    A benign trace is a pure function of (profile, spec, mapping, seed,
    row offset), and one sweep replays the same trace in many runs — a
    Figure 5 mix is simulated once per mechanism plus a baseline.  The
    shared stream generates each record once; replays after the first
    are list reads.
    """

    __slots__ = ("_stream", "_index")

    def __init__(self, stream: _RecordStream) -> None:
        self._stream = stream
        self._index = 0

    def next_record(self) -> TraceRecord:
        stream = self._stream
        records = stream.records
        index = self._index
        if index >= len(records):
            records.append(stream.source.next_record())
        self._index = index + 1
        return records[index]


#: Process-wide stream cache; keys are full trace identities, so two
#: traces share records only when every generation input matches.
_STREAM_CACHE: dict[tuple, _RecordStream] = {}


def build_benign_trace(
    profile: WorkloadProfile,
    spec: DramSpec,
    mapping: AddressMapping,
    seed: int,
    row_offset: int = 0,
) -> Trace:
    """Label-seeded benign trace, replayed from the shared record cache."""
    key = (profile, spec, mapping.spec, mapping.scheme, mapping.mop_run, seed, row_offset)
    stream = _STREAM_CACHE.get(key)
    if stream is None:
        rng = DeterministicRng(seed).fork(f"trace-{profile.name}-{row_offset}")
        stream = _RecordStream(
            ProfileTrace(profile, spec, mapping, rng, row_offset=row_offset)
        )
        _STREAM_CACHE[key] = stream
    return ReplayTrace(stream)
