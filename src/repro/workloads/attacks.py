"""RowHammer attack traces (Section 7, "Attack Model").

The paper's synthetic attack "activates two rows in each bank as
frequently as possible by alternating between them at every row
activation (RA, RB, RA, RB, ...)" — a double-sided attack on the row
between the two aggressors.  We also provide single-sided and
many-sided (TRRespass-style) variants.  Attack records carry zero
instruction gap (a tight hammering loop) and are pure reads.

All variants are channel-aware: on a multi-channel spec the attacker
rotates round-robin across every channel (advancing the channel each
time the bank rotation wraps), hammering the same aggressor rows in
every channel's shard — the worst case for per-channel mitigation
instances, since each instance must detect the attack independently.
Row alternation is tracked per (channel, bank) so every shard sees the
row conflict (and hence the ACT) the attack relies on.  On a
single-channel spec the rotation degenerates to the channel-free trace,
record for record.
"""

from __future__ import annotations

import math

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.spec import DramSpec
from repro.utils.validation import require

#: Canonical victim row of the un-seeded double-sided attack.  Seeded
#: call sites (:meth:`repro.workloads.mixes.WorkloadMix.build_traces`)
#: derive a per-mix victim row instead; the golden fixtures pin the
#: results of this fixed fallback bit-exactly.
DEFAULT_VICTIM_ROW = 2048


class AttackTrace(Trace):
    """Cycles through aggressor rows across banks (and channels) at
    maximum rate.

    ``aggressors[bank]`` is the list of rows hammered in that bank; the
    trace alternates rows within a (channel, bank) on consecutive visits
    (forcing a row conflict — and hence an ACT — every time), rotates
    across banks to saturate rank-level parallelism, and rotates across
    ``channels`` each time the bank rotation wraps.
    """

    def __init__(
        self,
        spec: DramSpec,
        mapping: AddressMapping,
        aggressors: dict[int, list[int]],
        rank: int = 0,
        gap: int = 0,
        channels: list[int] | None = None,
    ) -> None:
        require(len(aggressors) >= 1, "attack needs at least one bank")
        for rows in aggressors.values():
            require(len(rows) >= 2, "need >=2 aggressor rows per bank to force ACTs")
        self.spec = spec
        self.mapping = mapping
        self.rank = rank
        self.gap = gap
        self.banks = sorted(aggressors)
        self.aggressors = {bank: list(rows) for bank, rows in aggressors.items()}
        self.channels = (
            list(channels) if channels is not None else list(range(spec.channels))
        )
        require(len(self.channels) >= 1, "attack needs at least one channel")
        for channel in self.channels:
            require(0 <= channel < spec.channels, "attack channel out of range")
        self._bank_cursor = 0
        self._channel_cursor = 0
        self._row_cursor = {
            (channel, bank): 0 for channel in self.channels for bank in self.banks
        }
        # The rotation is purely periodic (no RNG): precompute one full
        # period of records and replay it, so the hammering firehose —
        # the hottest trace in every attack mix — costs one list index
        # per record instead of an encode + two allocations.  Periods
        # are tiny (banks x channels x rows-per-bank); degenerate
        # configurations fall back to on-the-fly generation.
        period = (
            len(self.banks)
            * len(self.channels)
            * math.lcm(*(len(rows) for rows in self.aggressors.values()))
        )
        self._records: list[TraceRecord] | None = None
        self._replay_index = 0
        if period <= 65536:
            self._records = [self._generate() for _ in range(period)]

    def _generate(self) -> TraceRecord:
        channel = self.channels[self._channel_cursor]
        bank = self.banks[self._bank_cursor]
        cursor = self._bank_cursor + 1
        if cursor == len(self.banks):
            cursor = 0
            self._channel_cursor = (self._channel_cursor + 1) % len(self.channels)
        self._bank_cursor = cursor
        rows = self.aggressors[bank]
        index = self._row_cursor[(channel, bank)]
        self._row_cursor[(channel, bank)] = (index + 1) % len(rows)
        address = self.mapping.encode(
            DecodedAddress(self.rank, bank, rows[index], 0, channel)
        )
        return TraceRecord(gap=self.gap, address=address, is_write=False)

    def next_record(self) -> TraceRecord:
        records = self._records
        if records is None:
            return self._generate()
        index = self._replay_index
        self._replay_index = index + 1 if index + 1 < len(records) else 0
        return records[index]


def double_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    victim_row: int = DEFAULT_VICTIM_ROW,
    banks: list[int] | None = None,
    channels: list[int] | None = None,
) -> AttackTrace:
    """The paper's attack: hammer victim_row±1 in each bank (of every
    channel, round-robin, on multi-channel specs)."""
    require(1 <= victim_row < spec.rows_per_bank - 1, "victim must have neighbors")
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    aggressors = {bank: [victim_row - 1, victim_row + 1] for bank in banks}
    return AttackTrace(spec, mapping, aggressors, channels=channels)


def single_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    aggressor_row: int = DEFAULT_VICTIM_ROW,
    banks: list[int] | None = None,
    channels: list[int] | None = None,
) -> AttackTrace:
    """Hammer one aggressor, alternating with a far dummy row so each
    visit forces a row conflict (same-row accesses would just hit the
    row buffer and never activate)."""
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    dummy = (aggressor_row + spec.rows_per_bank // 2) % spec.rows_per_bank
    aggressors = {bank: [aggressor_row, dummy] for bank in banks}
    return AttackTrace(spec, mapping, aggressors, channels=channels)


def many_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    first_row: int = DEFAULT_VICTIM_ROW,
    sides: int = 9,
    banks: list[int] | None = None,
    channels: list[int] | None = None,
) -> AttackTrace:
    """TRRespass-style many-sided attack: ``sides`` aggressors spaced two
    rows apart (victims interleaved between them)."""
    require(sides >= 2, "many-sided attack needs >= 2 aggressors")
    require(
        first_row + 2 * sides < spec.rows_per_bank,
        "aggressor range exceeds the bank",
    )
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    rows = [first_row + 2 * k for k in range(sides)]
    aggressors = {bank: rows for bank in banks}
    return AttackTrace(spec, mapping, aggressors, channels=channels)


def build_attack_trace(
    kind: str,
    spec: DramSpec,
    mapping: AddressMapping,
    **kwargs,
) -> AttackTrace:
    """Build an attack trace by name: double | single | many.

    Every kind sweeps all of the spec's channels round-robin by default
    (the multi-channel worst case); pass ``channels=[...]`` to confine
    the attack to a subset.
    """
    builders = {
        "double": double_sided_attack,
        "single": single_sided_attack,
        "many": many_sided_attack,
    }
    require(kind in builders, f"unknown attack kind {kind!r}")
    return builders[kind](spec, mapping, **kwargs)
