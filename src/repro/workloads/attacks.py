"""RowHammer attack traces (Section 7, "Attack Model").

The paper's synthetic attack "activates two rows in each bank as
frequently as possible by alternating between them at every row
activation (RA, RB, RA, RB, ...)" — a double-sided attack on the row
between the two aggressors.  We also provide single-sided and
many-sided (TRRespass-style) variants.  Attack records carry zero
instruction gap (a tight hammering loop) and are pure reads.
"""

from __future__ import annotations

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.spec import DramSpec
from repro.utils.validation import require


class AttackTrace(Trace):
    """Cycles through aggressor rows across banks at maximum rate.

    ``aggressors[bank]`` is the list of rows hammered in that bank; the
    trace alternates rows within a bank on consecutive visits (forcing a
    row conflict — and hence an ACT — every time) and rotates across
    banks to saturate rank-level parallelism.
    """

    def __init__(
        self,
        spec: DramSpec,
        mapping: AddressMapping,
        aggressors: dict[int, list[int]],
        rank: int = 0,
        gap: int = 0,
    ) -> None:
        require(len(aggressors) >= 1, "attack needs at least one bank")
        for rows in aggressors.values():
            require(len(rows) >= 2, "need >=2 aggressor rows per bank to force ACTs")
        self.spec = spec
        self.mapping = mapping
        self.rank = rank
        self.gap = gap
        self.banks = sorted(aggressors)
        self.aggressors = {bank: list(rows) for bank, rows in aggressors.items()}
        self._bank_cursor = 0
        self._row_cursor = {bank: 0 for bank in self.banks}

    def next_record(self) -> TraceRecord:
        bank = self.banks[self._bank_cursor]
        self._bank_cursor = (self._bank_cursor + 1) % len(self.banks)
        rows = self.aggressors[bank]
        index = self._row_cursor[bank]
        self._row_cursor[bank] = (index + 1) % len(rows)
        address = self.mapping.encode(DecodedAddress(self.rank, bank, rows[index], 0))
        return TraceRecord(gap=self.gap, address=address, is_write=False)


def double_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    victim_row: int = 2048,
    banks: list[int] | None = None,
) -> AttackTrace:
    """The paper's attack: hammer victim_row±1 in each bank."""
    require(1 <= victim_row < spec.rows_per_bank - 1, "victim must have neighbors")
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    aggressors = {bank: [victim_row - 1, victim_row + 1] for bank in banks}
    return AttackTrace(spec, mapping, aggressors)


def single_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    aggressor_row: int = 2048,
    banks: list[int] | None = None,
) -> AttackTrace:
    """Hammer one aggressor, alternating with a far dummy row so each
    visit forces a row conflict (same-row accesses would just hit the
    row buffer and never activate)."""
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    dummy = (aggressor_row + spec.rows_per_bank // 2) % spec.rows_per_bank
    aggressors = {bank: [aggressor_row, dummy] for bank in banks}
    return AttackTrace(spec, mapping, aggressors)


def many_sided_attack(
    spec: DramSpec,
    mapping: AddressMapping,
    first_row: int = 2048,
    sides: int = 9,
    banks: list[int] | None = None,
) -> AttackTrace:
    """TRRespass-style many-sided attack: ``sides`` aggressors spaced two
    rows apart (victims interleaved between them)."""
    require(sides >= 2, "many-sided attack needs >= 2 aggressors")
    require(
        first_row + 2 * sides < spec.rows_per_bank,
        "aggressor range exceeds the bank",
    )
    banks = banks if banks is not None else list(range(spec.banks_per_rank))
    rows = [first_row + 2 * k for k in range(sides)]
    aggressors = {bank: rows for bank in banks}
    return AttackTrace(spec, mapping, aggressors)


def build_attack_trace(
    kind: str,
    spec: DramSpec,
    mapping: AddressMapping,
    **kwargs,
) -> AttackTrace:
    """Build an attack trace by name: double | single | many."""
    builders = {
        "double": double_sided_attack,
        "single": single_sided_attack,
        "many": many_sided_attack,
    }
    require(kind in builders, f"unknown attack kind {kind!r}")
    return builders[kind](spec, mapping, **kwargs)
