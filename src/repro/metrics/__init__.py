"""System-level performance metrics (Section 7)."""

from repro.metrics.speedup import (
    weighted_speedup,
    harmonic_speedup,
    maximum_slowdown,
    MultiprogramMetrics,
    compute_metrics,
)
from repro.metrics.workload_stats import measured_mpki, measured_rbcpki

__all__ = [
    "weighted_speedup",
    "harmonic_speedup",
    "maximum_slowdown",
    "MultiprogramMetrics",
    "compute_metrics",
    "measured_mpki",
    "measured_rbcpki",
]
