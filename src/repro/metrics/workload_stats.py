"""Workload characterization metrics (Table 8 columns)."""

from __future__ import annotations

from repro.sim.stats import SimResult


def measured_mpki(result: SimResult, thread: int = 0) -> float:
    """Memory accesses (LLC misses) per kilo-instruction for a thread."""
    return result.threads[thread].mpki


def measured_rbcpki(result: SimResult, thread: int = 0) -> float:
    """Row-buffer conflicts per kilo-instruction for a thread."""
    return result.threads[thread].rbcpki
