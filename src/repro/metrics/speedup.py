"""Multiprogrammed performance metrics.

The paper reports system throughput as weighted speedup [32, 94, 136],
job turnaround as harmonic speedup [32, 91], and fairness as maximum
slowdown [27-30, ...], all computed over *benign* threads only ("the
performance of a RowHammer attack should not be accounted for").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require


def _check(shared: dict[int, float], alone: dict[int, float]) -> None:
    require(set(shared) == set(alone), "shared/alone thread sets differ")
    require(len(shared) > 0, "need at least one thread")
    require(all(v > 0 for v in alone.values()), "alone IPCs must be positive")


def weighted_speedup(shared_ipc: dict[int, float], alone_ipc: dict[int, float]) -> float:
    """Sum of per-thread IPC_shared / IPC_alone (system throughput)."""
    _check(shared_ipc, alone_ipc)
    return sum(shared_ipc[t] / alone_ipc[t] for t in shared_ipc)


def harmonic_speedup(shared_ipc: dict[int, float], alone_ipc: dict[int, float]) -> float:
    """n / sum(IPC_alone / IPC_shared) (job turnaround time)."""
    _check(shared_ipc, alone_ipc)
    denominator = sum(
        alone_ipc[t] / shared_ipc[t] if shared_ipc[t] > 0 else float("inf")
        for t in shared_ipc
    )
    return len(shared_ipc) / denominator if denominator > 0 else 0.0


def maximum_slowdown(shared_ipc: dict[int, float], alone_ipc: dict[int, float]) -> float:
    """max over threads of IPC_alone / IPC_shared (unfairness)."""
    _check(shared_ipc, alone_ipc)
    return max(
        alone_ipc[t] / shared_ipc[t] if shared_ipc[t] > 0 else float("inf")
        for t in shared_ipc
    )


@dataclass(frozen=True)
class MultiprogramMetrics:
    """The three paper metrics for one workload run."""

    weighted_speedup: float
    harmonic_speedup: float
    maximum_slowdown: float

    def normalized_to(self, baseline: "MultiprogramMetrics") -> "MultiprogramMetrics":
        """Each metric divided by the baseline's (Figure 5/6 style)."""
        return MultiprogramMetrics(
            weighted_speedup=self.weighted_speedup / baseline.weighted_speedup,
            harmonic_speedup=self.harmonic_speedup / baseline.harmonic_speedup,
            maximum_slowdown=self.maximum_slowdown / baseline.maximum_slowdown,
        )


def compute_metrics(
    shared_ipc: dict[int, float], alone_ipc: dict[int, float]
) -> MultiprogramMetrics:
    """All three metrics at once."""
    return MultiprogramMetrics(
        weighted_speedup=weighted_speedup(shared_ipc, alone_ipc),
        harmonic_speedup=harmonic_speedup(shared_ipc, alone_ipc),
        maximum_slowdown=maximum_slowdown(shared_ipc, alone_ipc),
    )
