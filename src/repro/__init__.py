"""BlockHammer reproduction (HPCA 2021).

A from-scratch Python implementation of *BlockHammer: Preventing
RowHammer at Low Cost by Blacklisting Rapidly-Accessed DRAM Rows*
(Yağlıkçı et al.), together with the full substrate it is evaluated on:
a DRAM system simulator, a DRAM energy model, a hardware cost model, six
state-of-the-art baseline mitigation mechanisms, the paper's workload
methodology, and the Section 5 security proof.

Quickstart::

    from repro import HarnessConfig, Runner, attack_mixes

    hcfg = HarnessConfig(scale=64, paper_nrh=32768)
    runner = Runner(hcfg)
    outcome = runner.run_mix(attack_mixes(1)[0], "blockhammer")
    assert outcome.bitflips == 0

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    AttackThrottler,
    BlockHammer,
    BlockHammerConfig,
    BloomFilter,
    CountingBloomFilter,
    DualCountingBloomFilter,
    RowBlocker,
)
from repro.dram import (
    DDR3_1600,
    DDR4_2400,
    LPDDR4_3200,
    DisturbanceProfile,
    DramDevice,
    DramSpec,
)
from repro.energy import EnergyModel, EnergyParams
from repro.harness import HarnessConfig, Runner, experiments, format_table
from repro.hwcost import mechanism_cost, table4_rows
from repro.metrics import compute_metrics
from repro.mitigations import available_mitigations, build_mitigation
from repro.security import prove_safety, simulate_optimal_attack
from repro.sim import SimResult, System, SystemConfig
from repro.workloads import (
    TABLE8_PROFILES,
    attack_mixes,
    benign_mixes,
    build_attack_trace,
    build_benign_trace,
    double_sided_attack,
)

__version__ = "1.0.0"

__all__ = [
    "AttackThrottler",
    "BlockHammer",
    "BlockHammerConfig",
    "BloomFilter",
    "CountingBloomFilter",
    "DualCountingBloomFilter",
    "RowBlocker",
    "DDR3_1600",
    "DDR4_2400",
    "LPDDR4_3200",
    "DisturbanceProfile",
    "DramDevice",
    "DramSpec",
    "EnergyModel",
    "EnergyParams",
    "HarnessConfig",
    "Runner",
    "experiments",
    "format_table",
    "mechanism_cost",
    "table4_rows",
    "compute_metrics",
    "available_mitigations",
    "build_mitigation",
    "prove_safety",
    "simulate_optimal_attack",
    "SimResult",
    "System",
    "SystemConfig",
    "TABLE8_PROFILES",
    "attack_mixes",
    "benign_mixes",
    "build_attack_trace",
    "build_benign_trace",
    "double_sided_attack",
    "__version__",
]
