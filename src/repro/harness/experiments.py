"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data (lists of row dicts) so benchmarks,
tests, and examples can share them.  EXPERIMENTS.md records how each
maps to the paper.

Every sweep driver follows the same three-stage shape on top of
:mod:`repro.harness.parallel`:

1. **declare jobs** — enumerate the independent simulations (including
   the shared baseline and alone-IPC runs, which are deduplicated by
   job key so they execute once and serve every mechanism/scenario);
2. **execute** — :func:`~repro.harness.parallel.run_jobs`, serially or
   over a process pool (``workers`` argument / ``REPRO_WORKERS``);
3. **assemble rows** — walk the declared structure and build rows from
   the keyed results, so row order and content are independent of how
   (and in what order) the jobs ran.

Under ``run_jobs(..., on_error="skip")`` the result mapping may carry
structured :class:`~repro.harness.parallel.JobFailure` records for jobs
that exhausted the retry ladder.  Every assembly stage tolerates them:
rows whose inputs failed keep their position but carry ``None`` metric
values, which the reporting layer renders as ``-`` — a sweep with a
dead corner degrades instead of dying.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace as dataclass_replace

from repro.harness.parallel import (
    JobResult,
    SimJob,
    failed,
    mix_job,
    mix_key,
    run_jobs,
    single_job,
    single_key,
)
from repro.harness.runner import HarnessConfig, Runner
from repro.metrics.speedup import MultiprogramMetrics, compute_metrics
from repro.mitigations.registry import PAPER_MECHANISMS
from repro.os.spec import GovernorSpec
from repro.utils.validation import require
from repro.workloads.mixes import (
    ATTACKER_THREAD,
    WorkloadMix,
    attack_mixes,
    benign_mixes,
    mix_row_offset,
)
from repro.workloads.profiles import TABLE8_PROFILES, Category


def _stat(fn, values):
    """``fn(values)`` with an empty-input guard: benign-only modes and
    single-thread mixes produce empty attacker/benign statistic lists,
    which must report as ``None`` rather than raising."""
    values = list(values)
    return fn(values) if values else None


# ----------------------------------------------------------------------
# Figure 4 — single-core normalized execution time and DRAM energy.
# ----------------------------------------------------------------------
def fig4_jobs(
    hcfg: HarnessConfig, apps: list[str], mechanisms: list[str]
) -> list[SimJob]:
    """One baseline plus one job per (app, mechanism)."""
    jobs = []
    for app in apps:
        jobs.append(single_job(hcfg, app, "none"))
        for mechanism in mechanisms:
            jobs.append(single_job(hcfg, app, mechanism))
    return jobs


def fig4_singlecore(
    hcfg: HarnessConfig,
    app_names: list[str] | None = None,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Rows: app, category, mechanism, norm_time, norm_energy."""
    mechanisms = mechanisms or PAPER_MECHANISMS
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    results = run_jobs(fig4_jobs(hcfg, apps, mechanisms), workers, cache=cache)
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        base = results[single_key(hcfg, app, 0, "none")]
        if not failed(base):
            base_time = base.result.threads[0].finish_time_ns
            base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = results[single_key(hcfg, app, 0, mechanism)]
            if failed(base) or failed(outcome):
                rows.append(
                    {
                        "app": app,
                        "category": profile.category.value,
                        "mechanism": mechanism,
                        "norm_time": None,
                        "norm_energy": None,
                        "bitflips": None,
                    }
                )
                continue
            rows.append(
                {
                    "app": app,
                    "category": profile.category.value,
                    "mechanism": mechanism,
                    "norm_time": outcome.result.threads[0].finish_time_ns / base_time,
                    "norm_energy": outcome.energy.total_j / base_energy,
                    "bitflips": outcome.bitflips,
                }
            )
    return rows


def fig4_group_means(rows: list[dict]) -> list[dict]:
    """Aggregate Figure 4 rows by (category, mechanism).  Failed rows
    (``None`` metrics, from ``on_error="skip"``) are excluded from the
    means and counted in ``failed``."""
    grouped: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        grouped.setdefault((row["category"], row["mechanism"]), []).append(row)
    out = []
    for (category, mechanism), items in sorted(grouped.items()):
        ok = [r for r in items if r["norm_time"] is not None]
        out.append(
            {
                "category": category,
                "mechanism": mechanism,
                "norm_time": _stat(statistics.mean, (r["norm_time"] for r in ok)),
                "norm_energy": _stat(statistics.mean, (r["norm_energy"] for r in ok)),
                "failed": len(items) - len(ok),
            }
        )
    return out


# ----------------------------------------------------------------------
# Figure 5 — multiprogrammed workloads, with and without an attack.
# ----------------------------------------------------------------------
@dataclass
class MixOutcomeRow:
    """One (mix, mechanism) multiprogrammed data point.  Metric fields
    are ``None`` when the point's jobs failed under
    ``on_error="skip"`` (rendered as ``-``)."""

    mix: str
    scenario: str  # "no-attack" | "attack"
    mechanism: str
    metrics: MultiprogramMetrics | None
    norm: MultiprogramMetrics | None  # normalized to the baseline system
    norm_energy: float | None
    bitflips: int | None
    victim_refreshes: int | None


def mix_sweep_jobs(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    extract: tuple[str, ...] = (),
) -> list[SimJob]:
    """Jobs for a (mix × mechanism) sweep: the shared baseline run, one
    run per mechanism, and the benign alone-IPC runs.  Alone runs are
    keyed by (config, app, slot, pinned) and deduplicate across mixes,
    scenarios, and NRH-sweep call sites batched into one execution;
    pinned (channel-affine) mix slots get pinned alone runs so the
    normalization trace matches the mix's bit-exactly."""
    jobs = []
    for mix in mixes:
        jobs.append(mix_job(hcfg, mix, "none"))
        for mechanism in mechanisms:
            jobs.append(mix_job(hcfg, mix, mechanism, extract=extract))
        for slot, app in enumerate(mix.app_names):
            if slot in mix.attacker_threads:
                continue
            jobs.append(
                single_job(
                    hcfg,
                    app,
                    "none",
                    slot=slot,
                    pinned=mix.pinned_channel(slot),
                    threads=len(mix.app_names),
                )
            )
    return jobs


def _benign_ipc_maps(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    outcome: JobResult,
    results: dict,
) -> tuple[dict[int, float], dict[int, float]]:
    """(shared, alone) IPC maps over the mix's benign threads."""
    shared: dict[int, float] = {}
    alone: dict[int, float] = {}
    for slot, app in enumerate(mix.app_names):
        if slot in mix.attacker_threads:
            continue
        shared[slot] = outcome.result.threads[slot].ipc
        alone_key = single_key(
            hcfg, app, slot, "none", mix.pinned_channel(slot), len(mix.app_names)
        )
        alone[slot] = results[alone_key].result.threads[0].ipc
    return shared, alone


def _mix_inputs_failed(
    hcfg: HarnessConfig, mix: WorkloadMix, results: dict
) -> bool:
    """Whether the shared inputs of a mix's rows — the baseline run or
    any benign alone-IPC run — are :class:`JobFailure` records."""
    if failed(results[mix_key(hcfg, mix, "none")]):
        return True
    for slot, app in enumerate(mix.app_names):
        if slot in mix.attacker_threads:
            continue
        alone_key = single_key(
            hcfg, app, slot, "none", mix.pinned_channel(slot), len(mix.app_names)
        )
        if failed(results[alone_key]):
            return True
    return False


def assemble_mix_rows(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    results: dict,
) -> list[MixOutcomeRow]:
    """Build normalized rows from executed mix-sweep jobs.

    Rows whose inputs failed (the mechanism run itself, or the shared
    baseline/alone runs every row of the mix normalizes against) keep
    their position but carry ``None`` metrics — the ``-`` rows of a
    degraded sweep.
    """
    rows = []
    for mix in mixes:
        shared_failed = _mix_inputs_failed(hcfg, mix, results)
        if not shared_failed:
            base = results[mix_key(hcfg, mix, "none")]
            shared, alone = _benign_ipc_maps(hcfg, mix, base, results)
            base_metrics = compute_metrics(shared, alone)
            base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = results[mix_key(hcfg, mix, mechanism)]
            if shared_failed or failed(outcome):
                rows.append(
                    MixOutcomeRow(
                        mix=mix.name,
                        scenario=scenario,
                        mechanism=mechanism,
                        metrics=None,
                        norm=None,
                        norm_energy=None,
                        bitflips=None,
                        victim_refreshes=None,
                    )
                )
                continue
            shared, alone = _benign_ipc_maps(hcfg, mix, outcome, results)
            metrics = compute_metrics(shared, alone)
            rows.append(
                MixOutcomeRow(
                    mix=mix.name,
                    scenario=scenario,
                    mechanism=mechanism,
                    metrics=metrics,
                    norm=metrics.normalized_to(base_metrics),
                    norm_energy=outcome.energy.total_j / base_energy,
                    bitflips=outcome.bitflips,
                    victim_refreshes=outcome.result.victim_refreshes,
                )
            )
    return rows


def run_mix_sweep(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    runner: Runner | None = None,
    workers: int | None = None,
    cache=None,
) -> list[MixOutcomeRow]:
    """Run every (mix, mechanism) pair plus the shared baseline.

    ``runner`` is accepted for backward compatibility; cross-run reuse
    now happens through job deduplication instead of a shared Runner.
    """
    del runner
    jobs = mix_sweep_jobs(hcfg, mixes, mechanisms)
    results = run_jobs(jobs, workers, cache=cache)
    return assemble_mix_rows(hcfg, mixes, mechanisms, scenario, results)


def fig5_multicore(
    hcfg: HarnessConfig,
    num_mixes: int = 3,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[MixOutcomeRow]:
    """Both Figure 5 scenarios over ``num_mixes`` mixes each.

    Declared as one job batch so the alone-IPC runs are shared between
    the no-attack and attack scenarios (and across mechanisms), then
    assembled in the fixed scenario order.
    """
    mechanisms = mechanisms or PAPER_MECHANISMS
    benign = benign_mixes(num_mixes)
    attack = attack_mixes(num_mixes)
    jobs = mix_sweep_jobs(hcfg, benign, mechanisms) + mix_sweep_jobs(
        hcfg, attack, mechanisms
    )
    results = run_jobs(jobs, workers, cache=cache)
    rows = assemble_mix_rows(hcfg, benign, mechanisms, "no-attack", results)
    rows += assemble_mix_rows(hcfg, attack, mechanisms, "attack", results)
    return rows


def summarize_mix_rows(rows: list[MixOutcomeRow]) -> list[dict]:
    """Mean/min/max of normalized metrics by (scenario, mechanism).

    Failed rows (``None`` metrics) are excluded from every statistic and
    counted in ``failed``; a group with no surviving rows reports
    ``None`` throughout.
    """
    grouped: dict[tuple[str, str], list[MixOutcomeRow]] = {}
    for row in rows:
        grouped.setdefault((row.scenario, row.mechanism), []).append(row)
    out = []
    for (scenario, mechanism), items in sorted(grouped.items()):
        ok = [r for r in items if r.norm is not None]
        ws = [r.norm.weighted_speedup for r in ok]
        hs = [r.norm.harmonic_speedup for r in ok]
        ms = [r.norm.maximum_slowdown for r in ok]
        energy = [r.norm_energy for r in ok]
        out.append(
            {
                "scenario": scenario,
                "mechanism": mechanism,
                "norm_ws_mean": _stat(statistics.mean, ws),
                "norm_ws_max": _stat(max, ws),
                "norm_hs_mean": _stat(statistics.mean, hs),
                "norm_ms_mean": _stat(statistics.mean, ms),
                "norm_energy_mean": _stat(statistics.mean, energy),
                "bitflips": sum(r.bitflips for r in ok) if ok else None,
                "failed": len(items) - len(ok),
            }
        )
    return out


# ----------------------------------------------------------------------
# Channel-scaling study (ABACuS-style) with per-channel attribution
# rows (BreakHammer direction).
# ----------------------------------------------------------------------
def _thread_channel_stats(result, channel: int):
    """Per-thread :class:`~repro.mem.controller.ThreadMemStats` on one
    channel.  Single-channel runs report no per-thread channel split —
    their aggregate *is* the per-channel row."""
    if result.num_channels == 1:
        return [t.mem for t in result.threads]
    return [t.mem_per_channel[channel] for t in result.threads]


def assemble_attribution_rows(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    results: dict,
    layout: str = "interleaved",
) -> list[dict]:
    """Per-channel attribution rows from executed mix-sweep jobs whose
    mechanism runs requested the ``channel_attribution`` extractor.

    One row per (mix, mechanism, channel): per-thread RHLI split into
    attacker/benign maxima, blacklist and delay event counts
    (mechanism-side), blocked injections (controller-side throttle
    events, from :class:`~repro.sim.stats.ChannelResult`), and the
    per-thread-per-channel slowdown proxy — each thread's average read
    latency on that channel, normalized to the baseline (``none``) run
    (``None`` where a thread issued no reads on the channel).  Together
    these localize attack pressure to a channel, the data BreakHammer-
    style targeted throttling keys on.
    """
    rows = []
    for mix in mixes:
        attackers = sorted(mix.attacker_threads)
        base = results[mix_key(hcfg, mix, "none")]
        for mechanism in mechanisms:
            outcome = results[mix_key(hcfg, mix, mechanism)]
            if failed(base) or failed(outcome):
                continue  # no per-channel data to attribute
            for entry in outcome.extras.get("channel_attribution", []):
                channel = entry["channel"]
                mech_stats = _thread_channel_stats(outcome.result, channel)
                base_stats = _thread_channel_stats(base.result, channel)
                slowdowns = [
                    (
                        m.avg_read_latency / b.avg_read_latency
                        if m.read_latency_count and b.read_latency_count
                        else None
                    )
                    for m, b in zip(mech_stats, base_stats)
                ]
                rhli = entry["thread_rhli"]
                benign_slots = [
                    t for t in range(len(mech_stats)) if t not in mix.attacker_threads
                ]
                blocked = [m.blocked_injections for m in mech_stats]
                rows.append(
                    {
                        "channels": hcfg.channels,
                        "layout": layout,
                        "scenario": scenario,
                        "mix": mix.name,
                        "mechanism": mechanism,
                        "channel": channel,
                        "attacker_rhli": (
                            _stat(max, (rhli[t] for t in attackers))
                            if rhli is not None
                            else None
                        ),
                        "benign_rhli_max": (
                            _stat(max, (rhli[t] for t in benign_slots))
                            if rhli is not None
                            else None
                        ),
                        "blacklisted_acts": entry["blacklisted_acts"],
                        "total_acts": entry["total_acts"],
                        "delayed_acts": entry["delayed_acts"],
                        "false_positive_acts": entry["false_positive_acts"],
                        "blocked_injections": outcome.result.channels[
                            channel
                        ].blocked_injections,
                        "attacker_blocked_injections": sum(
                            blocked[t] for t in attackers
                        ),
                        "attacker_slowdown": _stat(
                            max,
                            (s for t, s in enumerate(slowdowns)
                             if t in mix.attacker_threads and s is not None),
                        ),
                        "benign_slowdown_max": _stat(
                            max,
                            (s for t, s in enumerate(slowdowns)
                             if t not in mix.attacker_threads and s is not None),
                        ),
                        "thread_slowdown": slowdowns,
                    }
                )
    return rows


def _point_layouts(channels: int, layouts: list) -> list:
    """Layouts actually simulated at one channel-count point: pinned
    mixes degenerate record-for-record to the interleaved traces on a
    single channel (every slot mods to channel 0), so the pinned layout
    would only duplicate every simulation there — skip it."""
    return [entry for entry in layouts if channels > 1 or entry[0] == "interleaved"]


def channel_scaling_jobs(
    hcfg: HarnessConfig,
    channel_counts: tuple[int, ...],
    layouts: list[tuple[str, list[WorkloadMix], list[WorkloadMix]]],
    mechanisms: list[str],
) -> list[SimJob]:
    """One job batch covering every (channel count × layout) sweep
    point.  Jobs are keyed by their per-point configuration, so the
    batch dedups anything shared in-process and the persistent result
    cache dedups across runs: re-running the sweep is fully warm, and a
    ``--channels 1`` fig5 sweep already on disk serves this driver's
    single-channel baseline and alone-IPC jobs (the mechanism runs
    re-execute once to add the ``channel_attribution`` extra, which a
    cache hit must cover)."""
    jobs: list[SimJob] = []
    for channels in channel_counts:
        point = dataclass_replace(hcfg, num_channels=channels)
        for _, benign, attack in _point_layouts(channels, layouts):
            jobs += mix_sweep_jobs(
                point, benign, mechanisms, extract=("channel_attribution",)
            )
            jobs += mix_sweep_jobs(
                point, attack, mechanisms, extract=("channel_attribution",)
            )
    return jobs


def channel_scaling(
    hcfg: HarnessConfig,
    channel_counts: tuple[int, ...] = (1, 2, 4),
    num_mixes: int = 1,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
    include_pinned: bool = False,
) -> dict:
    """The channel-scaling study: the Figure 5 sweep repeated at each
    channel count (ABACuS-style scaling axis), with per-channel
    attribution rows.

    ``include_pinned`` additionally runs the channel-affine variant of
    every mix (slot *k* pinned to channel *k*, the attacker confined to
    channel 0) next to the interleaved layout, so pinned-vs-interleaved
    contention and attribution can be compared point for point.  At a
    1-channel point the pinned traces degenerate to the interleaved
    ones record for record, so the pinned layout is skipped there
    rather than re-simulated (no ``layout="pinned"`` rows at
    ``channels=1``).

    Returns ``{"summary", "attribution", "mix_rows"}``:

    * ``summary`` — :func:`summarize_mix_rows` dicts annotated with
      ``channels`` and ``layout``;
    * ``attribution`` — :func:`assemble_attribution_rows` dicts (one
      per mix × mechanism × channel);
    * ``mix_rows`` — ``{"channels", "layout", "row": MixOutcomeRow}``
      per (mix, mechanism) point; the single-channel interleaved rows
      are bit-identical to a plain :func:`fig5_multicore` run of the
      same configuration (pinned by the golden-fixture tests).
    """
    mechanisms = mechanisms or PAPER_MECHANISMS
    benign = benign_mixes(num_mixes)
    attack = attack_mixes(num_mixes)
    layouts = [("interleaved", benign, attack)]
    if include_pinned:
        layouts.append(
            ("pinned", [m.pinned() for m in benign], [m.pinned() for m in attack])
        )
    jobs = channel_scaling_jobs(hcfg, tuple(channel_counts), layouts, mechanisms)
    results = run_jobs(jobs, workers, cache=cache)

    summary: list[dict] = []
    attribution: list[dict] = []
    mix_rows: list[dict] = []
    for channels in channel_counts:
        point = dataclass_replace(hcfg, num_channels=channels)
        for layout, layout_benign, layout_attack in _point_layouts(channels, layouts):
            rows = assemble_mix_rows(point, layout_benign, mechanisms, "no-attack", results)
            rows += assemble_mix_rows(point, layout_attack, mechanisms, "attack", results)
            mix_rows += [
                {"channels": channels, "layout": layout, "row": row} for row in rows
            ]
            for item in summarize_mix_rows(rows):
                item["channels"] = channels
                item["layout"] = layout
                summary.append(item)
            attribution += assemble_attribution_rows(
                point, layout_benign, mechanisms, "no-attack", results, layout
            )
            attribution += assemble_attribution_rows(
                point, layout_attack, mechanisms, "attack", results, layout
            )
    return {"summary": summary, "attribution": attribution, "mix_rows": mix_rows}


# ----------------------------------------------------------------------
# OS governor policy comparison (ossweep): the BreakHammer direction —
# does a software response above the mitigation recover benign
# performance while containing the attacker?
# ----------------------------------------------------------------------
#: The sweep's policy points.  ``none`` is the no-governor control; the
#: three governor specs review every 10 us (an OS polling the Section
#: 3.2.3 RHLI interface; several reviews within even short runs).
#: Thresholds are calibrated to the scaled harness: benign threads sit
#: at RHLI exactly 0 while a throttled attacker's *per-epoch* RHLI
#: still reads a few percent (the rotating counters clear each epoch),
#: so a small positive threshold separates them cleanly — the same
#: regime the ``blockhammer-os`` tests exercise.
OS_SWEEP_POLICIES: dict[str, GovernorSpec | None] = {
    "none": None,
    "kill": GovernorSpec(
        policy="kill", epoch_ns=10_000.0, threshold=0.02, patience_epochs=1
    ),
    "quota": GovernorSpec(policy="quota", epoch_ns=10_000.0, threshold=0.02),
    "migrate": GovernorSpec(
        policy="migrate", epoch_ns=10_000.0, threshold=0.02, patience_epochs=1
    ),
}

#: Default mechanism axis: full-functional BlockHammer (hardware
#: throttling + OS response) next to observe-only BlockHammer, where
#: the hardware never interferes and the *governor alone* must contain
#: the attack — the starkest software-response comparison.  Reactive
#: baselines (graphene, para, …) are accepted too and degrade
#: gracefully: with no RHLI telemetry and no throttle pressure the
#: governor simply never fires.
OS_SWEEP_MECHANISMS = ["blockhammer", "blockhammer-observe"]


def os_sweep_jobs(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    policies: list[str],
) -> list[SimJob]:
    """One job per (mix × mechanism × policy); the ``none`` policy rows
    double as the no-governor baselines the slowdown column normalizes
    against, so they are declared whether or not requested."""
    extract = ("thread_rhli", "governor_actions")
    jobs = []
    for mix in mixes:
        for mechanism in mechanisms:
            for policy in dict.fromkeys(["none", *policies]):
                jobs.append(
                    mix_job(
                        hcfg,
                        mix,
                        mechanism,
                        extract=extract,
                        governor=OS_SWEEP_POLICIES[policy],
                    )
                )
    return jobs


def os_policy_sweep(
    hcfg: HarnessConfig,
    num_mixes: int = 1,
    mechanisms: list[str] | None = None,
    policies: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Compare OS governor policies over attack mixes.

    One row per (mix × mechanism × policy): mean/max benign slowdown
    relative to the same mechanism *without* a governor (values < 1
    mean the policy recovered benign performance, the BreakHammer
    claim), end-of-run attacker RHLI (max over attacker threads and
    channels; ``None`` for mechanisms without RHLI tracking), attacker
    memory-request volume, the governor's action counts, and bit-flips.

    Benign slowdown is computed over benign threads that still ran
    (``ipc > 0``); ``benign_killed`` counts benign threads the
    governor descheduled — a policy false positive — so a kill-happy
    policy cannot launder dead benign work out of the headline metric
    unnoticed.
    """
    mechanisms = mechanisms or OS_SWEEP_MECHANISMS
    policies = list(policies) if policies is not None else list(OS_SWEEP_POLICIES)
    for policy in policies:
        require(
            policy in OS_SWEEP_POLICIES,
            f"unknown OS policy {policy!r}; known: "
            f"{', '.join(OS_SWEEP_POLICIES)}",
        )
    mixes = attack_mixes(num_mixes)
    jobs = os_sweep_jobs(hcfg, mixes, mechanisms, policies)
    results = run_jobs(jobs, workers, cache=cache)
    rows = []
    for mix in mixes:
        attackers = sorted(mix.attacker_threads)
        benign = [
            slot
            for slot in range(len(mix.app_names))
            if slot not in mix.attacker_threads
        ]
        for mechanism in mechanisms:
            base = results[mix_key(hcfg, mix, mechanism, governor=None)]
            if not failed(base):
                base_ipc = {slot: base.result.threads[slot].ipc for slot in benign}
            for policy in policies:
                spec = OS_SWEEP_POLICIES[policy]
                outcome = results[mix_key(hcfg, mix, mechanism, governor=spec)]
                if failed(base) or failed(outcome):
                    rows.append(
                        {
                            "mix": mix.name,
                            "mechanism": mechanism,
                            "policy": policy,
                            "benign_slowdown_mean": None,
                            "benign_slowdown_max": None,
                            "attacker_rhli": None,
                            "attacker_requests": None,
                            "governor_epochs": None,
                            "kills": None,
                            "benign_killed": None,
                            "migrations": None,
                            "quota_updates": None,
                            "bitflips": None,
                        }
                    )
                    continue
                rhli = outcome.extras["thread_rhli"]
                actions = outcome.extras["governor_actions"]
                killed = (
                    {thread for thread, _ in actions["kills"]} if actions else set()
                )
                slowdowns = [
                    base_ipc[slot] / outcome.result.threads[slot].ipc
                    for slot in benign
                    if outcome.result.threads[slot].ipc > 0.0
                ]
                rows.append(
                    {
                        "mix": mix.name,
                        "mechanism": mechanism,
                        "policy": policy,
                        "benign_slowdown_mean": _stat(statistics.mean, slowdowns),
                        "benign_slowdown_max": _stat(max, slowdowns),
                        "attacker_rhli": _stat(
                            max,
                            (rhli[t] for t in attackers if rhli[t] is not None),
                        ),
                        "attacker_requests": sum(
                            outcome.result.threads[t].mem.accesses
                            for t in attackers
                        ),
                        "governor_epochs": actions["epochs"] if actions else 0,
                        "kills": len(actions["kills"]) if actions else 0,
                        "benign_killed": sum(
                            1 for slot in benign if slot in killed
                        ),
                        "migrations": len(actions["migrations"]) if actions else 0,
                        "quota_updates": (
                            actions["quota_updates"] if actions else 0
                        ),
                        "bitflips": outcome.bitflips,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Figure 6 — scaling with worsening RowHammer vulnerability.
# ----------------------------------------------------------------------
FIG6_MECHANISMS = ["para", "twice", "graphene", "blockhammer"]


def fig6_scaling(
    hcfg: HarnessConfig,
    paper_nrh_values: list[int],
    num_mixes: int = 2,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Figure 6: normalized metrics vs NRH, both scenarios.

    All NRH points are declared into a single job batch, so a parallel
    run fans out across the whole (NRH × mix × scenario × mechanism)
    grid at once.
    """
    mechanisms = mechanisms or FIG6_MECHANISMS
    benign = benign_mixes(num_mixes)
    attack = attack_mixes(num_mixes)
    points = [(paper_nrh, hcfg.with_nrh(paper_nrh)) for paper_nrh in paper_nrh_values]
    jobs: list[SimJob] = []
    for _, nrh_cfg in points:
        jobs += mix_sweep_jobs(nrh_cfg, benign, mechanisms)
        jobs += mix_sweep_jobs(nrh_cfg, attack, mechanisms)
    results = run_jobs(jobs, workers, cache=cache)
    out = []
    for paper_nrh, nrh_cfg in points:
        rows = assemble_mix_rows(nrh_cfg, benign, mechanisms, "no-attack", results)
        rows += assemble_mix_rows(nrh_cfg, attack, mechanisms, "attack", results)
        for summary in summarize_mix_rows(rows):
            summary["paper_nrh"] = paper_nrh
            out.append(summary)
    return out


# ----------------------------------------------------------------------
# Section 3.2.1 — RHLI of benign vs attack threads.
# ----------------------------------------------------------------------
def rhli_experiment(
    hcfg: HarnessConfig,
    num_mixes: int = 2,
    workers: int | None = None,
    cache=None,
    mixes: list[WorkloadMix] | None = None,
) -> list[dict]:
    """RHLI statistics in observe-only and full-functional modes.

    ``mixes`` overrides the default attack mixes (e.g. benign-only or
    single-thread mixes).  Statistics whose population is empty — no
    attacker threads in benign-only mixes, no benign threads in a
    one-thread attack mix — report ``None`` instead of raising.
    """
    modes = ("blockhammer-observe", "blockhammer")
    mixes = mixes if mixes is not None else attack_mixes(num_mixes)
    jobs = [
        mix_job(hcfg, mix, mode, extract=("thread_rhli",))
        for mode in modes
        for mix in mixes
    ]
    results = run_jobs(jobs, workers, cache=cache)
    rows = []
    for mode in modes:
        attacker_rhli = []
        benign_rhli = []
        for mix in mixes:
            entry = results[mix_key(hcfg, mix, mode)]
            if failed(entry):
                continue  # excluded from the mode's statistics
            rhli = entry.extras["thread_rhli"]
            for slot in range(len(mix.app_names)):
                if slot in mix.attacker_threads:
                    attacker_rhli.append(rhli[slot])
                else:
                    benign_rhli.append(rhli[slot])
        rows.append(
            {
                "mode": mode,
                "attacker_rhli_mean": _stat(statistics.mean, attacker_rhli),
                "attacker_rhli_max": _stat(max, attacker_rhli),
                "attacker_rhli_min": _stat(min, attacker_rhli),
                "benign_rhli_max": _stat(max, benign_rhli),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 8.4 — false positives and delay distribution.
# ----------------------------------------------------------------------
def sec84_internals(
    hcfg: HarnessConfig,
    num_mixes: int = 2,
    workers: int | None = None,
    cache=None,
) -> dict:
    """BlockHammer's false-positive rate and delay percentiles over
    benign multiprogrammed workloads."""
    mixes = benign_mixes(num_mixes)
    jobs = [
        mix_job(hcfg, mix, "blockhammer", extract=("delay_stats",)) for mix in mixes
    ]
    results = run_jobs(jobs, workers, cache=cache)
    total_acts = 0
    fp_acts = 0
    delays: list[float] = []
    for mix in mixes:
        entry = results[mix_key(hcfg, mix, "blockhammer")]
        if failed(entry):
            continue  # excluded from the aggregate statistics
        stats = entry.extras["delay_stats"]
        total_acts += stats.total_acts
        fp_acts += stats.false_positive_acts
        delays.extend(stats.false_positive_delays_ns)
    delays.sort()

    def pct(p: float) -> float:
        if not delays:
            return 0.0
        return delays[min(len(delays) - 1, int(p / 100.0 * len(delays)))]

    return {
        "total_acts": total_acts,
        "false_positive_acts": fp_acts,
        "false_positive_rate": fp_acts / total_acts if total_acts else 0.0,
        "fp_delay_p50_ns": pct(50),
        "fp_delay_p90_ns": pct(90),
        "fp_delay_p100_ns": delays[-1] if delays else 0.0,
        "t_delay_ns": None,  # filled by callers that know the config
    }


# ----------------------------------------------------------------------
# Table 8 — workload calibration.
# ----------------------------------------------------------------------
def table8_calibration(
    hcfg: HarnessConfig,
    app_names: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Measured vs target MPKI/RBCPKI for the benign generator."""
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    jobs = [single_job(hcfg, app, "none") for app in apps]
    results = run_jobs(jobs, workers, cache=cache)
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        entry = results[single_key(hcfg, app, 0, "none")]
        thread = None if failed(entry) else entry.result.threads[0]
        rows.append(
            {
                "app": app,
                "category": profile.category.value,
                "target_mpki": profile.mpki,
                "measured_mpki": None if thread is None else thread.mpki,
                "target_rbcpki": profile.rbcpki,
                "measured_rbcpki": None if thread is None else thread.rbcpki,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Row-mapping ablation (ours): reactive refresh vs scrambled mapping.
# ----------------------------------------------------------------------
def rowmap_ablation(hcfg: HarnessConfig, mechanisms: list[str] | None = None) -> list[dict]:
    """Attack outcomes when the in-DRAM mapping is scrambled but reactive
    mechanisms assume a linear mapping (the Section 2.3 challenge).

    Under a scrambled mapping the two "double-sided" aggressors land on
    unrelated physical rows, so each hammers its own physical neighbors
    single-sided and needs twice the activations to flip a bit; the run
    therefore uses a fixed simulated duration long enough for the
    unprotected attack to succeed.  A ``none`` row is always included to
    establish that the attack is effective.

    This driver stays serial: the assumed-linear adjacency oracle is a
    local closure, which cannot cross a process boundary.
    """
    from dataclasses import replace as dc_replace

    from repro.harness.runner import ATTACKER_CORE_PARAMS
    from repro.workloads.attacks import double_sided_attack
    from repro.workloads.generator import build_benign_trace
    from repro.workloads.profiles import profile_by_name

    mechanisms = mechanisms or ["graphene", "para", "blockhammer"]
    # Duration: a single-sided aggressor at the tFAW-bound per-row rate
    # needs NRH_sim activations; triple that for scheduling slack.
    spec_probe = hcfg.spec()
    per_row_rate = 4.0 / spec_probe.tFAW / (2 * spec_probe.banks_per_rank)
    duration_ns = 3.0 * hcfg.sim_nrh / per_row_rate
    scrambled_cfg = dc_replace(
        hcfg, rowmap_kind="scrambled", max_time_ns=duration_ns, warmup_ns=0.0
    )
    runner = Runner(scrambled_cfg)
    spec = scrambled_cfg.spec()
    mapping = scrambled_cfg.mapping()

    def build_traces():
        attack = double_sided_attack(spec, mapping, victim_row=2048)
        benign = [
            build_benign_trace(
                profile_by_name(app), spec, mapping, seed=scrambled_cfg.seed + slot,
                row_offset=mix_row_offset(spec, slot),
            )
            for slot, app in enumerate(["473.astar", "450.soplex", "403.gcc"], start=1)
        ]
        return [attack] + benign

    def wrong_linear_adjacency(rank: int, bank: int, row: int, distance: int) -> list[int]:
        rows = spec.rows_per_bank
        out = []
        for k in range(1, distance + 1):
            if row - k >= 0:
                out.append(row - k)
            if row + k < rows:
                out.append(row + k)
        return out

    targets = [None, None, None, None]  # fixed-duration run
    per_thread = [ATTACKER_CORE_PARAMS, None, None, None]

    rows = []
    for mechanism in ["none"] + mechanisms:
        oracles = [("true", None), ("assumed-linear", wrong_linear_adjacency)]
        if mechanism == "none":
            oracles = [("n/a", None)]
        for oracle_name, oracle in oracles:
            outcome = runner.run_traces(
                build_traces(),
                mechanism,
                targets=targets,
                adjacency_override=oracle,
                core_params_per_thread=per_thread,
            )
            rows.append(
                {
                    "mechanism": mechanism,
                    "adjacency": oracle_name,
                    "bitflips": outcome.bitflips,
                    "victim_refreshes": outcome.result.victim_refreshes,
                }
            )
    return rows
