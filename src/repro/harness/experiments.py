"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data (lists of row dicts) so benchmarks,
tests, and examples can share them.  EXPERIMENTS.md records how each
maps to the paper.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.harness.runner import HarnessConfig, Runner
from repro.metrics.speedup import MultiprogramMetrics, compute_metrics
from repro.mitigations.registry import PAPER_MECHANISMS
from repro.workloads.mixes import ATTACKER_THREAD, WorkloadMix, attack_mixes, benign_mixes
from repro.workloads.profiles import TABLE8_PROFILES, Category


# ----------------------------------------------------------------------
# Figure 4 — single-core normalized execution time and DRAM energy.
# ----------------------------------------------------------------------
def fig4_singlecore(
    hcfg: HarnessConfig,
    app_names: list[str] | None = None,
    mechanisms: list[str] | None = None,
) -> list[dict]:
    """Rows: app, category, mechanism, norm_time, norm_energy."""
    mechanisms = mechanisms or PAPER_MECHANISMS
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    runner = Runner(hcfg)
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        base = runner.run_single(app, "none")
        base_time = base.result.threads[0].finish_time_ns
        base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = runner.run_single(app, mechanism)
            rows.append(
                {
                    "app": app,
                    "category": profile.category.value,
                    "mechanism": mechanism,
                    "norm_time": outcome.result.threads[0].finish_time_ns / base_time,
                    "norm_energy": outcome.energy.total_j / base_energy,
                    "bitflips": outcome.bitflips,
                }
            )
    return rows


def fig4_group_means(rows: list[dict]) -> list[dict]:
    """Aggregate Figure 4 rows by (category, mechanism)."""
    grouped: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        grouped.setdefault((row["category"], row["mechanism"]), []).append(row)
    out = []
    for (category, mechanism), items in sorted(grouped.items()):
        out.append(
            {
                "category": category,
                "mechanism": mechanism,
                "norm_time": statistics.mean(r["norm_time"] for r in items),
                "norm_energy": statistics.mean(r["norm_energy"] for r in items),
            }
        )
    return out


# ----------------------------------------------------------------------
# Figure 5 — multiprogrammed workloads, with and without an attack.
# ----------------------------------------------------------------------
@dataclass
class MixOutcomeRow:
    """One (mix, mechanism) multiprogrammed data point."""

    mix: str
    scenario: str  # "no-attack" | "attack"
    mechanism: str
    metrics: MultiprogramMetrics
    norm: MultiprogramMetrics  # normalized to the baseline system
    norm_energy: float
    bitflips: int
    victim_refreshes: int


def run_mix_sweep(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    runner: Runner | None = None,
) -> list[MixOutcomeRow]:
    """Run every (mix, mechanism) pair plus the shared baseline."""
    runner = runner or Runner(hcfg)
    rows = []
    for mix in mixes:
        base = runner.run_mix(mix, "none")
        shared, alone = runner.benign_ipc_maps(mix, base)
        base_metrics = compute_metrics(shared, alone)
        base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = runner.run_mix(mix, mechanism)
            shared, alone = runner.benign_ipc_maps(mix, outcome)
            metrics = compute_metrics(shared, alone)
            rows.append(
                MixOutcomeRow(
                    mix=mix.name,
                    scenario=scenario,
                    mechanism=mechanism,
                    metrics=metrics,
                    norm=metrics.normalized_to(base_metrics),
                    norm_energy=outcome.energy.total_j / base_energy,
                    bitflips=outcome.bitflips,
                    victim_refreshes=outcome.result.victim_refreshes,
                )
            )
    return rows


def fig5_multicore(
    hcfg: HarnessConfig,
    num_mixes: int = 3,
    mechanisms: list[str] | None = None,
) -> list[MixOutcomeRow]:
    """Both Figure 5 scenarios over ``num_mixes`` mixes each."""
    mechanisms = mechanisms or PAPER_MECHANISMS
    runner = Runner(hcfg)
    rows = run_mix_sweep(
        hcfg, benign_mixes(num_mixes), mechanisms, "no-attack", runner
    )
    rows += run_mix_sweep(
        hcfg, attack_mixes(num_mixes), mechanisms, "attack", runner
    )
    return rows


def summarize_mix_rows(rows: list[MixOutcomeRow]) -> list[dict]:
    """Mean/min/max of normalized metrics by (scenario, mechanism)."""
    grouped: dict[tuple[str, str], list[MixOutcomeRow]] = {}
    for row in rows:
        grouped.setdefault((row.scenario, row.mechanism), []).append(row)
    out = []
    for (scenario, mechanism), items in sorted(grouped.items()):
        ws = [r.norm.weighted_speedup for r in items]
        hs = [r.norm.harmonic_speedup for r in items]
        ms = [r.norm.maximum_slowdown for r in items]
        energy = [r.norm_energy for r in items]
        out.append(
            {
                "scenario": scenario,
                "mechanism": mechanism,
                "norm_ws_mean": statistics.mean(ws),
                "norm_ws_max": max(ws),
                "norm_hs_mean": statistics.mean(hs),
                "norm_ms_mean": statistics.mean(ms),
                "norm_energy_mean": statistics.mean(energy),
                "bitflips": sum(r.bitflips for r in items),
            }
        )
    return out


# ----------------------------------------------------------------------
# Figure 6 — scaling with worsening RowHammer vulnerability.
# ----------------------------------------------------------------------
FIG6_MECHANISMS = ["para", "twice", "graphene", "blockhammer"]


def fig6_scaling(
    hcfg: HarnessConfig,
    paper_nrh_values: list[int],
    num_mixes: int = 2,
    mechanisms: list[str] | None = None,
) -> list[dict]:
    """Figure 6: normalized metrics vs NRH, both scenarios."""
    mechanisms = mechanisms or FIG6_MECHANISMS
    out = []
    for paper_nrh in paper_nrh_values:
        nrh_cfg = hcfg.with_nrh(paper_nrh)
        rows = fig5_multicore(nrh_cfg, num_mixes, mechanisms)
        for summary in summarize_mix_rows(rows):
            summary["paper_nrh"] = paper_nrh
            out.append(summary)
    return out


# ----------------------------------------------------------------------
# Section 3.2.1 — RHLI of benign vs attack threads.
# ----------------------------------------------------------------------
def rhli_experiment(hcfg: HarnessConfig, num_mixes: int = 2) -> list[dict]:
    """RHLI statistics in observe-only and full-functional modes."""
    runner = Runner(hcfg)
    rows = []
    for mode in ("blockhammer-observe", "blockhammer"):
        attacker_rhli = []
        benign_rhli = []
        for mix in attack_mixes(num_mixes):
            outcome = runner.run_mix(mix, mode)
            mechanism = outcome.mechanism
            for slot in range(len(mix.app_names)):
                value = mechanism.thread_max_rhli(slot)
                if slot in mix.attacker_threads:
                    attacker_rhli.append(value)
                else:
                    benign_rhli.append(value)
        rows.append(
            {
                "mode": mode,
                "attacker_rhli_mean": statistics.mean(attacker_rhli),
                "attacker_rhli_max": max(attacker_rhli),
                "attacker_rhli_min": min(attacker_rhli),
                "benign_rhli_max": max(benign_rhli),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 8.4 — false positives and delay distribution.
# ----------------------------------------------------------------------
def sec84_internals(hcfg: HarnessConfig, num_mixes: int = 2) -> dict:
    """BlockHammer's false-positive rate and delay percentiles over
    benign multiprogrammed workloads."""
    runner = Runner(hcfg)
    total_acts = 0
    fp_acts = 0
    delays: list[float] = []
    for mix in benign_mixes(num_mixes):
        outcome = runner.run_mix(mix, "blockhammer")
        stats = outcome.mechanism.delay_stats()
        total_acts += stats.total_acts
        fp_acts += stats.false_positive_acts
        delays.extend(stats.false_positive_delays_ns)
    delays.sort()

    def pct(p: float) -> float:
        if not delays:
            return 0.0
        return delays[min(len(delays) - 1, int(p / 100.0 * len(delays)))]

    return {
        "total_acts": total_acts,
        "false_positive_acts": fp_acts,
        "false_positive_rate": fp_acts / total_acts if total_acts else 0.0,
        "fp_delay_p50_ns": pct(50),
        "fp_delay_p90_ns": pct(90),
        "fp_delay_p100_ns": delays[-1] if delays else 0.0,
        "t_delay_ns": None,  # filled by callers that know the config
    }


# ----------------------------------------------------------------------
# Table 8 — workload calibration.
# ----------------------------------------------------------------------
def table8_calibration(
    hcfg: HarnessConfig, app_names: list[str] | None = None
) -> list[dict]:
    """Measured vs target MPKI/RBCPKI for the benign generator."""
    runner = Runner(hcfg)
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        outcome = runner.run_single(app, "none")
        thread = outcome.result.threads[0]
        rows.append(
            {
                "app": app,
                "category": profile.category.value,
                "target_mpki": profile.mpki,
                "measured_mpki": thread.mpki,
                "target_rbcpki": profile.rbcpki,
                "measured_rbcpki": thread.rbcpki,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Row-mapping ablation (ours): reactive refresh vs scrambled mapping.
# ----------------------------------------------------------------------
def rowmap_ablation(hcfg: HarnessConfig, mechanisms: list[str] | None = None) -> list[dict]:
    """Attack outcomes when the in-DRAM mapping is scrambled but reactive
    mechanisms assume a linear mapping (the Section 2.3 challenge).

    Under a scrambled mapping the two "double-sided" aggressors land on
    unrelated physical rows, so each hammers its own physical neighbors
    single-sided and needs twice the activations to flip a bit; the run
    therefore uses a fixed simulated duration long enough for the
    unprotected attack to succeed.  A ``none`` row is always included to
    establish that the attack is effective.
    """
    from dataclasses import replace as dc_replace

    from repro.harness.runner import ATTACKER_CORE_PARAMS
    from repro.workloads.attacks import double_sided_attack
    from repro.workloads.generator import build_benign_trace
    from repro.workloads.profiles import profile_by_name

    mechanisms = mechanisms or ["graphene", "para", "blockhammer"]
    # Duration: a single-sided aggressor at the tFAW-bound per-row rate
    # needs NRH_sim activations; triple that for scheduling slack.
    spec_probe = hcfg.spec()
    per_row_rate = 4.0 / spec_probe.tFAW / (2 * spec_probe.banks_per_rank)
    duration_ns = 3.0 * hcfg.sim_nrh / per_row_rate
    scrambled_cfg = dc_replace(
        hcfg, rowmap_kind="scrambled", max_time_ns=duration_ns, warmup_ns=0.0
    )
    runner = Runner(scrambled_cfg)
    spec = scrambled_cfg.spec()
    mapping = scrambled_cfg.mapping()

    def build_traces():
        attack = double_sided_attack(spec, mapping, victim_row=2048)
        benign = [
            build_benign_trace(
                profile_by_name(app), spec, mapping, seed=scrambled_cfg.seed + slot,
                row_offset=(slot * 8192) % spec.rows_per_bank,
            )
            for slot, app in enumerate(["473.astar", "450.soplex", "403.gcc"], start=1)
        ]
        return [attack] + benign

    def wrong_linear_adjacency(rank: int, bank: int, row: int, distance: int) -> list[int]:
        rows = spec.rows_per_bank
        out = []
        for k in range(1, distance + 1):
            if row - k >= 0:
                out.append(row - k)
            if row + k < rows:
                out.append(row + k)
        return out

    targets = [None, None, None, None]  # fixed-duration run
    per_thread = [ATTACKER_CORE_PARAMS, None, None, None]

    rows = []
    for mechanism in ["none"] + mechanisms:
        oracles = [("true", None), ("assumed-linear", wrong_linear_adjacency)]
        if mechanism == "none":
            oracles = [("n/a", None)]
        for oracle_name, oracle in oracles:
            outcome = runner.run_traces(
                build_traces(),
                mechanism,
                targets=targets,
                adjacency_override=oracle,
                core_params_per_thread=per_thread,
            )
            rows.append(
                {
                    "mechanism": mechanism,
                    "adjacency": oracle_name,
                    "bitflips": outcome.bitflips,
                    "victim_refreshes": outcome.result.victim_refreshes,
                }
            )
    return rows
