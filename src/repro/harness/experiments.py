"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data (lists of row dicts) so benchmarks,
tests, and examples can share them.  EXPERIMENTS.md records how each
maps to the paper.

Every sweep driver follows the same three-stage shape on top of
:mod:`repro.harness.parallel`:

1. **declare jobs** — enumerate the independent simulations (including
   the shared baseline and alone-IPC runs, which are deduplicated by
   job key so they execute once and serve every mechanism/scenario);
2. **execute** — :func:`~repro.harness.parallel.run_jobs`, serially or
   over a process pool (``workers`` argument / ``REPRO_WORKERS``);
3. **assemble rows** — walk the declared structure and build rows from
   the keyed results, so row order and content are independent of how
   (and in what order) the jobs ran.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.harness.parallel import (
    JobResult,
    SimJob,
    mix_job,
    mix_key,
    run_jobs,
    single_job,
    single_key,
)
from repro.harness.runner import HarnessConfig, Runner
from repro.metrics.speedup import MultiprogramMetrics, compute_metrics
from repro.mitigations.registry import PAPER_MECHANISMS
from repro.workloads.mixes import ATTACKER_THREAD, WorkloadMix, attack_mixes, benign_mixes
from repro.workloads.profiles import TABLE8_PROFILES, Category


# ----------------------------------------------------------------------
# Figure 4 — single-core normalized execution time and DRAM energy.
# ----------------------------------------------------------------------
def fig4_jobs(
    hcfg: HarnessConfig, apps: list[str], mechanisms: list[str]
) -> list[SimJob]:
    """One baseline plus one job per (app, mechanism)."""
    jobs = []
    for app in apps:
        jobs.append(single_job(hcfg, app, "none"))
        for mechanism in mechanisms:
            jobs.append(single_job(hcfg, app, mechanism))
    return jobs


def fig4_singlecore(
    hcfg: HarnessConfig,
    app_names: list[str] | None = None,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Rows: app, category, mechanism, norm_time, norm_energy."""
    mechanisms = mechanisms or PAPER_MECHANISMS
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    results = run_jobs(fig4_jobs(hcfg, apps, mechanisms), workers, cache=cache)
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        base = results[single_key(hcfg, app, 0, "none")]
        base_time = base.result.threads[0].finish_time_ns
        base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = results[single_key(hcfg, app, 0, mechanism)]
            rows.append(
                {
                    "app": app,
                    "category": profile.category.value,
                    "mechanism": mechanism,
                    "norm_time": outcome.result.threads[0].finish_time_ns / base_time,
                    "norm_energy": outcome.energy.total_j / base_energy,
                    "bitflips": outcome.bitflips,
                }
            )
    return rows


def fig4_group_means(rows: list[dict]) -> list[dict]:
    """Aggregate Figure 4 rows by (category, mechanism)."""
    grouped: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        grouped.setdefault((row["category"], row["mechanism"]), []).append(row)
    out = []
    for (category, mechanism), items in sorted(grouped.items()):
        out.append(
            {
                "category": category,
                "mechanism": mechanism,
                "norm_time": statistics.mean(r["norm_time"] for r in items),
                "norm_energy": statistics.mean(r["norm_energy"] for r in items),
            }
        )
    return out


# ----------------------------------------------------------------------
# Figure 5 — multiprogrammed workloads, with and without an attack.
# ----------------------------------------------------------------------
@dataclass
class MixOutcomeRow:
    """One (mix, mechanism) multiprogrammed data point."""

    mix: str
    scenario: str  # "no-attack" | "attack"
    mechanism: str
    metrics: MultiprogramMetrics
    norm: MultiprogramMetrics  # normalized to the baseline system
    norm_energy: float
    bitflips: int
    victim_refreshes: int


def mix_sweep_jobs(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    extract: tuple[str, ...] = (),
) -> list[SimJob]:
    """Jobs for a (mix × mechanism) sweep: the shared baseline run, one
    run per mechanism, and the benign alone-IPC runs.  Alone runs are
    keyed by (config, app, slot) and deduplicate across mixes,
    scenarios, and NRH-sweep call sites batched into one execution."""
    jobs = []
    for mix in mixes:
        jobs.append(mix_job(hcfg, mix, "none"))
        for mechanism in mechanisms:
            jobs.append(mix_job(hcfg, mix, mechanism, extract=extract))
        for slot, app in enumerate(mix.app_names):
            if slot in mix.attacker_threads:
                continue
            jobs.append(single_job(hcfg, app, "none", slot=slot))
    return jobs


def _benign_ipc_maps(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    outcome: JobResult,
    results: dict,
) -> tuple[dict[int, float], dict[int, float]]:
    """(shared, alone) IPC maps over the mix's benign threads."""
    shared: dict[int, float] = {}
    alone: dict[int, float] = {}
    for slot, app in enumerate(mix.app_names):
        if slot in mix.attacker_threads:
            continue
        shared[slot] = outcome.result.threads[slot].ipc
        alone[slot] = results[single_key(hcfg, app, slot, "none")].result.threads[0].ipc
    return shared, alone


def assemble_mix_rows(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    results: dict,
) -> list[MixOutcomeRow]:
    """Build normalized rows from executed mix-sweep jobs."""
    rows = []
    for mix in mixes:
        base = results[mix_key(hcfg, mix, "none")]
        shared, alone = _benign_ipc_maps(hcfg, mix, base, results)
        base_metrics = compute_metrics(shared, alone)
        base_energy = base.energy.total_j
        for mechanism in mechanisms:
            outcome = results[mix_key(hcfg, mix, mechanism)]
            shared, alone = _benign_ipc_maps(hcfg, mix, outcome, results)
            metrics = compute_metrics(shared, alone)
            rows.append(
                MixOutcomeRow(
                    mix=mix.name,
                    scenario=scenario,
                    mechanism=mechanism,
                    metrics=metrics,
                    norm=metrics.normalized_to(base_metrics),
                    norm_energy=outcome.energy.total_j / base_energy,
                    bitflips=outcome.bitflips,
                    victim_refreshes=outcome.result.victim_refreshes,
                )
            )
    return rows


def run_mix_sweep(
    hcfg: HarnessConfig,
    mixes: list[WorkloadMix],
    mechanisms: list[str],
    scenario: str,
    runner: Runner | None = None,
    workers: int | None = None,
    cache=None,
) -> list[MixOutcomeRow]:
    """Run every (mix, mechanism) pair plus the shared baseline.

    ``runner`` is accepted for backward compatibility; cross-run reuse
    now happens through job deduplication instead of a shared Runner.
    """
    del runner
    jobs = mix_sweep_jobs(hcfg, mixes, mechanisms)
    results = run_jobs(jobs, workers, cache=cache)
    return assemble_mix_rows(hcfg, mixes, mechanisms, scenario, results)


def fig5_multicore(
    hcfg: HarnessConfig,
    num_mixes: int = 3,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[MixOutcomeRow]:
    """Both Figure 5 scenarios over ``num_mixes`` mixes each.

    Declared as one job batch so the alone-IPC runs are shared between
    the no-attack and attack scenarios (and across mechanisms), then
    assembled in the fixed scenario order.
    """
    mechanisms = mechanisms or PAPER_MECHANISMS
    benign = benign_mixes(num_mixes)
    attack = attack_mixes(num_mixes)
    jobs = mix_sweep_jobs(hcfg, benign, mechanisms) + mix_sweep_jobs(
        hcfg, attack, mechanisms
    )
    results = run_jobs(jobs, workers, cache=cache)
    rows = assemble_mix_rows(hcfg, benign, mechanisms, "no-attack", results)
    rows += assemble_mix_rows(hcfg, attack, mechanisms, "attack", results)
    return rows


def summarize_mix_rows(rows: list[MixOutcomeRow]) -> list[dict]:
    """Mean/min/max of normalized metrics by (scenario, mechanism)."""
    grouped: dict[tuple[str, str], list[MixOutcomeRow]] = {}
    for row in rows:
        grouped.setdefault((row.scenario, row.mechanism), []).append(row)
    out = []
    for (scenario, mechanism), items in sorted(grouped.items()):
        ws = [r.norm.weighted_speedup for r in items]
        hs = [r.norm.harmonic_speedup for r in items]
        ms = [r.norm.maximum_slowdown for r in items]
        energy = [r.norm_energy for r in items]
        out.append(
            {
                "scenario": scenario,
                "mechanism": mechanism,
                "norm_ws_mean": statistics.mean(ws),
                "norm_ws_max": max(ws),
                "norm_hs_mean": statistics.mean(hs),
                "norm_ms_mean": statistics.mean(ms),
                "norm_energy_mean": statistics.mean(energy),
                "bitflips": sum(r.bitflips for r in items),
            }
        )
    return out


# ----------------------------------------------------------------------
# Figure 6 — scaling with worsening RowHammer vulnerability.
# ----------------------------------------------------------------------
FIG6_MECHANISMS = ["para", "twice", "graphene", "blockhammer"]


def fig6_scaling(
    hcfg: HarnessConfig,
    paper_nrh_values: list[int],
    num_mixes: int = 2,
    mechanisms: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Figure 6: normalized metrics vs NRH, both scenarios.

    All NRH points are declared into a single job batch, so a parallel
    run fans out across the whole (NRH × mix × scenario × mechanism)
    grid at once.
    """
    mechanisms = mechanisms or FIG6_MECHANISMS
    benign = benign_mixes(num_mixes)
    attack = attack_mixes(num_mixes)
    points = [(paper_nrh, hcfg.with_nrh(paper_nrh)) for paper_nrh in paper_nrh_values]
    jobs: list[SimJob] = []
    for _, nrh_cfg in points:
        jobs += mix_sweep_jobs(nrh_cfg, benign, mechanisms)
        jobs += mix_sweep_jobs(nrh_cfg, attack, mechanisms)
    results = run_jobs(jobs, workers, cache=cache)
    out = []
    for paper_nrh, nrh_cfg in points:
        rows = assemble_mix_rows(nrh_cfg, benign, mechanisms, "no-attack", results)
        rows += assemble_mix_rows(nrh_cfg, attack, mechanisms, "attack", results)
        for summary in summarize_mix_rows(rows):
            summary["paper_nrh"] = paper_nrh
            out.append(summary)
    return out


# ----------------------------------------------------------------------
# Section 3.2.1 — RHLI of benign vs attack threads.
# ----------------------------------------------------------------------
def rhli_experiment(
    hcfg: HarnessConfig,
    num_mixes: int = 2,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """RHLI statistics in observe-only and full-functional modes."""
    modes = ("blockhammer-observe", "blockhammer")
    mixes = attack_mixes(num_mixes)
    jobs = [
        mix_job(hcfg, mix, mode, extract=("thread_rhli",))
        for mode in modes
        for mix in mixes
    ]
    results = run_jobs(jobs, workers, cache=cache)
    rows = []
    for mode in modes:
        attacker_rhli = []
        benign_rhli = []
        for mix in mixes:
            rhli = results[mix_key(hcfg, mix, mode)].extras["thread_rhli"]
            for slot in range(len(mix.app_names)):
                if slot in mix.attacker_threads:
                    attacker_rhli.append(rhli[slot])
                else:
                    benign_rhli.append(rhli[slot])
        rows.append(
            {
                "mode": mode,
                "attacker_rhli_mean": statistics.mean(attacker_rhli),
                "attacker_rhli_max": max(attacker_rhli),
                "attacker_rhli_min": min(attacker_rhli),
                "benign_rhli_max": max(benign_rhli),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 8.4 — false positives and delay distribution.
# ----------------------------------------------------------------------
def sec84_internals(
    hcfg: HarnessConfig,
    num_mixes: int = 2,
    workers: int | None = None,
    cache=None,
) -> dict:
    """BlockHammer's false-positive rate and delay percentiles over
    benign multiprogrammed workloads."""
    mixes = benign_mixes(num_mixes)
    jobs = [
        mix_job(hcfg, mix, "blockhammer", extract=("delay_stats",)) for mix in mixes
    ]
    results = run_jobs(jobs, workers, cache=cache)
    total_acts = 0
    fp_acts = 0
    delays: list[float] = []
    for mix in mixes:
        stats = results[mix_key(hcfg, mix, "blockhammer")].extras["delay_stats"]
        total_acts += stats.total_acts
        fp_acts += stats.false_positive_acts
        delays.extend(stats.false_positive_delays_ns)
    delays.sort()

    def pct(p: float) -> float:
        if not delays:
            return 0.0
        return delays[min(len(delays) - 1, int(p / 100.0 * len(delays)))]

    return {
        "total_acts": total_acts,
        "false_positive_acts": fp_acts,
        "false_positive_rate": fp_acts / total_acts if total_acts else 0.0,
        "fp_delay_p50_ns": pct(50),
        "fp_delay_p90_ns": pct(90),
        "fp_delay_p100_ns": delays[-1] if delays else 0.0,
        "t_delay_ns": None,  # filled by callers that know the config
    }


# ----------------------------------------------------------------------
# Table 8 — workload calibration.
# ----------------------------------------------------------------------
def table8_calibration(
    hcfg: HarnessConfig,
    app_names: list[str] | None = None,
    workers: int | None = None,
    cache=None,
) -> list[dict]:
    """Measured vs target MPKI/RBCPKI for the benign generator."""
    apps = app_names or [p.name for p in TABLE8_PROFILES]
    jobs = [single_job(hcfg, app, "none") for app in apps]
    results = run_jobs(jobs, workers, cache=cache)
    rows = []
    for app in apps:
        profile = next(p for p in TABLE8_PROFILES if p.name == app)
        thread = results[single_key(hcfg, app, 0, "none")].result.threads[0]
        rows.append(
            {
                "app": app,
                "category": profile.category.value,
                "target_mpki": profile.mpki,
                "measured_mpki": thread.mpki,
                "target_rbcpki": profile.rbcpki,
                "measured_rbcpki": thread.rbcpki,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Row-mapping ablation (ours): reactive refresh vs scrambled mapping.
# ----------------------------------------------------------------------
def rowmap_ablation(hcfg: HarnessConfig, mechanisms: list[str] | None = None) -> list[dict]:
    """Attack outcomes when the in-DRAM mapping is scrambled but reactive
    mechanisms assume a linear mapping (the Section 2.3 challenge).

    Under a scrambled mapping the two "double-sided" aggressors land on
    unrelated physical rows, so each hammers its own physical neighbors
    single-sided and needs twice the activations to flip a bit; the run
    therefore uses a fixed simulated duration long enough for the
    unprotected attack to succeed.  A ``none`` row is always included to
    establish that the attack is effective.

    This driver stays serial: the assumed-linear adjacency oracle is a
    local closure, which cannot cross a process boundary.
    """
    from dataclasses import replace as dc_replace

    from repro.harness.runner import ATTACKER_CORE_PARAMS
    from repro.workloads.attacks import double_sided_attack
    from repro.workloads.generator import build_benign_trace
    from repro.workloads.profiles import profile_by_name

    mechanisms = mechanisms or ["graphene", "para", "blockhammer"]
    # Duration: a single-sided aggressor at the tFAW-bound per-row rate
    # needs NRH_sim activations; triple that for scheduling slack.
    spec_probe = hcfg.spec()
    per_row_rate = 4.0 / spec_probe.tFAW / (2 * spec_probe.banks_per_rank)
    duration_ns = 3.0 * hcfg.sim_nrh / per_row_rate
    scrambled_cfg = dc_replace(
        hcfg, rowmap_kind="scrambled", max_time_ns=duration_ns, warmup_ns=0.0
    )
    runner = Runner(scrambled_cfg)
    spec = scrambled_cfg.spec()
    mapping = scrambled_cfg.mapping()

    def build_traces():
        attack = double_sided_attack(spec, mapping, victim_row=2048)
        benign = [
            build_benign_trace(
                profile_by_name(app), spec, mapping, seed=scrambled_cfg.seed + slot,
                row_offset=(slot * 8192) % spec.rows_per_bank,
            )
            for slot, app in enumerate(["473.astar", "450.soplex", "403.gcc"], start=1)
        ]
        return [attack] + benign

    def wrong_linear_adjacency(rank: int, bank: int, row: int, distance: int) -> list[int]:
        rows = spec.rows_per_bank
        out = []
        for k in range(1, distance + 1):
            if row - k >= 0:
                out.append(row - k)
            if row + k < rows:
                out.append(row + k)
        return out

    targets = [None, None, None, None]  # fixed-duration run
    per_thread = [ATTACKER_CORE_PARAMS, None, None, None]

    rows = []
    for mechanism in ["none"] + mechanisms:
        oracles = [("true", None), ("assumed-linear", wrong_linear_adjacency)]
        if mechanism == "none":
            oracles = [("n/a", None)]
        for oracle_name, oracle in oracles:
            outcome = runner.run_traces(
                build_traces(),
                mechanism,
                targets=targets,
                adjacency_override=oracle,
                core_params_per_thread=per_thread,
            )
            rows.append(
                {
                    "mechanism": mechanism,
                    "adjacency": oracle_name,
                    "bitflips": outcome.bitflips,
                    "victim_refreshes": outcome.result.victim_refreshes,
                }
            )
    return rows
