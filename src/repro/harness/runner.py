"""Workload runners with consistent scaled configuration.

A :class:`HarnessConfig` fixes the scaled DRAM spec (DESIGN.md
substitution 3) and the *paper-scale* RowHammer threshold; everything
downstream — the disturbance model, every mechanism's context, and
BlockHammer's Table 7 configuration — sees the consistently-scaled
``sim_nrh``.  The :class:`Runner` executes single-application and
multiprogrammed workloads, caching alone-run IPCs (needed by the
weighted/harmonic speedup and maximum slowdown metrics) per application
instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.cpu.core import CoreParams
from repro.dram.address import AddressMapping, MappingScheme, shared_mapping
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.spec import DDR4_2400, DramSpec, scaled_threshold
from repro.energy.drampower import EnergyBreakdown, EnergyModel
from repro.mitigations.base import AdjacencyOracle, MitigationMechanism
from repro.mitigations.registry import build_mitigation
from repro.os.governor import Governor
from repro.os.spec import GovernorSpec, build_governor
from repro.sim.config import SystemConfig
from repro.sim.stats import SimResult
from repro.sim.system import System
from repro.workloads.mixes import DEFAULT_MIX_THREADS, WorkloadMix, mix_row_offset
from repro.workloads.profiles import WorkloadProfile, profile_by_name

#: Attack threads replay a memory-level firehose trace (Section 7), not
#: a compute-bound core: deep MLP keeps the channel saturated.
ATTACKER_CORE_PARAMS = CoreParams(max_outstanding=48)


@lru_cache(maxsize=None)
def _scaled_spec(base_spec: DramSpec, scale: float) -> DramSpec:
    """Scaled spec, memoized: ``HarnessConfig.spec()`` is called per
    trace build and per alone-IPC computation, and rebuilding the spec
    each time is pure waste (both inputs are immutable)."""
    return base_spec.scaled(scale)


def _mop_mapping(spec: DramSpec) -> AddressMapping:
    """The process-wide MOP mapping for a spec — the same instance the
    System uses, so trace encoding and core decoding share one memo."""
    return shared_mapping(spec, MappingScheme.MOP)


@lru_cache(maxsize=None)
def _channel_spec(spec: DramSpec, channels: int) -> DramSpec:
    """``spec`` re-declared with ``channels`` channels, memoized so the
    mapping/trace caches keyed by spec identity keep hitting."""
    return spec.with_channels(channels)


@dataclass(frozen=True)
class HarnessConfig:
    """Scaled experiment configuration.

    ``scale`` divides the refresh window; ``paper_nrh`` is the threshold
    the experiment models at full scale (e.g. 32K) and ``sim_nrh`` the
    consistently-scaled value the simulation uses.
    """

    scale: float = 128.0
    paper_nrh: int = 32768
    base_spec: DramSpec = DDR4_2400
    #: Memory channels (one controller + device shard + mitigation
    #: instance per channel; requests interleave across channels at
    #: MOP-run granularity).  ``None`` defers to ``base_spec.channels``
    #: (matching ``SystemConfig.num_channels`` semantics); an explicit
    #: value overrides the spec.
    num_channels: int | None = None
    instructions_per_thread: int = 120_000
    rowmap_kind: str = "linear"
    seed: int = 1
    blast_radius: int = 1
    blast_decay: float = 0.5
    max_time_ns: float | None = None
    # Warmup before measurement (the paper fast-forwards 100M
    # instructions): long enough for an attacker to be blacklisted and
    # throttled, so measurements reflect steady state.
    warmup_ns: float = 50_000.0

    @property
    def sim_nrh(self) -> int:
        return scaled_threshold(self.paper_nrh, self.scale)

    @property
    def paper_nrh_effective(self) -> float:
        """Paper-scale NRH after the many-sided correction (Eq. 3)."""
        impact_sum = sum(
            self.blast_decay ** (k - 1) for k in range(1, self.blast_radius + 1)
        )
        return self.paper_nrh / (2.0 * impact_sum)

    def mechanism_kwargs(self, name: str) -> dict:
        """Per-mechanism construction arguments for this configuration.

        Probabilistic mechanisms tune a *per-activation* probability
        from NRH; that probability must come from the paper-scale
        threshold, because shrinking the window (and NRH with it) does
        not change how often a real PARA fires per ACT.
        """
        if self.scale <= 1.0:
            return {}
        from repro.mitigations.para import Para

        para_p = Para.tuned_probability(self.paper_nrh_effective)
        if name == "para":
            return {"probability": para_p}
        if name == "mrloc":
            return {"base_probability": para_p / 2.0}
        if name == "cbt":
            # CBT's leaf regions are geometric (rows / 2^levels) and do
            # not shrink with scaled thresholds; deepen the tree by
            # log2(scale) so each leaf's activation capacity relative to
            # its threshold matches the full-scale design.
            extra = max(0, round(math.log2(self.scale)))
            return {"levels": 6 + extra, "counter_budget": 125 + 16 * extra}
        return {}

    @property
    def channels(self) -> int:
        """Effective channel count (explicit override, else the spec's)."""
        return (
            self.num_channels
            if self.num_channels is not None
            else self.base_spec.channels
        )

    def spec(self) -> DramSpec:
        spec = _scaled_spec(self.base_spec, self.scale)
        if self.channels != spec.channels:
            spec = _channel_spec(spec, self.channels)
        return spec

    def with_nrh(self, paper_nrh: int) -> "HarnessConfig":
        return replace(self, paper_nrh=paper_nrh)

    def disturbance(self) -> DisturbanceProfile:
        return DisturbanceProfile(
            nrh=self.sim_nrh, blast_radius=self.blast_radius, decay=self.blast_decay
        )

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            spec=self.spec(),
            num_channels=self.channels,
            disturbance=self.disturbance(),
            rowmap_kind=self.rowmap_kind,
            seed=self.seed,
        )

    def mapping(self) -> AddressMapping:
        return _mop_mapping(self.spec())


@dataclass
class RunOutcome:
    """One simulation's results plus derived energy and the per-channel
    mechanism instances."""

    mechanism_name: str
    result: SimResult
    energy: EnergyBreakdown
    #: One mitigation instance per memory channel (state is never shared
    #: across channels; aggregate with max/sum as the statistic demands).
    mechanisms: tuple[MitigationMechanism, ...]
    #: Per-channel DRAM command traces, only when the runner was built
    #: with ``capture_commands`` (differential scheduler testing).
    command_logs: tuple[list, ...] | None = None
    #: The OS governor this run executed under (None = no governor); the
    #: ``governor_actions`` extractor reads its action log.
    governor: Governor | None = None

    @property
    def mechanism(self) -> MitigationMechanism:
        """The channel-0 mechanism (the whole system on 1-channel runs)."""
        return self.mechanisms[0]

    @property
    def bitflips(self) -> int:
        return self.result.total_bitflips


class Runner:
    """Executes workloads under a fixed :class:`HarnessConfig`.

    ``policy`` overrides the scheduling policy for every system this
    runner builds (default FR-FCFS); ``capture_commands`` records every
    DRAM command each channel issues into ``RunOutcome.command_logs``.
    The differential scheduler harness uses both to prove the fast and
    the reference policy produce identical command streams.

    ``obs`` attaches a :class:`~repro.obs.probe.TelemetryBus` to every
    system this runner builds (the CLI ``trace`` subcommand's path);
    mutually exclusive with ``capture_commands``, which claims the
    device command-log hook for itself.
    """

    def __init__(
        self,
        hcfg: HarnessConfig,
        energy_model: EnergyModel | None = None,
        policy=None,
        capture_commands: bool = False,
        obs=None,
    ) -> None:
        self.hcfg = hcfg
        self.energy_model = energy_model or EnergyModel()
        self.policy = policy
        self.capture_commands = capture_commands
        self.obs = obs
        self._alone_ipc_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def _build_system(
        self,
        traces,
        mechanism_name: str,
        adjacency_override: AdjacencyOracle | None = None,
        core_params_per_thread: list | None = None,
        governor: GovernorSpec | None = None,
        **mechanism_kwargs,
    ) -> System:
        kwargs = dict(self.hcfg.mechanism_kwargs(mechanism_name))
        kwargs.update(mechanism_kwargs)
        system = System(
            self.hcfg.system_config(),
            traces,
            # One fresh mechanism per channel: state is never shared.
            mitigation_factory=lambda: build_mitigation(mechanism_name, **kwargs),
            policy=self.policy,
            adjacency_override=adjacency_override,
            core_params_per_thread=core_params_per_thread,
            # One fresh governor per system: policies carry run state.
            governor=build_governor(governor),
            obs=self.obs,
        )
        return system

    def run_traces(
        self,
        traces,
        mechanism_name: str = "none",
        targets: int | list[int | None] | None = None,
        adjacency_override: AdjacencyOracle | None = None,
        core_params_per_thread: list | None = None,
        governor: GovernorSpec | None = None,
        **mechanism_kwargs,
    ) -> RunOutcome:
        """Run arbitrary traces under a mechanism (optionally with an
        OS governor described by ``governor``)."""
        system = self._build_system(
            traces,
            mechanism_name,
            adjacency_override,
            core_params_per_thread=core_params_per_thread,
            governor=governor,
            **mechanism_kwargs,
        )
        logs: tuple[list, ...] | None = None
        if self.capture_commands:
            logs = tuple([] for _ in system.memsys.devices)
            for device, log in zip(system.memsys.devices, logs):
                device.command_log = log
        if targets is None:
            targets = self.hcfg.instructions_per_thread
        result = system.run(
            instructions_per_thread=targets,
            max_time_ns=self.hcfg.max_time_ns,
            warmup_ns=self.hcfg.warmup_ns,
        )
        return RunOutcome(
            mechanism_name=mechanism_name,
            result=result,
            energy=self.energy_model.energy_of(result),
            mechanisms=tuple(system.mitigations),
            command_logs=logs,
            governor=system.governor,
        )

    # ------------------------------------------------------------------
    def run_single(
        self,
        app_name: str,
        mechanism_name: str = "none",
        slot: int = 0,
        pinned: int | None = None,
        threads: int = DEFAULT_MIX_THREADS,
    ) -> RunOutcome:
        """Single-core run of one Table 8 application (Figure 4).

        ``slot`` seeds the trace as if the app occupied that mix slot,
        which is how the alone-IPC runs behind the multiprogram metrics
        are produced (the job layer runs them as ``single`` jobs).
        ``pinned`` confines the working set to one memory channel and
        ``threads`` is the width of the mix being mirrored (it sets the
        row-stripe stride) — together they make the alone run replay the
        mix slot's trace bit-exactly.
        """
        profile = profile_by_name(app_name)
        if pinned is not None:
            profile = profile.pinned_to(pinned)
        trace = self._benign_trace(profile, slot=slot, threads=threads)
        return self.run_traces([trace], mechanism_name)

    def run_mix(
        self,
        mix: WorkloadMix,
        mechanism_name: str = "none",
        adjacency_override: AdjacencyOracle | None = None,
        governor: GovernorSpec | None = None,
        **mechanism_kwargs,
    ) -> RunOutcome:
        """Multiprogrammed run (Figures 5/6).

        Attacker threads carry no instruction target (they hammer for as
        long as benign threads run, never gating completion) and use a
        deep-MLP core so the attack trace saturates the channel like the
        paper's firehose trace replay does.
        """
        spec = self.hcfg.spec()
        traces = mix.build_traces(spec, self.hcfg.mapping(), seed=self.hcfg.seed)
        targets: list[int | None] = [
            None if slot in mix.attacker_threads else self.hcfg.instructions_per_thread
            for slot in range(len(traces))
        ]
        attacker_params = ATTACKER_CORE_PARAMS if mix.attacker_threads else None
        per_thread = (
            [
                attacker_params if slot in mix.attacker_threads else None
                for slot in range(len(traces))
            ]
            if attacker_params
            else None
        )
        return self.run_traces(
            traces,
            mechanism_name,
            targets,
            adjacency_override,
            core_params_per_thread=per_thread,
            governor=governor,
            **mechanism_kwargs,
        )

    # ------------------------------------------------------------------
    def alone_ipc(self, mix: WorkloadMix, slot: int) -> float:
        """IPC of the mix's ``slot`` thread running alone on the baseline
        system (cached across mechanisms and scenarios)."""
        app = mix.app_names[slot]
        pinned = mix.pinned_channel(slot)
        threads = len(mix.app_names)
        key = (app, self.hcfg.seed + slot, slot, pinned, threads)
        if key not in self._alone_ipc_cache:
            outcome = self.run_single(
                app, "none", slot=slot, pinned=pinned, threads=threads
            )
            self._alone_ipc_cache[key] = outcome.result.threads[0].ipc
        return self._alone_ipc_cache[key]

    def benign_ipc_maps(
        self, mix: WorkloadMix, outcome: RunOutcome
    ) -> tuple[dict[int, float], dict[int, float]]:
        """(shared, alone) IPC maps over the mix's benign threads."""
        shared: dict[int, float] = {}
        alone: dict[int, float] = {}
        for slot in range(len(mix.app_names)):
            if slot in mix.attacker_threads:
                continue
            shared[slot] = outcome.result.threads[slot].ipc
            alone[slot] = self.alone_ipc(mix, slot)
        return shared, alone

    # ------------------------------------------------------------------
    def _benign_trace(
        self, profile: WorkloadProfile, slot: int, threads: int = DEFAULT_MIX_THREADS
    ):
        from repro.workloads.generator import build_benign_trace

        spec = self.hcfg.spec()
        return build_benign_trace(
            profile,
            spec,
            self.hcfg.mapping(),
            seed=self.hcfg.seed + slot,
            # Mirror the mix's row-stripe layout so the alone run
            # replays the exact trace of the mix's ``slot`` thread.
            row_offset=mix_row_offset(spec, slot, threads),
        )
