"""Command-line experiment runner.

Usage::

    python -m repro.harness.cli table1
    python -m repro.harness.cli security
    python -m repro.harness.cli fig5 --mixes 2 --scale 128
    python -m repro.harness.cli chansweep --channel-sweep 1,2,4 --pinned
    python -m repro.harness.cli ossweep --policies kill quota migrate
    python -m repro.harness.cli rhli
    python -m repro.harness.cli table4

Each subcommand regenerates one paper table/figure and prints it; the
benchmarks under ``benchmarks/`` run the same drivers with assertions.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.config import BlockHammerConfig
from repro.harness import experiments, parallel
from repro.harness.cache import (
    CACHE_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    _env_max_entries,
    resolve_cache,
)
from repro.harness.reporting import (
    format_attribution,
    format_channel_summary,
    format_os_policy,
    format_sweep_report,
    format_table,
    round_or_none,
)
from repro.harness.retry import (
    JOB_TIMEOUT_ENV,
    ON_ERROR_ENV,
    ON_ERROR_MODES,
    RETRIES_ENV,
)
from repro.harness.runner import HarnessConfig
from repro.hwcost.mechanisms import table4_rows
from repro.obs.profile import format_profile_breakdown, write_report_json
from repro.mitigations.registry import available_mitigations
from repro.security.solver import prove_safety


def _hcfg(args) -> HarnessConfig:
    return HarnessConfig(
        scale=args.scale,
        paper_nrh=args.nrh,
        num_channels=args.channels,
        instructions_per_thread=args.instructions,
        warmup_ns=args.warmup_us * 1000.0,
    )


def _cache(args):
    """The cache argument for the experiment drivers: an explicit flag
    wins; otherwise None defers to the REPRO_CACHE environment.  An
    entry cap (``--cache-max-entries`` / REPRO_CACHE_MAX_ENTRIES) rides
    along on whichever cache is chosen — the flag never changes *which*
    directory serves the cache (``REPRO_CACHE=<path>`` plus a CLI cap
    still hits the environment's warm store, parsed by the one grammar
    in ``resolve_cache``) and never overrides an explicit
    ``REPRO_CACHE=0`` opt-out (only ``--cache``/``--cache-dir`` do)."""
    if args.no_cache:
        return False
    max_entries = args.cache_max_entries
    if args.cache_dir:
        if max_entries is None:
            max_entries = _env_max_entries()
        return ResultCache(args.cache_dir, max_entries=max_entries)
    if max_entries is None:
        return True if args.cache else None
    resolved = resolve_cache(None)  # environment-selected cache, if any
    if resolved is not None:
        return ResultCache(resolved.root, max_entries=max_entries)
    if not args.cache and os.environ.get(CACHE_ENV, "").strip() == "0":
        return None  # explicit environment opt-out wins over the cap
    return ResultCache(DEFAULT_CACHE_DIR, max_entries=max_entries)


def cmd_table1(args) -> str:
    cfg = BlockHammerConfig.for_nrh(args.nrh)
    return format_table(["parameter", "value"], list(cfg.summary().items()))


def cmd_security(args) -> str:
    rows = []
    for nrh in (32768, 16384, 8192, 4096, 2048, 1024):
        proof = prove_safety(BlockHammerConfig.for_nrh(nrh))
        rows.append(
            [
                nrh,
                int(proof.nrh_star),
                round(proof.lp_max_activations),
                round(proof.fast_delayed_max),
                "SAFE" if proof.safe else "UNSAFE",
            ]
        )
    return format_table(["NRH", "NRH*", "LP max", "window bound", "verdict"], rows)


def cmd_table4(args) -> str:
    rows = [
        [
            c.name,
            c.nrh,
            round(c.sram_kb, 2),
            round(c.cam_kb, 2),
            round(c.total_area_mm2, 3),
            round(c.access_energy_pj, 1),
            round(c.static_power_mw, 1),
        ]
        for c in table4_rows()
    ]
    return format_table(
        ["mechanism", "NRH", "SRAM KB", "CAM KB", "mm2", "pJ", "mW"], rows
    )


def cmd_fig4(args) -> str:
    rows = experiments.fig4_singlecore(
        _hcfg(args), args.apps, workers=args.workers, cache=_cache(args)
    )
    means = experiments.fig4_group_means(rows)
    return format_table(
        ["category", "mechanism", "norm time", "norm energy"],
        [
            [
                m["category"],
                m["mechanism"],
                round_or_none(m["norm_time"], 4),
                round_or_none(m["norm_energy"], 4),
            ]
            for m in means
        ],
    )


def cmd_fig5(args) -> str:
    rows = experiments.fig5_multicore(
        _hcfg(args),
        num_mixes=args.mixes,
        mechanisms=args.mechanisms,
        workers=args.workers,
        cache=_cache(args),
    )
    summary = experiments.summarize_mix_rows(rows)
    return format_table(
        ["scenario", "mechanism", "WS", "HS", "MS", "energy", "flips"],
        [
            [
                s["scenario"],
                s["mechanism"],
                round_or_none(s["norm_ws_mean"], 3),
                round_or_none(s["norm_hs_mean"], 3),
                round_or_none(s["norm_ms_mean"], 3),
                round_or_none(s["norm_energy_mean"], 3),
                s["bitflips"],
            ]
            for s in summary
        ],
    )


def cmd_rhli(args) -> str:
    rows = experiments.rhli_experiment(
        _hcfg(args), num_mixes=args.mixes, workers=args.workers, cache=_cache(args)
    )

    return format_table(
        ["mode", "attacker mean", "attacker max", "benign max"],
        [
            [
                r["mode"],
                round_or_none(r["attacker_rhli_mean"], 2),
                round_or_none(r["attacker_rhli_max"], 2),
                round_or_none(r["benign_rhli_max"], 4),
            ]
            for r in rows
        ],
    )


def cmd_chansweep(args) -> str:
    """Channel-scaling study: fig5-style sweep at each channel count,
    plus per-channel attribution rows."""
    data = experiments.channel_scaling(
        _hcfg(args),
        channel_counts=tuple(args.channel_sweep),
        num_mixes=args.mixes,
        mechanisms=args.mechanisms,
        workers=args.workers,
        cache=_cache(args),
        include_pinned=args.pinned,
    )
    return "\n".join(
        [
            format_channel_summary(data["summary"]),
            "",
            "per-channel attribution (RHLI / blacklist / throttle events):",
            format_attribution(data["attribution"]),
        ]
    )


def cmd_ossweep(args) -> str:
    """OS governor policy comparison: {no-governor, kill, quota,
    migrate} × mechanisms over attack mixes, with benign slowdown
    (vs the ungoverned run) and attacker RHLI per policy."""
    import dataclasses

    hcfg = _hcfg(args)
    if args.channels is None:
        # Channel migration needs somewhere to migrate *to*: default to
        # two channels unless the user pinned a count explicitly.
        hcfg = dataclasses.replace(hcfg, num_channels=2)
    rows = experiments.os_policy_sweep(
        hcfg,
        num_mixes=args.mixes,
        mechanisms=args.mechanisms,
        policies=args.policies,
        workers=args.workers,
        cache=_cache(args),
    )
    return format_os_policy(rows)


def cmd_table8(args) -> str:
    rows = experiments.table8_calibration(
        _hcfg(args), args.apps, workers=args.workers, cache=_cache(args)
    )
    return format_table(
        ["app", "cat", "MPKI target", "MPKI", "RBCPKI target", "RBCPKI"],
        [
            [
                r["app"],
                r["category"],
                r["target_mpki"],
                round_or_none(r["measured_mpki"], 2),
                r["target_rbcpki"],
                round_or_none(r["measured_rbcpki"], 2),
            ]
            for r in rows
        ],
    )


def cmd_trace(args) -> str:
    """Run one attack-mix scenario with tracing and epoch metrics on,
    writing a Perfetto ``trace_event`` JSON and a tidy metrics CSV."""
    from repro.harness.runner import Runner
    from repro.obs import ObsConfig, TelemetryBus, write_perfetto
    from repro.workloads.mixes import attack_mixes

    mechanism = args.mechanisms[0] if args.mechanisms else "blockhammer"
    bus = TelemetryBus(
        ObsConfig(
            trace=True,
            trace_limit=args.trace_limit,
            metrics=True,
            metrics_epoch_ns=args.metrics_epoch_ns,
        )
    )
    mix = attack_mixes(1)[0]
    outcome = Runner(_hcfg(args), obs=bus).run_mix(mix, mechanism)
    document = write_perfetto(args.trace_out, bus.trace)
    metric_rows = bus.metrics.write_csv(args.metrics_out)
    return format_table(
        ["key", "value"],
        [
            ["mechanism", mechanism],
            ["mix", mix.name],
            ["trace events", len(bus.trace.events)],
            ["dropped", bus.trace.dropped],
            ["perfetto events", len(document["traceEvents"])],
            ["metric rows", metric_rows],
            ["victim refreshes", outcome.result.victim_refreshes],
            ["trace file", args.trace_out],
            ["metrics file", args.metrics_out],
        ],
    )


_COMMANDS = {
    "table1": cmd_table1,
    "security": cmd_security,
    "table4": cmd_table4,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "chansweep": cmd_chansweep,
    "ossweep": cmd_ossweep,
    "rhli": cmd_rhli,
    "table8": cmd_table8,
    "trace": cmd_trace,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate BlockHammer paper tables and figures.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("--scale", type=float, default=128.0, help="tREFW shrink factor")
    parser.add_argument("--nrh", type=int, default=32768, help="paper-scale NRH")
    parser.add_argument("--mixes", type=int, default=1, help="mixes per scenario")
    parser.add_argument(
        "--instructions", type=int, default=80_000, help="benign instructions per thread"
    )
    parser.add_argument("--warmup-us", type=float, default=50.0, help="warmup time (us)")
    parser.add_argument(
        "--apps", nargs="*", default=None, help="application subset (default: all)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--channels",
        type=int,
        default=None,
        help="memory channels, one controller + mitigation instance each "
        "(default: the spec's channel count)",
    )
    parser.add_argument(
        "--channel-sweep",
        type=_channel_list,
        default=[1, 2, 4],
        help="comma-separated channel counts for the chansweep command "
        "(default: 1,2,4)",
    )
    parser.add_argument(
        "--mechanisms",
        nargs="+",
        choices=available_mitigations(),
        metavar="MECHANISM",
        default=None,
        help="mechanism subset for the chansweep/ossweep commands "
        "(default: all paper mechanisms for chansweep, "
        "blockhammer+naive-throttle for ossweep; known: "
        f"{', '.join(available_mitigations())})",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(experiments.OS_SWEEP_POLICIES),
        metavar="POLICY",
        default=None,
        help="OS governor policies for the ossweep command (default: "
        f"all; known: {', '.join(experiments.OS_SWEEP_POLICIES)})",
    )
    parser.add_argument(
        "--pinned",
        action="store_true",
        help="chansweep: also run channel-affine (pinned) variants of "
        "every mix, with the attacker confined to channel 0",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse cached results from .repro_cache/ (also REPRO_CACHE=1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force the result cache off, overriding REPRO_CACHE",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (implies --cache)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=_positive_int,
        default=None,
        help="LRU cap on stored cache entries; oldest-used entries beyond "
        "the cap are evicted after each store (implies --cache; also "
        "REPRO_CACHE_MAX_ENTRIES)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=None,
        help="retries per job after the first attempt, with bounded "
        "exponential backoff; retried jobs are bit-identical "
        "(default: REPRO_RETRIES or 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout on the pool path: the worker is "
        "killed and the job re-enters the retry ladder "
        "(default: REPRO_JOB_TIMEOUT or none)",
    )
    parser.add_argument(
        "--on-error",
        choices=ON_ERROR_MODES,
        default=None,
        help="disposition for jobs that exhaust their retries: 'raise' "
        "aborts the sweep (completed jobs stay checkpointed in the "
        "cache), 'skip' renders them as '-' rows "
        "(default: REPRO_ON_ERROR or raise)",
    )
    parser.add_argument(
        "--trace-out",
        default="trace.json",
        help="trace command: Perfetto trace_event JSON output path",
    )
    parser.add_argument(
        "--metrics-out",
        default="metrics.csv",
        help="trace command: epoch-metrics CSV output path",
    )
    parser.add_argument(
        "--trace-limit",
        type=_positive_int,
        default=500_000,
        help="trace command: ring-buffer bound on retained trace events "
        "(oldest events drop beyond it; the report counts drops)",
    )
    parser.add_argument(
        "--metrics-epoch-ns",
        type=_positive_float,
        default=None,
        help="trace command: metrics sampling period in ns (default: the "
        "mechanism's epoch, else half the refresh window)",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="PATH",
        help="write the sweep execution report (counters, failures, "
        "per-job wall-clock/throughput profiles) as JSON to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream one line per completed/cached/failed job to stderr "
        "and print the sweep report (jobs, retries, timeouts, crashes, "
        "failures) when the command finishes (also REPRO_PROGRESS=1)",
    )
    return parser


def _apply_exec_env(args) -> None:
    """Thread the execution-policy flags to the drivers via their
    ``REPRO_*`` environment variables (one grammar — the same one
    ``resolve_policy`` reads — so explicit flags win over the inherited
    environment without widening every driver signature)."""
    if args.retries is not None:
        os.environ[RETRIES_ENV] = str(args.retries)
    if args.job_timeout is not None:
        os.environ[JOB_TIMEOUT_ENV] = str(args.job_timeout)
    if args.on_error is not None:
        os.environ[ON_ERROR_ENV] = args.on_error
    if args.progress:
        os.environ[parallel.PROGRESS_ENV] = "1"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _channel_list(text: str) -> list[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError("must be comma-separated integers") from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError("channel counts must be >= 1")
    if len(set(values)) != len(values):
        # A duplicated point would duplicate every output row (the
        # simulations themselves dedup by job key).
        raise argparse.ArgumentTypeError("channel counts must be distinct")
    return values


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_exec_env(args)
    # The last-report slot is module-global; clear it so a report left by
    # an earlier sweep in this process never masquerades as this run's.
    parallel.reset_last_report()
    print(_COMMANDS[args.command](args))
    report = parallel.last_report()
    if args.progress and report is not None:
        print(format_sweep_report(report), file=sys.stderr)
        breakdown = format_profile_breakdown(report)
        if breakdown:
            print(breakdown, file=sys.stderr)
    if args.report_json:
        if report is not None:
            write_report_json(report, args.report_json)
        else:
            print(
                f"--report-json: no sweep ran; {args.report_json} not written",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
