"""Experiment harness: scaled-configuration plumbing, workload runners
with alone-run caching, and per-figure experiment drivers."""

from repro.harness.runner import HarnessConfig, RunOutcome, Runner
from repro.harness.reporting import format_table
from repro.harness import experiments

__all__ = ["HarnessConfig", "RunOutcome", "Runner", "format_table", "experiments"]
