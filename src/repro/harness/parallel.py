"""Job-based parallel experiment execution.

Every paper figure this repository reproduces is a sweep of *independent*
simulations — (app × mechanism), (mix × scenario × mechanism),
(NRH point × mechanism).  This module turns those sweeps into explicit
job lists that fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :class:`SimJob` — a picklable, self-contained description of one
  simulation (configuration + workload + mechanism + which mechanism
  statistics to extract).  Jobs carry a deterministic ``key``; jobs with
  equal keys are executed once and shared (this is how the Runner's
  alone-IPC cache generalizes across processes: every "app running
  alone on the baseline" run is a job keyed by (config, app, slot) and
  deduplicated across mixes, scenarios, and mechanisms).
* :func:`run_jobs` — executes a job list, in worker processes when
  ``workers > 1`` and serially otherwise, and returns results keyed by
  job key.  Result assembly is therefore order-independent: drivers
  iterate their declared structure, not the completion order, so serial
  and parallel execution produce **identical** rows.  Each job runs a
  fully self-contained simulation with its own deterministic RNGs, so
  results are also bit-identical across worker counts.

Drivers in :mod:`repro.harness.experiments` follow a declare-jobs →
execute → assemble-rows shape on top of these primitives.

On top of in-batch deduplication, :func:`run_jobs` can consult the
persistent cross-sweep result cache (:mod:`repro.harness.cache`): jobs
whose key + source fingerprint match a stored entry are returned from
disk before any dispatch, so re-running an unchanged sweep performs
zero simulations and yields bit-identical rows.

Execution is **fault-tolerant** (see :mod:`repro.harness.retry` for the
policy knobs and :mod:`repro.harness.faults` for the chaos harness that
tests them):

* every finished :class:`JobResult` is **checkpointed into the cache
  the moment it lands** — an interrupted or crashed sweep resumes from
  its completed jobs, never from zero;
* a dead worker (``BrokenProcessPool``) rebuilds the pool and retries
  only the affected jobs, with bounded exponential backoff and
  deterministic jitter — retried jobs are bit-identical because every
  job is a self-contained deterministic simulation;
* jobs running past the per-job wall-clock timeout have their worker
  killed and re-enter the retry ladder (kill → retry → … → skip);
* with ``on_error="skip"`` exhausted jobs become structured
  :class:`JobFailure` records in the returned mapping (drivers render
  them as ``-`` rows) instead of raising :class:`JobExecutionError`.

Mechanism objects hold closures (the adjacency oracle) and cannot cross
a process boundary; anything a driver needs from the mechanism after
the run is declared up front via ``SimJob.extract`` and computed inside
the worker (see :data:`EXTRACTORS`).
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.energy.drampower import EnergyBreakdown
from repro.harness.cache import CACHEABLE_EXTRAS, ResultCache, resolve_cache
from repro.harness.faults import FaultPlan, SimulatedCrash
from repro.harness.retry import ExecPolicy, resolve_policy
from repro.harness.runner import HarnessConfig, Runner, RunOutcome
from repro.obs.profile import JobProfile
from repro.os.spec import GovernorSpec
from repro.sim.stats import SimResult
from repro.utils.aggregate import merge_fields
from repro.workloads.mixes import DEFAULT_MIX_THREADS, WorkloadMix

#: Environment variable consulted when a driver does not pass an
#: explicit worker count.
WORKERS_ENV = "REPRO_WORKERS"

JobKey = tuple


def _extract_delay_stats(outcome: RunOutcome):
    """BlockHammer's Section 8.4 delay statistics, merged over the
    per-channel mechanism instances (counter sums, delay-list concat)."""
    parts = [mechanism.delay_stats() for mechanism in outcome.mechanisms]
    if len(parts) == 1:
        return parts[0]
    from repro.core.rowblocker import DelayStats

    merged = DelayStats()
    for part in parts:
        merge_fields(merged, part)  # counters sum, delay lists concat
    return merged


def _extract_thread_rhli(outcome: RunOutcome) -> list[float | None]:
    """Per-thread maximum RHLI at end of run (Section 3.2.1), maxed over
    the per-channel mechanism instances (the paper's RHLI is the worst
    exposure anywhere in the system).  Threads report ``None`` when no
    channel's mechanism tracks RHLI (reactive baselines in the governor
    sweeps) — the BlockHammer-family sweeps always get floats."""
    out: list[float | None] = []
    for thread in range(len(outcome.result.threads)):
        values = [
            mechanism.thread_max_rhli(thread)
            for mechanism in outcome.mechanisms
            if hasattr(mechanism, "thread_max_rhli")
        ]
        out.append(max(values) if values else None)
    return out


def _extract_channel_attribution(outcome: RunOutcome) -> list[dict]:
    """Mechanism-side per-channel attribution rows (the BreakHammer
    direction: localize which channel accrues RHLI and throttling).

    One dict per channel, straight from the mechanism's OS telemetry
    snapshot (:meth:`~repro.mitigations.base.MitigationMechanism.os_telemetry`
    — the same duck-typed interface the OS governor samples):
    ``thread_rhli`` (per-thread maximum RHLI on that channel's
    mechanism instance, ``None`` for mechanisms without RHLI tracking),
    ``blacklisted_acts`` (AttackThrottler events), and the RowBlocker
    delay counters (``total_acts``/``delayed_acts``/
    ``false_positive_acts``; zero for mechanisms without delay stats).
    Controller-side throttle events (blocked injections) live on
    :class:`~repro.sim.stats.ChannelResult` instead.  Aggregation
    contract: counters sum across channels, RHLI maxes — mirrored by
    :func:`_extract_thread_rhli` and asserted by the attribution tests.
    """
    rows = []
    for channel, mechanism in enumerate(outcome.mechanisms):
        telemetry = mechanism.os_telemetry()
        rows.append(
            {
                "channel": channel,
                "thread_rhli": telemetry.thread_rhli,
                "blacklisted_acts": telemetry.blacklisted_acts,
                "total_acts": telemetry.total_acts,
                "delayed_acts": telemetry.delayed_acts,
                "false_positive_acts": telemetry.false_positive_acts,
            }
        )
    return rows


def _extract_governor_actions(outcome: RunOutcome) -> dict | None:
    """The OS governor's action record (``None`` for ungoverned runs):
    review-epoch count, kill/migration logs, and quota-scale state —
    plain lists of scalars so the result cache round-trips it exactly."""
    if outcome.governor is None:
        return None
    return outcome.governor.actions_summary()


#: Named, picklable-result extractors applied to the finished run
#: inside the worker process.
EXTRACTORS = {
    "delay_stats": _extract_delay_stats,
    "thread_rhli": _extract_thread_rhli,
    "channel_attribution": _extract_channel_attribution,
    "governor_actions": _extract_governor_actions,
}

# Every extractor must have a cache codec, or jobs requesting it would
# be silently uncacheable (each re-run would miss and re-simulate).
# Fail loudly at import time instead.
_UNCACHEABLE = set(EXTRACTORS) - CACHEABLE_EXTRAS
if _UNCACHEABLE:
    raise RuntimeError(
        f"extractors without a cache codec in repro.harness.cache: "
        f"{sorted(_UNCACHEABLE)}"
    )


@dataclass(frozen=True)
class SimJob:
    """One independent simulation in a sweep.

    ``kind`` selects the workload shape:

    * ``"single"`` — one benign application (``app``) running alone,
      seeded as mix slot ``slot`` (slot 0 reproduces ``Runner.run_single``;
      other slots reproduce the alone-IPC runs used by multiprogram
      metrics).  ``pinned`` confines the working set to one memory
      channel and ``threads`` is the mirrored mix's width (row-stripe
      stride), matching the slot of the mix being normalized.
    * ``"mix"`` — a multiprogrammed :class:`WorkloadMix`.

    ``key`` must be hashable, deterministic, and unique per distinct
    simulation; jobs with equal keys are deduplicated by
    :func:`run_jobs` (their ``extract`` tuples are unioned).
    """

    key: JobKey
    hcfg: HarnessConfig
    kind: str
    mechanism: str = "none"
    app: str | None = None
    slot: int = 0
    pinned: int | None = None
    threads: int = DEFAULT_MIX_THREADS
    mix: WorkloadMix | None = None
    #: OS governor configuration for this run (None = ungoverned); a
    #: frozen spec rather than a live Governor so the job stays
    #: picklable and the cache can key on its repr.
    governor: GovernorSpec | None = None
    extract: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("single", "mix"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "single" and self.app is None:
            raise ValueError("single jobs need an app name")
        if self.kind == "mix" and self.mix is None:
            raise ValueError("mix jobs need a WorkloadMix")
        if self.kind == "single" and self.governor is not None:
            raise ValueError("governors apply to mix jobs only")
        for name in self.extract:
            if name not in EXTRACTORS:
                raise ValueError(f"unknown extractor {name!r}")


@dataclass
class JobResult:
    """The picklable outcome of one :class:`SimJob`."""

    key: JobKey
    mechanism_name: str
    result: SimResult
    energy: EnergyBreakdown
    extras: dict = field(default_factory=dict)

    @property
    def bitflips(self) -> int:
        return self.result.total_bitflips


@dataclass
class JobFailure:
    """A job that exhausted its retry budget (``on_error="skip"``).

    Stored in the ``run_jobs`` result mapping under the job's key, in
    place of a :class:`JobResult`; drivers test entries with
    :func:`failed` and render failed rows as ``-``.  ``kind`` is
    ``"crash"`` (worker death), ``"timeout"`` (per-job wall-clock
    limit), or ``"error"`` (the job raised).
    """

    key: JobKey
    kind: str
    attempts: int
    error: str = ""


def failed(entry) -> bool:
    """Whether a ``run_jobs`` result entry is a :class:`JobFailure`."""
    return isinstance(entry, JobFailure)


class JobExecutionError(RuntimeError):
    """Raised by ``run_jobs(..., on_error="raise")`` after the sweep
    drains, carrying every :class:`JobFailure`.  Completed jobs are
    already checkpointed in the result cache, so a re-run resumes from
    them."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"{f.kind} after {f.attempts} attempt(s): {f.error or f.key!r}"
            for f in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(f"{len(failures)} job(s) failed: {detail}{more}")


@dataclass
class SweepReport:
    """Progress/failure accounting for one or more ``run_jobs`` calls.

    Pass an instance via ``run_jobs(..., report=...)`` to accumulate
    across calls; the most recent sweep's report is also available from
    :func:`last_report`.  Render with
    :func:`repro.harness.reporting.format_sweep_report`.
    """

    total: int = 0
    cached: int = 0
    executed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    failures: list[JobFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Per-job execution profiles (:class:`~repro.obs.profile.JobProfile`):
    #: wall-clock, simulated events/second, cache disposition, attempts.
    #: Rendered by ``repro.obs.profile.report_to_json`` (the CLI's
    #: ``--report-json`` artifact) and ``format_profile_breakdown``.
    profiles: list[JobProfile] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.cached + self.executed


# ----------------------------------------------------------------------
# Job execution (runs inside worker processes for parallel sweeps).
# ----------------------------------------------------------------------
#: Per-process Runner cache: a worker executes many jobs against the
#: same configuration; rebuilding the Runner per job is pure waste.
_RUNNERS: dict[HarnessConfig, Runner] = {}


def _runner_for(hcfg: HarnessConfig) -> Runner:
    runner = _RUNNERS.get(hcfg)
    if runner is None:
        runner = Runner(hcfg)
        _RUNNERS[hcfg] = runner
    return runner


#: Simulations actually executed in this process (cache hits do not
#: count).  Tests and the perf smoke assert a warm-cache sweep leaves
#: this untouched.
JOB_EXECUTIONS = 0


def job_executions() -> int:
    """Simulations executed in this process so far."""
    return JOB_EXECUTIONS


def execute_job(job: SimJob) -> JobResult:
    """Run one job to completion (callable in any process)."""
    global JOB_EXECUTIONS
    JOB_EXECUTIONS += 1
    runner = _runner_for(job.hcfg)
    if job.kind == "single":
        outcome = runner.run_single(
            job.app,
            job.mechanism,
            slot=job.slot,
            pinned=job.pinned,
            threads=job.threads,
        )
    else:
        outcome = runner.run_mix(job.mix, job.mechanism, governor=job.governor)
    extras = {name: EXTRACTORS[name](outcome) for name in job.extract}
    return JobResult(
        key=job.key,
        mechanism_name=outcome.mechanism_name,
        result=outcome.result,
        energy=outcome.energy,
        extras=extras,
    )


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------
def resolve_workers(workers: int | None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``,
    else 1 (serial)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    return max(1, workers)


def dedupe_jobs(jobs: list[SimJob]) -> list[SimJob]:
    """Unique jobs in first-occurrence order.

    Jobs sharing a key must describe the same simulation; their
    ``extract`` tuples are unioned so one run serves every consumer.
    """
    unique: dict[JobKey, SimJob] = {}
    for job in jobs:
        existing = unique.get(job.key)
        if existing is None:
            unique[job.key] = job
            continue
        if replace(existing, extract=()) != replace(job, extract=()):
            raise ValueError(f"job key {job.key!r} reused for a different simulation")
        if job.extract != existing.extract:
            merged = existing.extract + tuple(
                name for name in job.extract if name not in existing.extract
            )
            unique[job.key] = replace(existing, extract=merged)
    return list(unique.values())


def _invoke_job(job: SimJob, attempt: int, faults: FaultPlan | None) -> JobResult:
    """One job attempt (the unit the pool dispatches): fire any injected
    fault for this ``(job, attempt)``, then run the simulation."""
    if faults is not None:
        faults.apply(job, attempt, in_process=False)
    return execute_job(job)


#: Environment variable: any non-``0`` value streams one progress line
#: per completed/cached/failed job to stderr (CLI ``--progress``).
PROGRESS_ENV = "REPRO_PROGRESS"

#: The report of the most recent ``run_jobs`` call in this process.
_LAST_REPORT: SweepReport | None = None


def last_report() -> SweepReport | None:
    """The :class:`SweepReport` of the most recent ``run_jobs`` call."""
    return _LAST_REPORT


def reset_last_report() -> None:
    """Clear the last-report slot.

    ``_LAST_REPORT`` is a module global, so without a reset it leaks
    across logical sweeps in one process: a CLI command (or test) that
    runs no jobs would read the *previous* sweep's report and render
    stale counts.  The CLI calls this before dispatching every command.
    """
    global _LAST_REPORT
    _LAST_REPORT = None


def _job_label(job: SimJob) -> str:
    """A short human label for progress lines (full keys embed the whole
    HarnessConfig repr)."""
    what = job.app if job.kind == "single" else job.mix.name
    return f"{job.kind}:{what}:{job.mechanism}"


def _progress_printer():
    if os.environ.get(PROGRESS_ENV, "").strip() in ("", "0"):
        return None

    def emit(report: SweepReport, job: SimJob, status: str) -> None:
        done = report.completed + len(report.failures)
        print(
            f"[{done}/{report.total}] {status:>7} {_job_label(job)}",
            file=sys.stderr,
            flush=True,
        )

    return emit


@lru_cache(maxsize=1)
def pool_available() -> bool:
    """Whether this platform can spawn worker processes at all (the
    chaos tests skip pool scenarios where it cannot)."""
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            pool.submit(os.getpid).result()
        return True
    except Exception:
        return False


def run_jobs(
    jobs: list[SimJob],
    workers: int | None = None,
    chunksize: int = 1,
    cache: ResultCache | bool | None = None,
    policy: ExecPolicy | None = None,
    on_error: str | None = None,
    faults: FaultPlan | None = None,
    report: SweepReport | None = None,
) -> dict[JobKey, JobResult | JobFailure]:
    """Execute ``jobs`` (deduplicated) and return results by job key.

    ``workers <= 1`` runs serially in-process; ``workers > 1`` fans out
    over a process pool, falling back to serial execution when the
    platform cannot spawn worker processes (e.g. sandboxed CI).  Result
    content is identical either way — each job is a self-contained
    deterministic simulation — and the returned mapping lets callers
    assemble rows in declaration order, independent of completion order.

    ``cache`` activates the persistent cross-sweep result cache (see
    :mod:`repro.harness.cache`): pass a :class:`ResultCache`, ``True``
    for the default directory, ``False`` to force it off, or ``None`` to
    defer to the ``REPRO_CACHE`` environment variable.  Cached jobs are
    resolved before dispatch — a fully warm sweep performs zero
    simulations — and every fresh result is **checkpointed to the cache
    as it lands** (in the dispatching process; workers never touch the
    cache directory), so an interrupted sweep resumes from its completed
    jobs.

    ``policy`` (default: from the ``REPRO_RETRIES`` /
    ``REPRO_JOB_TIMEOUT`` / ``REPRO_ON_ERROR`` environment) governs
    retries, backoff, and per-job timeouts — see
    :class:`~repro.harness.retry.ExecPolicy`; ``on_error`` overrides its
    disposition.  ``faults`` injects deterministic chaos (tests only).
    ``report`` accumulates progress/failure counts across calls.
    ``chunksize`` is accepted for backward compatibility and ignored
    (dispatch is per-future so results can checkpoint incrementally).
    """
    del chunksize
    global _LAST_REPORT
    ordered = dedupe_jobs(jobs)
    pol = resolve_policy(policy, on_error)
    store = resolve_cache(cache)
    rep = report if report is not None else SweepReport()
    _LAST_REPORT = rep
    rep.total += len(ordered)
    progress = _progress_printer()
    start = time.monotonic()
    results: dict[JobKey, JobResult | JobFailure] = {}
    pending = ordered
    try:
        if store is not None:
            pending = []
            for job in ordered:
                load_start = time.perf_counter()
                hit = store.get(job)
                load_s = time.perf_counter() - load_start
                if hit is not None:
                    results[job.key] = hit
                    rep.cached += 1
                    rep.profiles.append(
                        JobProfile(
                            _job_label(job),
                            "cached",
                            wall_s=load_s,
                            events=hit.result.events_processed,
                        )
                    )
                    if progress:
                        progress(rep, job, "cached")
                else:
                    pending.append(job)

        def checkpoint(
            job: SimJob, result: JobResult, wall_s: float = 0.0, attempts: int = 1
        ) -> None:
            results[job.key] = result
            if store is not None:
                store.put(job, result)
            rep.executed += 1
            rep.profiles.append(
                JobProfile(
                    _job_label(job),
                    "executed",
                    wall_s=wall_s,
                    events=result.result.events_processed,
                    attempts=attempts,
                )
            )
            if progress:
                progress(rep, job, "done")

        failures = _execute_jobs(pending, workers, pol, faults, checkpoint, rep)
    except KeyboardInterrupt:
        # An interrupted sweep still reports what it checkpointed: the
        # final SweepReport line tells a resuming user how many jobs
        # are already in the cache before the interrupt propagates.
        if progress:
            rep.elapsed_s += time.monotonic() - start
            start = time.monotonic()  # the finally below adds ~0 more
            from repro.harness.reporting import format_sweep_report

            print(
                f"{format_sweep_report(rep)}\ninterrupted: "
                f"{rep.completed} completed job(s) checkpointed",
                file=sys.stderr,
                flush=True,
            )
        raise
    finally:
        rep.elapsed_s += time.monotonic() - start
    rep.failures.extend(failures)
    if failures:
        by_key = {job.key: job for job in pending}
        for failure in failures:
            rep.profiles.append(
                JobProfile(
                    _job_label(by_key[failure.key]),
                    "failed",
                    attempts=failure.attempts,
                )
            )
        if progress:
            for failure in failures:
                progress(rep, by_key[failure.key], failure.kind.upper())
        if pol.on_error == "raise":
            raise JobExecutionError(failures)
        for failure in failures:
            results[failure.key] = failure
    return results


class _PoolUnavailable(Exception):
    """Worker processes cannot be spawned (restricted environments);
    carries any failures already recorded before the pool died."""

    def __init__(self, failures: list[JobFailure] | None = None) -> None:
        super().__init__("process pool unavailable")
        self.failures = failures or []


def _execute_jobs(
    ordered: list[SimJob],
    workers: int | None,
    policy: ExecPolicy,
    faults: FaultPlan | None,
    checkpoint,
    report: SweepReport,
) -> list[JobFailure]:
    """Execute deduplicated jobs, over a pool when possible.

    Calls ``checkpoint(job, result)`` the moment each job lands; returns
    the :class:`JobFailure` records of jobs that exhausted the policy's
    retry ladder.
    """
    if not ordered:
        return []
    count = resolve_workers(workers)
    completed: set[JobKey] = set()

    def _checkpoint(
        job: SimJob, result: JobResult, wall_s: float = 0.0, attempts: int = 1
    ) -> None:
        completed.add(job.key)
        checkpoint(job, result, wall_s, attempts)

    if count > 1 and len(ordered) > 1:
        try:
            return _pool_execute(ordered, count, policy, faults, _checkpoint, report)
        except _PoolUnavailable as unavailable:
            # Process pools are unavailable (restricted environments):
            # fall back to the serial path, which produces identical
            # results, resuming from whatever already checkpointed.
            done = completed | {f.key for f in unavailable.failures}
            remaining = [job for job in ordered if job.key not in done]
            return unavailable.failures + _serial_execute(
                remaining, policy, faults, _checkpoint, report
            )
    return _serial_execute(ordered, policy, faults, _checkpoint, report)


# ----------------------------------------------------------------------
# The serial path.
# ----------------------------------------------------------------------
def _serial_execute(
    ordered: list[SimJob],
    policy: ExecPolicy,
    faults: FaultPlan | None,
    checkpoint,
    report: SweepReport,
) -> list[JobFailure]:
    """In-process execution with the same retry ladder as the pool path.

    Worker "crashes" degrade to :class:`SimulatedCrash` exceptions (the
    process *is* the sweep), and per-job timeouts cannot preempt a
    running simulation — injected hangs simply sleep.  Incremental
    checkpointing still holds: a ``KeyboardInterrupt`` propagates with
    every completed job already stored.
    """
    failures: list[JobFailure] = []
    for job in ordered:
        attempt = 1
        first_failure: float | None = None
        while True:
            try:
                if faults is not None:
                    faults.apply(job, attempt, in_process=True)
                attempt_start = time.perf_counter()
                result = execute_job(job)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                kind = "crash" if isinstance(exc, SimulatedCrash) else "error"
                if kind == "crash":
                    report.crashes += 1
                now = time.monotonic()
                if first_failure is None:
                    first_failure = now
                if not policy.may_retry(attempt, now - first_failure):
                    failures.append(
                        JobFailure(job.key, kind, attempt, repr(exc))
                    )
                    break
                report.retries += 1
                time.sleep(policy.backoff_delay(job.key, attempt))
                attempt += 1
            else:
                checkpoint(
                    job, result, time.perf_counter() - attempt_start, attempt
                )
                break
    return failures


# ----------------------------------------------------------------------
# The pool path.
# ----------------------------------------------------------------------
@dataclass
class _Attempt:
    """One queued/in-flight dispatch of a job."""

    job: SimJob
    attempt: int = 1
    ready_at: float = 0.0  # earliest re-dispatch time (backoff)
    first_failure: float | None = None
    deadline: float | None = None  # per-job wall-clock kill time
    dispatched_at: float = 0.0  # when this attempt entered the pool


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's workers (hung jobs cannot be
    cancelled; killing the processes is the only preemption there is)
    and release the executor without waiting."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_execute(
    ordered: list[SimJob],
    count: int,
    policy: ExecPolicy,
    faults: FaultPlan | None,
    checkpoint,
    report: SweepReport,
) -> list[JobFailure]:
    """Per-future dispatch over a process pool that survives worker
    death and enforces per-job timeouts.

    Invariants: at most ``count`` attempts are in flight (so a job's
    wall-clock deadline starts when a worker actually picks it up);
    results checkpoint the moment their future resolves; a broken pool
    is rebuilt and only the affected jobs re-enter the queue.  Raises
    :class:`_PoolUnavailable` if workers cannot be spawned at all.
    """
    failures: list[JobFailure] = []
    queue: deque[_Attempt] = deque(_Attempt(job) for job in ordered)
    inflight: dict = {}  # future -> _Attempt
    pool: ProcessPoolExecutor | None = None

    def retry_or_fail(entry: _Attempt, kind: str, message: str, now: float) -> None:
        if entry.first_failure is None:
            entry.first_failure = now
        if not policy.may_retry(entry.attempt, now - entry.first_failure):
            failures.append(
                JobFailure(entry.job.key, kind, entry.attempt, message)
            )
            return
        report.retries += 1
        queue.append(
            replace(
                entry,
                attempt=entry.attempt + 1,
                ready_at=now + policy.backoff_delay(entry.job.key, entry.attempt),
                deadline=None,
            )
        )

    try:
        while queue or inflight:
            now = time.monotonic()
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=min(count, max(1, len(queue)))
                )
                try:
                    # Probe before dispatching real work: worker
                    # processes spawn lazily, so "this platform cannot
                    # run process pools" only surfaces on first use.
                    pool.submit(os.getpid).result()
                except (OSError, PermissionError, RuntimeError):
                    raise _PoolUnavailable(failures) from None
            # Dispatch up to the worker count, skipping entries still
            # backing off.
            while queue and len(inflight) < count:
                index = next(
                    (i for i, e in enumerate(queue) if e.ready_at <= now), None
                )
                if index is None:
                    break
                entry = queue[index]
                del queue[index]
                try:
                    future = pool.submit(
                        _invoke_job, entry.job, entry.attempt, faults
                    )
                except (BrokenExecutor, OSError, RuntimeError):
                    # The pool broke between dispatches (a worker died
                    # while we were still submitting).  Requeue this
                    # entry untouched; in-flight futures surface the
                    # break below, or we rebuild immediately.
                    queue.appendleft(entry)
                    if not inflight:
                        _kill_pool(pool)
                        pool = None
                    break
                entry.deadline = (
                    now + policy.job_timeout_s
                    if policy.job_timeout_s is not None
                    else None
                )
                entry.dispatched_at = now
                inflight[future] = entry
            if pool is None:
                continue
            if not inflight:
                # Everything queued is backing off: sleep to the next
                # ready time.
                time.sleep(max(0.0, min(e.ready_at for e in queue) - now))
                continue
            wakeups = [e.deadline for e in inflight.values() if e.deadline is not None]
            wakeups += [e.ready_at for e in queue if e.ready_at > now]
            timeout = max(0.0, min(wakeups) - now) if wakeups else None
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in done:
                entry = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenExecutor as exc:
                    # BrokenProcessPool: a worker died.  Every in-flight
                    # job is collateral — the pool cannot say which one
                    # crashed it, so all of them consume a retry.
                    pool_broken = True
                    report.crashes += 1
                    retry_or_fail(entry, "crash", repr(exc), now)
                except Exception as exc:
                    retry_or_fail(entry, "error", repr(exc), now)
                else:
                    # Pool wall-clock is dispatch-to-result: it includes
                    # queue-to-worker latency, which is what the sweep
                    # actually paid for the job.
                    checkpoint(
                        entry.job, result, now - entry.dispatched_at, entry.attempt
                    )
            if pool_broken:
                for future, entry in inflight.items():
                    report.crashes += 1
                    retry_or_fail(entry, "crash", "worker pool died mid-run", now)
                inflight.clear()
                _kill_pool(pool)
                pool = None
                continue
            expired = {
                future: entry
                for future, entry in inflight.items()
                if entry.deadline is not None and now >= entry.deadline
            }
            if expired:
                # The only way to preempt a hung worker is to kill the
                # pool; timed-out jobs consume a retry, innocent
                # in-flight jobs are re-queued without consuming one.
                for entry in expired.values():
                    report.timeouts += 1
                    retry_or_fail(
                        entry,
                        "timeout",
                        f"exceeded job timeout of {policy.job_timeout_s}s "
                        f"(attempt {entry.attempt})",
                        now,
                    )
                for future, entry in inflight.items():
                    if future not in expired:
                        queue.append(replace(entry, ready_at=now, deadline=None))
                inflight.clear()
                _kill_pool(pool)
                pool = None
    finally:
        if pool is not None:
            if inflight:
                _kill_pool(pool)  # interrupted mid-sweep: do not hang
            else:
                pool.shutdown()
    return failures


# ----------------------------------------------------------------------
# Key helpers shared by the experiment drivers.
# ----------------------------------------------------------------------
def single_key(
    hcfg: HarnessConfig,
    app: str,
    slot: int,
    mechanism: str,
    pinned: int | None = None,
    threads: int = DEFAULT_MIX_THREADS,
) -> JobKey:
    """Key for an application running alone (slot-seeded; ``pinned``
    and ``threads`` identify the channel-affine/stripe-layout variant
    of the trace — mixes of different widths must not share alone
    runs)."""
    return ("single", hcfg, app, slot, mechanism, pinned, threads)


def mix_key(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    mechanism: str,
    governor: GovernorSpec | None = None,
) -> JobKey:
    """Key for a multiprogrammed mix under a mechanism.

    Covers every field that defines the simulation — ``has_attack``
    changes core parameters and completion targets, ``attack_seed``
    selects the attack trace, ``pinned_channels`` the channel layout,
    and ``governor`` the OS policy above the memory system — so mixes
    differing only there must not share a key.
    """
    return (
        "mix",
        hcfg,
        mix.name,
        mix.app_names,
        mix.has_attack,
        mix.attack_seed,
        mix.pinned_channels,
        mechanism,
        governor,
    )


def single_job(
    hcfg: HarnessConfig,
    app: str,
    mechanism: str = "none",
    slot: int = 0,
    extract: tuple[str, ...] = (),
    pinned: int | None = None,
    threads: int = DEFAULT_MIX_THREADS,
) -> SimJob:
    return SimJob(
        key=single_key(hcfg, app, slot, mechanism, pinned, threads),
        hcfg=hcfg,
        kind="single",
        mechanism=mechanism,
        app=app,
        slot=slot,
        pinned=pinned,
        threads=threads,
        extract=extract,
    )


def mix_job(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    mechanism: str = "none",
    extract: tuple[str, ...] = (),
    governor: GovernorSpec | None = None,
) -> SimJob:
    return SimJob(
        key=mix_key(hcfg, mix, mechanism, governor),
        hcfg=hcfg,
        kind="mix",
        mechanism=mechanism,
        mix=mix,
        governor=governor,
        extract=extract,
    )
