"""Job-based parallel experiment execution.

Every paper figure this repository reproduces is a sweep of *independent*
simulations — (app × mechanism), (mix × scenario × mechanism),
(NRH point × mechanism).  This module turns those sweeps into explicit
job lists that fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :class:`SimJob` — a picklable, self-contained description of one
  simulation (configuration + workload + mechanism + which mechanism
  statistics to extract).  Jobs carry a deterministic ``key``; jobs with
  equal keys are executed once and shared (this is how the Runner's
  alone-IPC cache generalizes across processes: every "app running
  alone on the baseline" run is a job keyed by (config, app, slot) and
  deduplicated across mixes, scenarios, and mechanisms).
* :func:`run_jobs` — executes a job list, in worker processes when
  ``workers > 1`` and serially otherwise, and returns results keyed by
  job key.  Result assembly is therefore order-independent: drivers
  iterate their declared structure, not the completion order, so serial
  and parallel execution produce **identical** rows.  Each job runs a
  fully self-contained simulation with its own deterministic RNGs, so
  results are also bit-identical across worker counts.

Drivers in :mod:`repro.harness.experiments` follow a declare-jobs →
execute → assemble-rows shape on top of these primitives.

On top of in-batch deduplication, :func:`run_jobs` can consult the
persistent cross-sweep result cache (:mod:`repro.harness.cache`): jobs
whose key + source fingerprint match a stored entry are returned from
disk before any dispatch, so re-running an unchanged sweep performs
zero simulations and yields bit-identical rows.

Mechanism objects hold closures (the adjacency oracle) and cannot cross
a process boundary; anything a driver needs from the mechanism after
the run is declared up front via ``SimJob.extract`` and computed inside
the worker (see :data:`EXTRACTORS`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.energy.drampower import EnergyBreakdown
from repro.harness.cache import CACHEABLE_EXTRAS, ResultCache, resolve_cache
from repro.harness.runner import HarnessConfig, Runner, RunOutcome
from repro.os.spec import GovernorSpec
from repro.sim.stats import SimResult
from repro.utils.aggregate import merge_fields
from repro.workloads.mixes import DEFAULT_MIX_THREADS, WorkloadMix

#: Environment variable consulted when a driver does not pass an
#: explicit worker count.
WORKERS_ENV = "REPRO_WORKERS"

JobKey = tuple


def _extract_delay_stats(outcome: RunOutcome):
    """BlockHammer's Section 8.4 delay statistics, merged over the
    per-channel mechanism instances (counter sums, delay-list concat)."""
    parts = [mechanism.delay_stats() for mechanism in outcome.mechanisms]
    if len(parts) == 1:
        return parts[0]
    from repro.core.rowblocker import DelayStats

    merged = DelayStats()
    for part in parts:
        merge_fields(merged, part)  # counters sum, delay lists concat
    return merged


def _extract_thread_rhli(outcome: RunOutcome) -> list[float | None]:
    """Per-thread maximum RHLI at end of run (Section 3.2.1), maxed over
    the per-channel mechanism instances (the paper's RHLI is the worst
    exposure anywhere in the system).  Threads report ``None`` when no
    channel's mechanism tracks RHLI (reactive baselines in the governor
    sweeps) — the BlockHammer-family sweeps always get floats."""
    out: list[float | None] = []
    for thread in range(len(outcome.result.threads)):
        values = [
            mechanism.thread_max_rhli(thread)
            for mechanism in outcome.mechanisms
            if hasattr(mechanism, "thread_max_rhli")
        ]
        out.append(max(values) if values else None)
    return out


def _extract_channel_attribution(outcome: RunOutcome) -> list[dict]:
    """Mechanism-side per-channel attribution rows (the BreakHammer
    direction: localize which channel accrues RHLI and throttling).

    One dict per channel, straight from the mechanism's OS telemetry
    snapshot (:meth:`~repro.mitigations.base.MitigationMechanism.os_telemetry`
    — the same duck-typed interface the OS governor samples):
    ``thread_rhli`` (per-thread maximum RHLI on that channel's
    mechanism instance, ``None`` for mechanisms without RHLI tracking),
    ``blacklisted_acts`` (AttackThrottler events), and the RowBlocker
    delay counters (``total_acts``/``delayed_acts``/
    ``false_positive_acts``; zero for mechanisms without delay stats).
    Controller-side throttle events (blocked injections) live on
    :class:`~repro.sim.stats.ChannelResult` instead.  Aggregation
    contract: counters sum across channels, RHLI maxes — mirrored by
    :func:`_extract_thread_rhli` and asserted by the attribution tests.
    """
    rows = []
    for channel, mechanism in enumerate(outcome.mechanisms):
        telemetry = mechanism.os_telemetry()
        rows.append(
            {
                "channel": channel,
                "thread_rhli": telemetry.thread_rhli,
                "blacklisted_acts": telemetry.blacklisted_acts,
                "total_acts": telemetry.total_acts,
                "delayed_acts": telemetry.delayed_acts,
                "false_positive_acts": telemetry.false_positive_acts,
            }
        )
    return rows


def _extract_governor_actions(outcome: RunOutcome) -> dict | None:
    """The OS governor's action record (``None`` for ungoverned runs):
    review-epoch count, kill/migration logs, and quota-scale state —
    plain lists of scalars so the result cache round-trips it exactly."""
    if outcome.governor is None:
        return None
    return outcome.governor.actions_summary()


#: Named, picklable-result extractors applied to the finished run
#: inside the worker process.
EXTRACTORS = {
    "delay_stats": _extract_delay_stats,
    "thread_rhli": _extract_thread_rhli,
    "channel_attribution": _extract_channel_attribution,
    "governor_actions": _extract_governor_actions,
}

# Every extractor must have a cache codec, or jobs requesting it would
# be silently uncacheable (each re-run would miss and re-simulate).
# Fail loudly at import time instead.
_UNCACHEABLE = set(EXTRACTORS) - CACHEABLE_EXTRAS
if _UNCACHEABLE:
    raise RuntimeError(
        f"extractors without a cache codec in repro.harness.cache: "
        f"{sorted(_UNCACHEABLE)}"
    )


@dataclass(frozen=True)
class SimJob:
    """One independent simulation in a sweep.

    ``kind`` selects the workload shape:

    * ``"single"`` — one benign application (``app``) running alone,
      seeded as mix slot ``slot`` (slot 0 reproduces ``Runner.run_single``;
      other slots reproduce the alone-IPC runs used by multiprogram
      metrics).  ``pinned`` confines the working set to one memory
      channel and ``threads`` is the mirrored mix's width (row-stripe
      stride), matching the slot of the mix being normalized.
    * ``"mix"`` — a multiprogrammed :class:`WorkloadMix`.

    ``key`` must be hashable, deterministic, and unique per distinct
    simulation; jobs with equal keys are deduplicated by
    :func:`run_jobs` (their ``extract`` tuples are unioned).
    """

    key: JobKey
    hcfg: HarnessConfig
    kind: str
    mechanism: str = "none"
    app: str | None = None
    slot: int = 0
    pinned: int | None = None
    threads: int = DEFAULT_MIX_THREADS
    mix: WorkloadMix | None = None
    #: OS governor configuration for this run (None = ungoverned); a
    #: frozen spec rather than a live Governor so the job stays
    #: picklable and the cache can key on its repr.
    governor: GovernorSpec | None = None
    extract: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("single", "mix"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "single" and self.app is None:
            raise ValueError("single jobs need an app name")
        if self.kind == "mix" and self.mix is None:
            raise ValueError("mix jobs need a WorkloadMix")
        if self.kind == "single" and self.governor is not None:
            raise ValueError("governors apply to mix jobs only")
        for name in self.extract:
            if name not in EXTRACTORS:
                raise ValueError(f"unknown extractor {name!r}")


@dataclass
class JobResult:
    """The picklable outcome of one :class:`SimJob`."""

    key: JobKey
    mechanism_name: str
    result: SimResult
    energy: EnergyBreakdown
    extras: dict = field(default_factory=dict)

    @property
    def bitflips(self) -> int:
        return self.result.total_bitflips


# ----------------------------------------------------------------------
# Job execution (runs inside worker processes for parallel sweeps).
# ----------------------------------------------------------------------
#: Per-process Runner cache: a worker executes many jobs against the
#: same configuration; rebuilding the Runner per job is pure waste.
_RUNNERS: dict[HarnessConfig, Runner] = {}


def _runner_for(hcfg: HarnessConfig) -> Runner:
    runner = _RUNNERS.get(hcfg)
    if runner is None:
        runner = Runner(hcfg)
        _RUNNERS[hcfg] = runner
    return runner


#: Simulations actually executed in this process (cache hits do not
#: count).  Tests and the perf smoke assert a warm-cache sweep leaves
#: this untouched.
JOB_EXECUTIONS = 0


def job_executions() -> int:
    """Simulations executed in this process so far."""
    return JOB_EXECUTIONS


def execute_job(job: SimJob) -> JobResult:
    """Run one job to completion (callable in any process)."""
    global JOB_EXECUTIONS
    JOB_EXECUTIONS += 1
    runner = _runner_for(job.hcfg)
    if job.kind == "single":
        outcome = runner.run_single(
            job.app,
            job.mechanism,
            slot=job.slot,
            pinned=job.pinned,
            threads=job.threads,
        )
    else:
        outcome = runner.run_mix(job.mix, job.mechanism, governor=job.governor)
    extras = {name: EXTRACTORS[name](outcome) for name in job.extract}
    return JobResult(
        key=job.key,
        mechanism_name=outcome.mechanism_name,
        result=outcome.result,
        energy=outcome.energy,
        extras=extras,
    )


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------
def resolve_workers(workers: int | None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``,
    else 1 (serial)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    return max(1, workers)


def dedupe_jobs(jobs: list[SimJob]) -> list[SimJob]:
    """Unique jobs in first-occurrence order.

    Jobs sharing a key must describe the same simulation; their
    ``extract`` tuples are unioned so one run serves every consumer.
    """
    unique: dict[JobKey, SimJob] = {}
    for job in jobs:
        existing = unique.get(job.key)
        if existing is None:
            unique[job.key] = job
            continue
        if replace(existing, extract=()) != replace(job, extract=()):
            raise ValueError(f"job key {job.key!r} reused for a different simulation")
        if job.extract != existing.extract:
            merged = existing.extract + tuple(
                name for name in job.extract if name not in existing.extract
            )
            unique[job.key] = replace(existing, extract=merged)
    return list(unique.values())


def run_jobs(
    jobs: list[SimJob],
    workers: int | None = None,
    chunksize: int = 1,
    cache: ResultCache | bool | None = None,
) -> dict[JobKey, JobResult]:
    """Execute ``jobs`` (deduplicated) and return results by job key.

    ``workers <= 1`` runs serially in-process; ``workers > 1`` fans out
    over a process pool, falling back to serial execution when the
    platform cannot spawn worker processes (e.g. sandboxed CI).  Result
    content is identical either way — each job is a self-contained
    deterministic simulation — and the returned mapping lets callers
    assemble rows in declaration order, independent of completion order.

    ``cache`` activates the persistent cross-sweep result cache (see
    :mod:`repro.harness.cache`): pass a :class:`ResultCache`, ``True``
    for the default directory, ``False`` to force it off, or ``None`` to
    defer to the ``REPRO_CACHE`` environment variable.  Cached jobs are
    resolved before dispatch — a fully warm sweep performs zero
    simulations — and fresh results are stored after execution (in the
    dispatching process; workers never touch the cache directory).
    """
    ordered = dedupe_jobs(jobs)
    store = resolve_cache(cache)
    results: dict[JobKey, JobResult] = {}
    pending = ordered
    if store is not None:
        pending = []
        for job in ordered:
            hit = store.get(job)
            if hit is not None:
                results[job.key] = hit
            else:
                pending.append(job)
    fresh = _execute_jobs(pending, workers, chunksize)
    if store is not None:
        for job in pending:
            store.put(job, fresh[job.key])
    results.update(fresh)
    return results


def _execute_jobs(
    ordered: list[SimJob], workers: int | None, chunksize: int
) -> dict[JobKey, JobResult]:
    """Execute deduplicated jobs, over a pool when possible."""
    if not ordered:
        return {}
    count = resolve_workers(workers)
    if count > 1 and len(ordered) > 1:
        spawned = False
        try:
            with ProcessPoolExecutor(max_workers=min(count, len(ordered))) as pool:
                # Probe before dispatching real work: worker processes
                # spawn lazily, so "this platform cannot run process
                # pools" (sandboxed CI) only surfaces on first use.
                pool.submit(os.getpid).result()
                spawned = True
                results = list(pool.map(execute_job, ordered, chunksize=chunksize))
            return {res.key: res for res in results}
        except (OSError, PermissionError, RuntimeError):
            if spawned:
                # Workers ran: this is a genuine failure inside the
                # sweep (a job raised, or a worker died mid-run).
                # Surface it rather than silently rerunning hours of
                # work serially.
                raise
            # Process pools are unavailable (restricted environments):
            # fall back to the serial path, which produces identical
            # results.
    return {job.key: execute_job(job) for job in ordered}


# ----------------------------------------------------------------------
# Key helpers shared by the experiment drivers.
# ----------------------------------------------------------------------
def single_key(
    hcfg: HarnessConfig,
    app: str,
    slot: int,
    mechanism: str,
    pinned: int | None = None,
    threads: int = DEFAULT_MIX_THREADS,
) -> JobKey:
    """Key for an application running alone (slot-seeded; ``pinned``
    and ``threads`` identify the channel-affine/stripe-layout variant
    of the trace — mixes of different widths must not share alone
    runs)."""
    return ("single", hcfg, app, slot, mechanism, pinned, threads)


def mix_key(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    mechanism: str,
    governor: GovernorSpec | None = None,
) -> JobKey:
    """Key for a multiprogrammed mix under a mechanism.

    Covers every field that defines the simulation — ``has_attack``
    changes core parameters and completion targets, ``attack_seed``
    selects the attack trace, ``pinned_channels`` the channel layout,
    and ``governor`` the OS policy above the memory system — so mixes
    differing only there must not share a key.
    """
    return (
        "mix",
        hcfg,
        mix.name,
        mix.app_names,
        mix.has_attack,
        mix.attack_seed,
        mix.pinned_channels,
        mechanism,
        governor,
    )


def single_job(
    hcfg: HarnessConfig,
    app: str,
    mechanism: str = "none",
    slot: int = 0,
    extract: tuple[str, ...] = (),
    pinned: int | None = None,
    threads: int = DEFAULT_MIX_THREADS,
) -> SimJob:
    return SimJob(
        key=single_key(hcfg, app, slot, mechanism, pinned, threads),
        hcfg=hcfg,
        kind="single",
        mechanism=mechanism,
        app=app,
        slot=slot,
        pinned=pinned,
        threads=threads,
        extract=extract,
    )


def mix_job(
    hcfg: HarnessConfig,
    mix: WorkloadMix,
    mechanism: str = "none",
    extract: tuple[str, ...] = (),
    governor: GovernorSpec | None = None,
) -> SimJob:
    return SimJob(
        key=mix_key(hcfg, mix, mechanism, governor),
        hcfg=hcfg,
        kind="mix",
        mechanism=mechanism,
        mix=mix,
        governor=governor,
        extract=extract,
    )
