"""Retry and execution policy for the fault-tolerant sweep executor.

:class:`ExecPolicy` bundles everything :func:`repro.harness.parallel.run_jobs`
needs to survive worker failures without sacrificing determinism:

* **attempt budget** — each job may execute at most ``attempts`` times
  (first run + retries).  Retried jobs are bit-identical to first-try
  jobs because every :class:`~repro.harness.parallel.SimJob` is a
  self-contained deterministic simulation.
* **bounded exponential backoff with deterministic jitter** — the delay
  before attempt *n+1* is ``min(backoff_max_s, backoff_base_s * 2**(n-1))``
  scaled by a jitter fraction derived from ``sha256(key, attempt)``, so
  two sweeps replaying the same failure wait the same amount of time
  (no wall-clock or RNG dependence).
* **retry deadline** — once a job has been failing for
  ``retry_deadline_s`` seconds it stops retrying even with budget left.
* **per-job wall-clock timeout** — on the process-pool path a job
  running past ``job_timeout_s`` has its worker killed and re-enters
  the retry ladder (kill → retry → … → skip/raise).  The serial path
  cannot preempt a running simulation and therefore does not enforce
  timeouts (injected hangs simply sleep there).
* **failure disposition** — ``on_error="raise"`` (default) raises
  :class:`~repro.harness.parallel.JobExecutionError` after the sweep
  drains; ``on_error="skip"`` returns structured
  :class:`~repro.harness.parallel.JobFailure` records instead, which
  the drivers render as ``-`` rows.

Environment variables (used when no explicit policy is passed; the CLI
flags ``--retries`` / ``--job-timeout`` / ``--on-error`` set them):

* ``REPRO_RETRIES`` — retries after the first attempt (default 2, i.e.
  3 attempts total);
* ``REPRO_JOB_TIMEOUT`` — per-job timeout in seconds (default: none);
* ``REPRO_ON_ERROR`` — ``raise`` or ``skip``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass

#: Environment variables consulted by :func:`resolve_policy`.
RETRIES_ENV = "REPRO_RETRIES"
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
ON_ERROR_ENV = "REPRO_ON_ERROR"

#: Valid ``on_error`` dispositions.
ON_ERROR_MODES = ("raise", "skip")

#: Default retry count (attempts = retries + 1).
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class ExecPolicy:
    """Execution policy for one ``run_jobs`` sweep (see module doc)."""

    attempts: int = DEFAULT_RETRIES + 1
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    retry_deadline_s: float | None = None
    jitter: float = 0.25
    job_timeout_s: float | None = None
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be > 0")
        if self.retry_deadline_s is not None and self.retry_deadline_s <= 0:
            raise ValueError("retry_deadline_s must be > 0")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )

    # ------------------------------------------------------------------
    def backoff_delay(self, key, attempt: int) -> float:
        """Delay in seconds before re-dispatching ``key`` after failed
        attempt number ``attempt`` (1-based).  Deterministic: the jitter
        fraction is a pure function of ``(key, attempt)``."""
        base = min(self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1)))
        return base * (1.0 + self.jitter * jitter_fraction(key, attempt))

    def may_retry(self, attempt: int, failing_for_s: float) -> bool:
        """Whether a job that just failed its ``attempt``-th attempt and
        has been failing for ``failing_for_s`` seconds gets another."""
        if attempt >= self.attempts:
            return False
        if self.retry_deadline_s is not None and failing_for_s >= self.retry_deadline_s:
            return False
        return True


def jitter_fraction(key, attempt: int) -> float:
    """A deterministic fraction in ``[0, 1)`` from ``(key, attempt)``.

    Uses sha256 rather than ``hash()`` (which is salted per process) so
    retried jobs back off identically across runs and machines.
    """
    digest = hashlib.sha256(f"{key!r}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    return value if value > 0 else None


def resolve_policy(
    policy: ExecPolicy | None, on_error: str | None = None
) -> ExecPolicy:
    """Normalize a policy argument: an explicit :class:`ExecPolicy` is
    used as-is, ``None`` builds one from the ``REPRO_*`` environment.
    ``on_error``, when given, overrides the policy's disposition (the
    ``run_jobs(..., on_error=...)`` convenience)."""
    if policy is None:
        policy = ExecPolicy(
            attempts=_env_int(RETRIES_ENV, DEFAULT_RETRIES) + 1,
            job_timeout_s=_env_float(JOB_TIMEOUT_ENV),
            on_error=os.environ.get(ON_ERROR_ENV, "").strip() or "raise",
        )
    if on_error is not None:
        policy = dataclasses.replace(policy, on_error=on_error)
    return policy
