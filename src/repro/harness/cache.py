"""Persistent cross-sweep result cache.

Every :class:`~repro.harness.parallel.SimJob` is a pure function of its
``key`` (configuration + workload + mechanism) and of the simulator
source code.  This module stores finished :class:`JobResult`\\ s as JSON
on disk, content-addressed by ``sha256(source_fingerprint + repr(key))``,
so re-running an unchanged sweep (``fig4``/``fig5``/``chansweep``/
``fig6``/``rhli``/``sec84``/``table8``) performs **zero** simulations
and returns bit-identical rows — floats survive the JSON round-trip
exactly (``repr`` shortest-round-trip encoding).

Invalidation is automatic and conservative: the fingerprint hashes every
``repro`` source file, so *any* simulator change misses the whole cache.
Manual invalidation is ``rm -rf .repro_cache/`` (or pointing
``--cache-dir`` / ``REPRO_CACHE`` somewhere fresh).

Activation (see :func:`resolve_cache`):

* programmatic — pass a :class:`ResultCache` (or ``True``) to
  ``run_jobs``/the experiment drivers;
* CLI — ``--cache`` / ``--cache-dir DIR`` / ``--no-cache``;
* environment — ``REPRO_CACHE=1`` (default directory), ``REPRO_CACHE=DIR``
  (explicit directory), ``REPRO_CACHE=0``/unset (off).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from functools import lru_cache

from repro.dram.device import CommandCounts
from repro.dram.rowhammer import BitFlip
from repro.energy.drampower import EnergyBreakdown
from repro.mem.controller import ThreadMemStats
from repro.sim.stats import ChannelResult, SimResult, ThreadResult

#: Environment variable controlling cache activation (see module doc).
CACHE_ENV = "REPRO_CACHE"

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the JSON layout changes (old entries are ignored).
_FORMAT = 1


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Hash of every ``repro`` source file (path + content).

    Computed once per process; any simulator change produces a new
    fingerprint and therefore a clean cache miss for every job.
    """
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# JSON codecs.  Encoding is a recursive dataclasses.asdict; decoding
# reconstructs the exact dataclass tree (field-for-field, so cached rows
# compare equal to freshly-simulated ones).
# ----------------------------------------------------------------------
def _decode_thread(data: dict) -> ThreadResult:
    return ThreadResult(
        thread=data["thread"],
        instructions=data["instructions"],
        finish_time_ns=data["finish_time_ns"],
        ipc=data["ipc"],
        mem=ThreadMemStats(**data["mem"]),
        mem_per_channel=[ThreadMemStats(**m) for m in data["mem_per_channel"]],
    )


def _decode_channel(data: dict) -> ChannelResult:
    return ChannelResult(
        channel=data["channel"],
        counts=CommandCounts(**data["counts"]),
        active_time_ns=data["active_time_ns"],
        bitflips=data["bitflips"],
        refreshes=data["refreshes"],
        victim_refreshes=data["victim_refreshes"],
        commands_issued=data["commands_issued"],
        refresh_phase_ns=data["refresh_phase_ns"],
        blocked_injections=data["blocked_injections"],
    )


def _decode_result(data: dict) -> SimResult:
    return SimResult(
        mitigation=data["mitigation"],
        threads=[_decode_thread(t) for t in data["threads"]],
        elapsed_ns=data["elapsed_ns"],
        counts=CommandCounts(**data["counts"]),
        active_time_ns=data["active_time_ns"],
        bitflips=[BitFlip(**b) for b in data["bitflips"]],
        refreshes=data["refreshes"],
        victim_refreshes=data["victim_refreshes"],
        commands_issued=data["commands_issued"],
        events_processed=data["events_processed"],
        channels=[_decode_channel(c) for c in data["channels"]],
    )


def _decode_delay_stats(data: dict):
    from repro.core.rowblocker import DelayStats

    return DelayStats(**data)


#: Extras codecs by extractor name: (encode, decode).  Every extractor
#: in :data:`repro.harness.parallel.EXTRACTORS` must be registered here
#: — enforced by an import-time check in that module — otherwise jobs
#: requesting it would be silently uncacheable.
_EXTRA_CODECS = {
    "thread_rhli": (lambda v: v, lambda v: v),
    "delay_stats": (dataclasses.asdict, _decode_delay_stats),
    # Plain lists/dicts of JSON scalars: floats survive the round-trip
    # exactly (repr shortest-round-trip encoding), so identity works.
    "channel_attribution": (lambda v: v, lambda v: v),
    # Governor.actions_summary() is JSON-safe by contract (lists of
    # scalars, string keys); ungoverned runs store None.
    "governor_actions": (lambda v: v, lambda v: v),
}

#: Extractor names the cache can round-trip (see the check in
#: ``repro.harness.parallel``).
CACHEABLE_EXTRAS = frozenset(_EXTRA_CODECS)


class ResultCache:
    """Content-addressed on-disk store of finished :class:`JobResult`\\ s.

    One JSON file per job, named by
    ``sha256(fingerprint | repr(job.key))``; the stored key repr is
    re-verified on load so a truncated-hash collision can never serve the
    wrong simulation.

    ``max_entries`` bounds the store (ROADMAP: entries used to be kept
    forever): after every ``put`` the least-recently-used files beyond
    the cap are deleted.  Recency is file mtime — refreshed on every
    hit — so a warm working set survives while dead fingerprints and
    abandoned sweeps age out.  ``None`` (default) keeps the store
    unbounded; the CLI exposes ``--cache-max-entries`` and the
    ``REPRO_CACHE_MAX_ENTRIES`` environment variable.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        fingerprint: str | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("cache max_entries must be >= 1")
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, job) -> pathlib.Path:
        name = hashlib.sha256(
            f"{self.fingerprint}|{job.key!r}".encode()
        ).hexdigest()[:40]
        return self.root / f"{name}.json"

    def get(self, job):
        """The cached :class:`JobResult` for ``job``, or None.

        A hit requires the fingerprint and key to match exactly and the
        stored extras to cover everything ``job.extract`` requests.
        Corrupt entries — truncated or garbage JSON, or JSON whose
        decode blows up — are **quarantined** (renamed to ``*.corrupt``)
        and counted in :attr:`corrupt`, so they stop being re-parsed on
        every run and the job cleanly re-simulates.
        """
        from repro.harness.parallel import JobResult

        path = self._path(job)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if (
            data.get("format") != _FORMAT
            or data.get("fingerprint") != self.fingerprint
            or data.get("key") != repr(job.key)
            or not set(job.extract) <= set(data.get("extras", {}))
        ):
            self.misses += 1
            return None
        try:
            extras = {
                name: _EXTRA_CODECS[name][1](value)
                for name, value in data["extras"].items()
                if name in _EXTRA_CODECS
            }
            result = JobResult(
                key=job.key,
                mechanism_name=data["mechanism_name"],
                result=_decode_result(data["result"]),
                energy=EnergyBreakdown(**data["energy"]),
                extras=extras,
            )
        except (KeyError, TypeError, ValueError):
            # Schema-valid envelope around a mangled payload (e.g. a
            # partially-overwritten entry): same treatment as bad JSON.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU touch: a hit is a use
        except OSError:
            pass
        return result

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry out of the lookup namespace (best
        effort: a concurrent deletion just means it is already gone)."""
        self.corrupt += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, job, result) -> None:
        """Store a finished job (atomic write; unknown extras are
        skipped rather than failing the run)."""
        extras = {
            name: _EXTRA_CODECS[name][0](value)
            for name, value in result.extras.items()
            if name in _EXTRA_CODECS
        }
        data = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "key": repr(job.key),
            "mechanism_name": result.mechanism_name,
            "result": dataclasses.asdict(result.result),
            "energy": dataclasses.asdict(result.energy),
            "extras": extras,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(job)
        # Per-writer temp name: concurrent processes sharing a cache
        # directory must never interleave writes into one temp file.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(data))
        os.replace(tmp, path)
        self.stores += 1
        if self.max_entries is not None:
            self._evict()

    def _evict(self) -> None:
        """Delete least-recently-used entries beyond ``max_entries``.

        Best-effort by design: a concurrently-deleted file is skipped,
        and two writers sharing a directory both converge on the cap.
        """
        try:
            entries = [
                (path.stat().st_mtime, path) for path in self.root.glob("*.json")
            ]
        except OSError:
            return
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda pair: pair[0])
        for _, path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:
                pass


#: Environment variable bounding the cache entry count (see
#: ``ResultCache.max_entries``); applies whenever :func:`resolve_cache`
#: constructs the cache itself.
CACHE_MAX_ENV = "REPRO_CACHE_MAX_ENTRIES"


def _env_max_entries() -> int | None:
    env = os.environ.get(CACHE_MAX_ENV, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"{CACHE_MAX_ENV} must be an integer, got {env!r}") from None
    return value if value > 0 else None


def resolve_cache(cache) -> ResultCache | None:
    """Normalize a cache argument into a :class:`ResultCache` or None.

    ``cache`` may be a ResultCache (used as-is), ``True`` (default
    directory), ``False`` (explicitly off, overriding the environment),
    or ``None`` (defer to ``REPRO_CACHE``: ``1`` → default directory, a
    path → that directory, ``0``/empty/unset → off).  Whenever this
    function builds the cache itself, ``REPRO_CACHE_MAX_ENTRIES`` sets
    the LRU entry cap.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache(DEFAULT_CACHE_DIR, max_entries=_env_max_entries())
    if cache is False:
        return None
    env = os.environ.get(CACHE_ENV, "").strip()
    if not env or env == "0":
        return None
    if env == "1":
        return ResultCache(DEFAULT_CACHE_DIR, max_entries=_env_max_entries())
    return ResultCache(env, max_entries=_env_max_entries())
