"""Deterministic chaos injection for the sweep executor.

A :class:`FaultPlan` is a picklable, declarative description of which
jobs misbehave, how, and on which attempts.  The executor threads the
plan into every job invocation (:func:`repro.harness.parallel._invoke_job`),
so faults fire *inside worker processes* exactly like real failures:

* ``"crash"``  — the worker process dies (``os._exit``), breaking the
  process pool mid-sweep.  On the in-process serial path — where
  killing the process would kill the sweep itself — it degrades to
  raising :class:`SimulatedCrash`, which exercises the same retry
  ladder.
* ``"hang"``   — the job sleeps ``seconds`` before running, tripping
  the per-job wall-clock timeout (kill → retry → … → skip).
* ``"delay"``  — the job sleeps ``seconds`` and then *completes*
  normally: a late result, not a failure.
* ``"error"``  — the job raises :class:`InjectedFault` (a transient
  in-job exception; retried like any other).
* ``"interrupt"`` — the job raises ``KeyboardInterrupt``, simulating a
  user interrupt mid-sweep (used to test checkpoint/resume: completed
  jobs must already be in the result cache).

Faults are matched by a substring of ``repr(job.key)`` (keys embed the
app/mix name and mechanism, so ``"403.gcc"`` or ``"blockhammer"`` are
natural selectors) plus an optional 1-based attempt tuple — a fault on
``attempts=(1,)`` fires once and lets the retry succeed, which is how
the chaos tests prove retried sweeps are bit-identical to fault-free
ones.

Cache-corruption injectors (:func:`corrupt_cache_entry`) damage
persistent :class:`~repro.harness.cache.ResultCache` entries on disk to
exercise the quarantine path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Valid fault actions.
FAULT_ACTIONS = ("crash", "hang", "delay", "error", "interrupt")

#: Exit code used by injected worker crashes (visible in pool logs).
CRASH_EXIT_CODE = 42


class InjectedFault(RuntimeError):
    """A transient in-job failure raised by an ``"error"`` fault."""


class SimulatedCrash(RuntimeError):
    """The in-process stand-in for a worker death (serial path only)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *which* jobs (``match`` — substring of
    ``repr(job.key)``), *when* (``attempts`` — 1-based attempt numbers,
    ``None`` = every attempt), and *what* (``action`` + ``seconds``)."""

    match: str
    action: str
    attempts: tuple[int, ...] | None = (1,)
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {FAULT_ACTIONS}"
            )
        if self.attempts is not None and any(a < 1 for a in self.attempts):
            raise ValueError("fault attempts are 1-based")
        if self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")

    def applies(self, job, attempt: int) -> bool:
        if self.match not in repr(job.key):
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s; the first spec matching
    ``(job, attempt)`` fires.  Frozen and built from plain scalars so it
    pickles across the process boundary unchanged."""

    specs: tuple[FaultSpec, ...]

    def spec_for(self, job, attempt: int) -> FaultSpec | None:
        for spec in self.specs:
            if spec.applies(job, attempt):
                return spec
        return None

    def apply(self, job, attempt: int, in_process: bool = False) -> None:
        """Fire the matching fault for ``(job, attempt)``, if any.

        Called at the top of every job invocation.  ``in_process`` marks
        the serial path, where a real process kill would take the sweep
        down with it — crashes degrade to :class:`SimulatedCrash` there.
        """
        spec = self.spec_for(job, attempt)
        if spec is None:
            return
        if spec.action in ("hang", "delay"):
            time.sleep(spec.seconds)
            return  # "delay": late but successful; "hang" relies on the
            # timeout killing the worker before the sleep ends.
        if spec.action == "error":
            raise InjectedFault(f"injected error (attempt {attempt}): {spec.match}")
        if spec.action == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt: {spec.match}")
        # "crash"
        if in_process:
            raise SimulatedCrash(f"injected crash (attempt {attempt}): {spec.match}")
        os._exit(CRASH_EXIT_CODE)


def crash_once(match: str) -> FaultPlan:
    """A plan that kills the worker on the first attempt of the matching
    job (the canonical crash-retry chaos scenario)."""
    return FaultPlan((FaultSpec(match=match, action="crash", attempts=(1,)),))


def hang_once(match: str, seconds: float = 30.0) -> FaultPlan:
    """A plan that hangs the matching job's first attempt for
    ``seconds`` (long enough for the per-job timeout to fire first)."""
    return FaultPlan(
        (FaultSpec(match=match, action="hang", attempts=(1,), seconds=seconds),)
    )


# ----------------------------------------------------------------------
# Cache-corruption injectors.
# ----------------------------------------------------------------------
def corrupt_cache_entry(cache, job, mode: str = "garbage"):
    """Damage the persistent cache entry for ``job`` in place.

    ``mode="garbage"`` overwrites it with non-JSON bytes;
    ``mode="truncate"`` cuts the JSON off mid-document (a torn write).
    Returns the entry path.  The next ``cache.get`` must quarantine the
    file (rename to ``*.corrupt``), count it in ``cache.corrupt``, and
    report a miss so the job re-simulates.
    """
    path = cache._path(job)
    if mode == "garbage":
        path.write_text("{ this is not json !!")
    elif mode == "truncate":
        text = path.read_text()
        path.write_text(text[: max(1, len(text) // 3)])
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
