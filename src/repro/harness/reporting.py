"""Plain-text table formatting for benchmark and CLI output.

Besides the generic :func:`format_table`, this module renders the
channel-scaling study's two row families (see
:func:`repro.harness.experiments.channel_scaling`): the per-point
summary table and the per-channel attribution table — per-channel RHLI
(attacker vs benign), blacklist/delay event counts, throttle events
(blocked injections), and the per-thread-per-channel slowdown proxy
that localizes attack pressure to a channel.
"""

from __future__ import annotations

from typing import Iterable


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def round_or_none(value, digits: int):
    """``round`` that passes ``None`` through — statistics over empty
    populations (benign-only / single-thread mixes, threads with no
    reads on a channel) report None and render as ``-``."""
    return None if value is None else round(value, digits)


def format_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Align a table for terminal output (``None`` renders as ``-``)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_channel_summary(summary: list[dict]) -> str:
    """The channel-scaling summary table (one row per channels × layout
    × scenario × mechanism point)."""
    return format_table(
        ["ch", "layout", "scenario", "mechanism", "WS", "HS", "MS", "energy", "flips"],
        [
            [
                s["channels"],
                s["layout"],
                s["scenario"],
                s["mechanism"],
                round_or_none(s["norm_ws_mean"], 3),
                round_or_none(s["norm_hs_mean"], 3),
                round_or_none(s["norm_ms_mean"], 3),
                round_or_none(s["norm_energy_mean"], 3),
                s["bitflips"],
            ]
            for s in summary
        ],
    )


def format_os_policy(rows: list[dict]) -> str:
    """The OS governor policy-comparison table (one row per mix ×
    mechanism × policy, from
    :func:`repro.harness.experiments.os_policy_sweep`).  Benign
    slowdowns are relative to the same mechanism without a governor
    (< 1 = the policy recovered benign performance); attacker RHLI is
    ``-`` for mechanisms without RHLI tracking."""
    return format_table(
        [
            "mix",
            "mechanism",
            "policy",
            "ben slow",
            "ben slow max",
            "atk RHLI",
            "atk reqs",
            "epochs",
            "kills",
            "ben killed",
            "migr",
            "quota upd",
            "flips",
        ],
        [
            [
                r["mix"],
                r["mechanism"],
                r["policy"],
                round_or_none(r["benign_slowdown_mean"], 3),
                round_or_none(r["benign_slowdown_max"], 3),
                round_or_none(r["attacker_rhli"], 3),
                r["attacker_requests"],
                r["governor_epochs"],
                r["kills"],
                r["benign_killed"],
                r["migrations"],
                r["quota_updates"],
                r["bitflips"],
            ]
            for r in rows
        ],
    )


def format_sweep_report(report) -> str:
    """Render a :class:`~repro.harness.parallel.SweepReport`: one
    headline line of sweep-level progress counters, plus one line per
    structured job failure (kind, attempts, error).  The CLI prints this
    to stderr under ``--progress``; a fault-free sweep reads
    ``0 retries, 0 timeouts, 0 crashes, 0 failed``."""
    lines = [
        f"sweep: {report.total} job(s) — {report.cached} cached, "
        f"{report.executed} executed, {report.retries} retries, "
        f"{report.timeouts} timeouts, {report.crashes} crashes, "
        f"{len(report.failures)} failed in {report.elapsed_s:.2f}s"
    ]
    for failure in report.failures:
        lines.append(
            f"  FAILED [{failure.kind}] after {failure.attempts} attempt(s): "
            f"{failure.error or failure.key!r}"
        )
    return "\n".join(lines)


def format_attribution(attribution: list[dict]) -> str:
    """The per-channel attribution table (one row per mix × mechanism ×
    channel).  RHLI and slowdown cells are ``-`` where the statistic has
    no population (mechanisms without RHLI tracking, threads with no
    reads on the channel)."""
    return format_table(
        [
            "ch",
            "layout",
            "scenario",
            "mix",
            "mechanism",
            "#",
            "atk RHLI",
            "ben RHLI",
            "blacklist",
            "delayed",
            "blocked",
            "atk slow",
            "ben slow",
        ],
        [
            [
                a["channels"],
                a["layout"],
                a["scenario"],
                a["mix"],
                a["mechanism"],
                a["channel"],
                round_or_none(a["attacker_rhli"], 3),
                round_or_none(a["benign_rhli_max"], 4),
                a["blacklisted_acts"],
                a["delayed_acts"],
                a["blocked_injections"],
                round_or_none(a["attacker_slowdown"], 3),
                round_or_none(a["benign_slowdown_max"], 3),
            ]
            for a in attribution
        ],
    )
