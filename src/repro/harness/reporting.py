"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Align a table for terminal output."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
