"""DRAM device substrate: timing specs, banks, ranks, the RowHammer
disturbance model, in-DRAM row mappings, and address decoding."""

from repro.dram.spec import DramSpec, DDR4_2400, LPDDR4_3200, DDR3_1600
from repro.dram.commands import CommandKind, Command
from repro.dram.bank import Bank
from repro.dram.rank import Rank
from repro.dram.device import DramDevice, BitFlipEvent
from repro.dram.address import AddressMapping, DecodedAddress, MappingScheme
from repro.dram.rowmap import (
    RowMapping,
    LinearRowMapping,
    MirroredRowMapping,
    ScrambledRowMapping,
)
from repro.dram.rowhammer import DisturbanceModel, DisturbanceProfile

__all__ = [
    "DramSpec",
    "DDR4_2400",
    "LPDDR4_3200",
    "DDR3_1600",
    "CommandKind",
    "Command",
    "Bank",
    "Rank",
    "DramDevice",
    "BitFlipEvent",
    "AddressMapping",
    "DecodedAddress",
    "MappingScheme",
    "RowMapping",
    "LinearRowMapping",
    "MirroredRowMapping",
    "ScrambledRowMapping",
    "DisturbanceModel",
    "DisturbanceProfile",
]
