"""Physical-address-to-DRAM-coordinate mapping.

The memory controller decodes a flat physical byte address into
(channel, rank, bank, row, column).  The paper's system (Table 5) uses
the MOP ("Minimalist Open Page", Kaseridis et al. [60]) scheme, which
interleaves small runs of consecutive cache lines across banks to
balance row-buffer locality against bank-level parallelism.  A simple
row:rank:bank:col scheme is provided for comparison and testing.

Both schemes carry a channel-interleave variant: when the spec declares
more than one channel, channel bits sit directly above the within-run
column bits, so consecutive MOP runs (or consecutive same-row column
sweeps in ROW_BANK_COL) rotate across channels before rotating across
banks — channel-level parallelism at run granularity.  With one channel
the channel digit is the identity (``line % 1 == 0``), so single-channel
decoding is bit-identical to the channel-free layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

from repro.dram.spec import DramSpec
from repro.utils.validation import require


class MappingScheme(enum.Enum):
    """Supported controller address-interleaving schemes."""

    MOP = "mop"
    ROW_BANK_COL = "row_bank_col"


#: Bits reserved for the bank id inside a flat per-bank key
#: (``(rank << BANK_KEY_BITS) | bank``).  Shared by ``Request.bank_key``,
#: the request queues' per-bank index, the device's flat bank table, and
#: the scheduler's rank extraction — change it in one place only.
#: Supports up to 64 banks per rank (beyond any spec in this study).
#: Bank keys are channel-local: each channel's controller/device pair
#: owns its own queues and flat bank table.
BANK_KEY_BITS = 6

#: Decode-memo size bound per mapping (entries).  Mappings outlive any
#: single simulation (see :func:`shared_mapping`), so the memo is reset
#: wholesale when it reaches this many distinct addresses — far beyond
#: any one sweep's working set, but a hard cap on process memory.
_DECODE_CACHE_LIMIT = 1 << 20


def bank_key(rank: int, bank: int) -> int:
    """The flat per-bank key used across the memory subsystem."""
    return (rank << BANK_KEY_BITS) | bank


@dataclass(frozen=True, order=True, slots=True)
class DecodedAddress:
    """DRAM coordinates of one cache-line-sized access.

    ``channel`` defaults to 0 so single-channel call sites (and every
    pre-multi-channel construction) stay valid unchanged.
    """

    rank: int
    bank: int
    row: int
    col: int
    channel: int = 0


class AddressMapping:
    """Bidirectional mapping between byte addresses and DRAM coordinates.

    MOP layout, from least-significant bits upward::

        [line offset | mop-run column | channel | bank | rank | column-high | row]

    so ``mop_run`` consecutive lines land in the same row of the same
    bank (of the same channel) before the stream moves to the next
    channel, then the next bank.

    Decoding is memoized per byte address: cores replay looping traces,
    so the same line addresses are decoded millions of times per
    simulation while the number of *distinct* addresses is bounded by
    the workload's working set (see ``decode``).
    """

    def __init__(
        self,
        spec: DramSpec,
        scheme: MappingScheme = MappingScheme.MOP,
        mop_run: int = 4,
    ) -> None:
        require(mop_run >= 1, "mop_run must be >= 1")
        require(spec.columns_per_row % mop_run == 0, "mop_run must divide columns")
        self.spec = spec
        self.scheme = scheme
        self.mop_run = mop_run
        # Per-instance decode memo (hot path: Core._fetch_next decodes
        # one address per trace record).  Mappings are long-lived and
        # memoized per spec, so the memo is shared by every replay of a
        # working set; it is reset wholesale at _DECODE_CACHE_LIMIT so a
        # process-lifetime mapping cannot accumulate unbounded state.
        self._decode_cache: dict[int, DecodedAddress] = {}

    # ------------------------------------------------------------------
    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates (memoized)."""
        cached = self._decode_cache.get(address)
        if cached is not None:
            return cached
        require(address >= 0, "address must be non-negative")
        s = self.spec
        line = address // s.line_bytes
        if self.scheme is MappingScheme.MOP:
            low_col = line % self.mop_run
            line //= self.mop_run
            channel = line % s.channels
            line //= s.channels
            bank = line % s.banks_per_rank
            line //= s.banks_per_rank
            rank = line % s.ranks
            line //= s.ranks
            high_col = line % (s.columns_per_row // self.mop_run)
            line //= s.columns_per_row // self.mop_run
            row = line % s.rows_per_bank
            col = high_col * self.mop_run + low_col
            decoded = DecodedAddress(rank, bank, row, col, channel)
        else:
            # ROW_BANK_COL: [col | channel | bank | rank | row]
            col = line % s.columns_per_row
            line //= s.columns_per_row
            channel = line % s.channels
            line //= s.channels
            bank = line % s.banks_per_rank
            line //= s.banks_per_rank
            rank = line % s.ranks
            line //= s.ranks
            row = line % s.rows_per_bank
            decoded = DecodedAddress(rank, bank, row, col, channel)
        if len(self._decode_cache) >= _DECODE_CACHE_LIMIT:
            self._decode_cache.clear()
        self._decode_cache[address] = decoded
        return decoded

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (returns a byte address)."""
        s = self.spec
        if self.scheme is MappingScheme.MOP:
            high_col, low_col = divmod(decoded.col, self.mop_run)
            line = decoded.row
            line = line * (s.columns_per_row // self.mop_run) + high_col
            line = line * s.ranks + decoded.rank
            line = line * s.banks_per_rank + decoded.bank
            line = line * s.channels + decoded.channel
            line = line * self.mop_run + low_col
            return line * s.line_bytes
        line = decoded.row
        line = line * s.ranks + decoded.rank
        line = line * s.banks_per_rank + decoded.bank
        line = line * s.channels + decoded.channel
        line = line * s.columns_per_row + decoded.col
        return line * s.line_bytes


@lru_cache(maxsize=None)
def shared_mapping(
    spec: DramSpec,
    scheme: MappingScheme = MappingScheme.MOP,
    mop_run: int = 4,
) -> AddressMapping:
    """The process-wide :class:`AddressMapping` for a configuration.

    Mappings are stateless apart from the decode memo; sharing one
    instance per (spec, scheme, mop_run) lets every simulation of a
    sweep reuse the memo instead of re-decoding the working set from
    scratch per run.
    """
    return AddressMapping(spec, scheme, mop_run)
