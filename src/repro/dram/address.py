"""Physical-address-to-DRAM-coordinate mapping.

The memory controller decodes a flat physical byte address into
(rank, bank, row, column).  The paper's system (Table 5) uses the MOP
("Minimalist Open Page", Kaseridis et al. [60]) scheme, which interleaves
small runs of consecutive cache lines across banks to balance row-buffer
locality against bank-level parallelism.  A simple row:rank:bank:col
scheme is provided for comparison and testing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.spec import DramSpec
from repro.utils.validation import require


class MappingScheme(enum.Enum):
    """Supported controller address-interleaving schemes."""

    MOP = "mop"
    ROW_BANK_COL = "row_bank_col"


#: Bits reserved for the bank id inside a flat per-bank key
#: (``(rank << BANK_KEY_BITS) | bank``).  Shared by ``Request.bank_key``,
#: the request queues' per-bank index, the device's flat bank table, and
#: the scheduler's rank extraction — change it in one place only.
#: Supports up to 64 banks per rank (beyond any spec in this study).
BANK_KEY_BITS = 6


def bank_key(rank: int, bank: int) -> int:
    """The flat per-bank key used across the memory subsystem."""
    return (rank << BANK_KEY_BITS) | bank


@dataclass(frozen=True, order=True, slots=True)
class DecodedAddress:
    """DRAM coordinates of one cache-line-sized access."""

    rank: int
    bank: int
    row: int
    col: int


class AddressMapping:
    """Bidirectional mapping between byte addresses and DRAM coordinates.

    MOP layout, from least-significant bits upward::

        [line offset | mop-run column | bank | rank | column-high | row]

    so ``mop_run`` consecutive lines land in the same row of the same
    bank before the stream moves to the next bank.
    """

    def __init__(
        self,
        spec: DramSpec,
        scheme: MappingScheme = MappingScheme.MOP,
        mop_run: int = 4,
    ) -> None:
        require(mop_run >= 1, "mop_run must be >= 1")
        require(spec.columns_per_row % mop_run == 0, "mop_run must divide columns")
        self.spec = spec
        self.scheme = scheme
        self.mop_run = mop_run

    # ------------------------------------------------------------------
    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates."""
        require(address >= 0, "address must be non-negative")
        s = self.spec
        line = address // s.line_bytes
        if self.scheme is MappingScheme.MOP:
            low_col = line % self.mop_run
            line //= self.mop_run
            bank = line % s.banks_per_rank
            line //= s.banks_per_rank
            rank = line % s.ranks
            line //= s.ranks
            high_col = line % (s.columns_per_row // self.mop_run)
            line //= s.columns_per_row // self.mop_run
            row = line % s.rows_per_bank
            col = high_col * self.mop_run + low_col
            return DecodedAddress(rank, bank, row, col)
        # ROW_BANK_COL: [col | bank | rank | row]
        col = line % s.columns_per_row
        line //= s.columns_per_row
        bank = line % s.banks_per_rank
        line //= s.banks_per_rank
        rank = line % s.ranks
        line //= s.ranks
        row = line % s.rows_per_bank
        return DecodedAddress(rank, bank, row, col)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (returns a byte address)."""
        s = self.spec
        if self.scheme is MappingScheme.MOP:
            high_col, low_col = divmod(decoded.col, self.mop_run)
            line = decoded.row
            line = line * (s.columns_per_row // self.mop_run) + high_col
            line = line * s.ranks + decoded.rank
            line = line * s.banks_per_rank + decoded.bank
            line = line * self.mop_run + low_col
            return line * s.line_bytes
        line = decoded.row
        line = line * s.ranks + decoded.rank
        line = line * s.banks_per_rank + decoded.bank
        line = line * s.columns_per_row + decoded.col
        return line * s.line_bytes
