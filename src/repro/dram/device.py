"""The DRAM device: ranks, banks, row mapping, disturbance, and the data bus.

:class:`DramDevice` owns all DRAM-side state for one channel.  The memory
controller asks it when a command could legally issue
(:meth:`earliest_issue`) and commits commands through :meth:`issue`,
which applies timing effects, translates logical rows through the
in-DRAM row mapping, feeds the RowHammer disturbance model, and walks
auto-refresh through the row array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import BANK_KEY_BITS, bank_key
from repro.dram.commands import Command, CommandKind
from repro.dram.rank import Rank
from repro.dram.rowhammer import BitFlip, DisturbanceModel, DisturbanceProfile
from repro.dram.rowmap import LinearRowMapping, RowMapping
from repro.dram.spec import DramSpec

# Re-export under the name used by the public API.
BitFlipEvent = BitFlip


@dataclass
class CommandCounts:
    """Channel-wide command counters (consumed by the energy model)."""

    act: int = 0
    pre: int = 0
    rd: int = 0
    wr: int = 0
    ref: int = 0
    vref: int = 0


class DramDevice:
    """One DRAM channel: ranks of banks plus shared data-bus state."""

    def __init__(
        self,
        spec: DramSpec,
        row_mapping: RowMapping | None = None,
        disturbance: DisturbanceProfile | None = None,
    ) -> None:
        self.spec = spec
        self.row_mapping = row_mapping or LinearRowMapping(spec.rows_per_bank)
        self.disturbance_profile = disturbance or DisturbanceProfile()
        self.ranks = [Rank(spec, r) for r in range(spec.ranks)]
        # Flat bank lookup table indexed by the shared bank_key
        # encoding (matches Request.bank_key); scheduler hot loop.
        self.flat_banks: list = [None] * (spec.ranks << BANK_KEY_BITS)
        for rank in self.ranks:
            for bank in rank.banks:
                self.flat_banks[bank_key(rank.rank_id, bank.bank_id)] = bank
        self._models = [
            [
                DisturbanceModel(self.disturbance_profile, spec.rows_per_bank, r, b)
                for b in range(spec.banks_per_rank)
            ]
            for r in range(spec.ranks)
        ]
        # Flat disturbance-model table, same bank_key indexing as
        # flat_banks (issue() hot path).
        self.flat_models: list = [None] * (spec.ranks << BANK_KEY_BITS)
        for r in range(spec.ranks):
            for b in range(spec.banks_per_rank):
                self.flat_models[bank_key(r, b)] = self._models[r][b]
        self._bus_free = 0.0
        # Individual timing floats, added in the same left-to-right
        # order as the original ``now + tCL + tBL`` expressions:
        # pre-summing the constants would associate differently and
        # shift bus timestamps by an ULP, breaking bit-identity.
        self._tCL = spec.tCL
        self._tCWL = spec.tCWL
        self._tBL = spec.tBL
        self._refresh_pointer = [0] * spec.ranks
        self.counts = CommandCounts()
        self.bitflips: list[BitFlip] = []
        #: Optional command trace: set to a list and every committed
        #: command is appended as (time, kind-name, rank, bank, row,
        #: col).  Off (None) by default — the differential scheduler
        #: harness enables it to compare full command streams between
        #: scheduling policies; one predicted-false branch per command
        #: otherwise.
        self.command_log: list[tuple] | None = None
        # Rank-level active-time integration for background energy.
        self._open_banks = [0] * spec.ranks
        self._last_change = [0.0] * spec.ranks
        self.active_time = [0.0] * spec.ranks
        # One-tuple bundle of the stable objects/scalars the FR-FCFS
        # incremental select binds every call (bus_free stays out: it
        # moves on every column command and must be read live).
        self.select_hot = (self.flat_banks, self.ranks[0], spec.tCL, spec.tCWL)

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------
    def bank(self, rank: int, bank: int):
        """Return the :class:`Bank` object at (rank, bank)."""
        return self.ranks[rank].banks[bank]

    @property
    def bus_free(self) -> float:
        """Time at which the shared data bus becomes free."""
        return self._bus_free

    def model(self, rank: int, bank: int) -> DisturbanceModel:
        """Return the disturbance model at (rank, bank)."""
        return self._models[rank][bank]

    # ------------------------------------------------------------------
    # Scheduling queries.
    # ------------------------------------------------------------------
    def earliest_issue(self, cmd: Command, now: float) -> float:
        """Earliest legal issue time for ``cmd`` at or after ``now``.

        Combines bank-local timing, rank-level ACT constraints
        (tRRD/tFAW), and data-bus occupancy for column commands.
        """
        bank = self.bank(cmd.rank, cmd.bank)
        t = max(now, bank.earliest(cmd.kind))
        if cmd.kind in (CommandKind.ACT, CommandKind.VREF):
            t = max(t, self.ranks[cmd.rank].earliest_act(t))
        elif cmd.kind is CommandKind.RD:
            t = max(t, self._bus_free - self.spec.tCL)
        elif cmd.kind is CommandKind.WR:
            t = max(t, self._bus_free - self.spec.tCWL)
        return t

    def can_issue(self, cmd: Command, now: float) -> bool:
        """Whether ``cmd`` is legal exactly at ``now``."""
        bank = self.bank(cmd.rank, cmd.bank)
        if not bank.can_issue(cmd.kind, cmd.row, now):
            return False
        return self.earliest_issue(cmd, now) <= now

    # ------------------------------------------------------------------
    # Command commit.
    # ------------------------------------------------------------------
    def issue(self, cmd: Command, now: float) -> list[BitFlip]:
        """Commit ``cmd`` at ``now``; return new bit-flips (if any)."""
        kind = cmd.kind
        key = (cmd.rank << BANK_KEY_BITS) | cmd.bank
        bank = self.flat_banks[key]
        new_flips: list[BitFlip] = []
        if self.command_log is not None:
            self.command_log.append(
                (now, kind.name, cmd.rank, cmd.bank, cmd.row, cmd.col)
            )

        if kind is CommandKind.RD:
            bank.issue(kind, cmd.row, now)
            self._bus_free = now + self._tCL + self._tBL
            self.counts.rd += 1
        elif kind is CommandKind.ACT:
            self._note_bank_transition(cmd.rank, now, opening=True)
            bank.issue(kind, cmd.row, now)
            self.ranks[cmd.rank].record_act(now)
            physical = self.row_mapping.to_physical(cmd.row)
            new_flips = self.flat_models[key].on_activate(physical, now)
            self.counts.act += 1
        elif kind is CommandKind.PRE:
            bank.issue(kind, cmd.row, now)
            self._note_bank_transition(cmd.rank, now, opening=False)
            self.counts.pre += 1
        elif kind is CommandKind.WR:
            bank.issue(kind, cmd.row, now)
            self._bus_free = now + self._tCWL + self._tBL
            self.counts.wr += 1
        elif kind is CommandKind.REF:
            self._issue_refresh(cmd.rank, now)
        elif kind is CommandKind.VREF:
            bank.issue(kind, cmd.row, now)
            self.ranks[cmd.rank].record_act(now)
            physical = self.row_mapping.to_physical(cmd.row)
            self.flat_models[key].on_refresh_row(physical)
            self.counts.vref += 1
        else:
            raise ValueError(f"unsupported command kind {kind}")

        if new_flips:
            self.bitflips.extend(new_flips)
        return new_flips

    def _issue_refresh(self, rank_id: int, now: float) -> None:
        """All-bank REF: occupy banks for tRFC and refresh the next
        group of physical rows in every bank of the rank."""
        rank = self.ranks[rank_id]
        for bank in rank.banks:
            bank.issue(CommandKind.REF, 0, now)
        group = self._refresh_pointer[rank_id]
        rows_per_group = self.spec.rows_per_refresh_group
        start = (group * rows_per_group) % self.spec.rows_per_bank
        for bank_id in range(self.spec.banks_per_rank):
            self.model(rank_id, bank_id).on_refresh_range(start, rows_per_group)
        self._refresh_pointer[rank_id] = (group + 1) % self.spec.refresh_groups
        self.counts.ref += 1

    # ------------------------------------------------------------------
    # Background-energy bookkeeping.
    # ------------------------------------------------------------------
    def _note_bank_transition(self, rank_id: int, now: float, opening: bool) -> None:
        open_before = self._open_banks[rank_id]
        if open_before > 0:
            self.active_time[rank_id] += now - self._last_change[rank_id]
        self._last_change[rank_id] = now
        self._open_banks[rank_id] = open_before + (1 if opening else -1)

    def finalize_active_time(self, now: float) -> None:
        """Close the active-time integral at simulation end."""
        for rank_id in range(self.spec.ranks):
            if self._open_banks[rank_id] > 0:
                self.active_time[rank_id] += now - self._last_change[rank_id]
                self._last_change[rank_id] = now

    @property
    def total_bitflips(self) -> int:
        """Total RowHammer bit-flips recorded across the channel."""
        return len(self.bitflips)
