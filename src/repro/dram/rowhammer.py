"""RowHammer disturbance and bit-flip model (Sections 2.2 and 4).

Each ACT to physical row ``p`` disturbs victims at distance ``k`` by the
blast impact factor ``c_k`` (c_1 = 1, decaying with distance, zero past
the blast radius).  A victim accumulates disturbance, in units of
"equivalent adjacent-row activations", since its last refresh; when the
accumulated disturbance reaches the RowHammer threshold NRH, a bit-flip
is recorded.  Refreshing a row (auto-refresh or victim refresh) resets
its accumulated disturbance.

The paper's worst-case characterization values are ``r_blast = 6`` and
``c_k = 0.5**(k-1)``; the evaluation's double-sided attack model uses
``r_blast = 1`` (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require


@dataclass(frozen=True)
class DisturbanceProfile:
    """Physical RowHammer characteristics of a DRAM chip."""

    nrh: int = 32768
    blast_radius: int = 1
    decay: float = 0.5  # c_k = decay**(k-1)

    def __post_init__(self) -> None:
        require(self.nrh >= 1, "NRH must be >= 1")
        require(self.blast_radius >= 1, "blast radius must be >= 1")
        require(0.0 < self.decay <= 1.0, "decay must be in (0, 1]")

    def impact(self, distance: int) -> float:
        """Blast impact factor c_k for a victim ``distance`` rows away."""
        if distance < 1 or distance > self.blast_radius:
            return 0.0
        return self.decay ** (distance - 1)

    def impact_sum(self) -> float:
        """Sum of c_k over the blast radius (one side)."""
        return sum(self.impact(k) for k in range(1, self.blast_radius + 1))

    @classmethod
    def paper_worst_case(cls, nrh: int = 32768) -> "DisturbanceProfile":
        """r_blast=6, c_k=0.5^(k-1): the worst case in Kim et al. [72, 73]."""
        return cls(nrh=nrh, blast_radius=6, decay=0.5)


@dataclass(frozen=True)
class BitFlip:
    """A recorded RowHammer bit-flip in one bank."""

    time_ns: float
    rank: int
    bank: int
    physical_row: int
    disturbance: float


class DisturbanceModel:
    """Tracks per-victim disturbance for one bank.

    State is sparse: only rows that have received disturbance since their
    last refresh occupy memory.  Each victim produces at most one
    recorded bit-flip per refresh period (further hammering keeps the
    victim in the flipped set until it is refreshed).
    """

    def __init__(self, profile: DisturbanceProfile, rows: int, rank: int, bank: int) -> None:
        self.profile = profile
        self.rows = rows
        self.rank = rank
        self.bank = bank
        self._disturbance: dict[int, float] = {}
        self._flipped: set[int] = set()
        self.bitflips: list[BitFlip] = []

    def on_activate(self, physical_row: int, now: float) -> list[BitFlip]:
        """Apply the disturbance of activating ``physical_row`` at ``now``.

        Returns the list of *new* bit-flips this activation caused.
        """
        new_flips: list[BitFlip] = []
        for k in range(1, self.profile.blast_radius + 1):
            c = self.profile.impact(k)
            for victim in (physical_row - k, physical_row + k):
                if victim < 0 or victim >= self.rows:
                    continue
                level = self._disturbance.get(victim, 0.0) + c
                self._disturbance[victim] = level
                if level >= self.profile.nrh and victim not in self._flipped:
                    self._flipped.add(victim)
                    flip = BitFlip(now, self.rank, self.bank, victim, level)
                    self.bitflips.append(flip)
                    new_flips.append(flip)
        return new_flips

    def on_refresh_row(self, physical_row: int) -> None:
        """Reset a row's accumulated disturbance (row got refreshed)."""
        self._disturbance.pop(physical_row, None)
        self._flipped.discard(physical_row)

    def on_refresh_range(self, start: int, count: int) -> None:
        """Reset disturbance for ``count`` rows starting at ``start``
        (modulo the array size) — the effect of one REF group.

        Scans whichever is smaller: the row range or the set of rows
        currently carrying disturbance, so large REF groups stay cheap
        when few rows are disturbed (the common case).
        """
        if not self._disturbance and not self._flipped:
            return
        end = start + count
        rows = self.rows

        def in_range(row: int) -> bool:
            if end <= rows:
                return start <= row < end
            return row >= start or row < end - rows

        if len(self._disturbance) + len(self._flipped) <= count:
            for row in [r for r in self._disturbance if in_range(r)]:
                del self._disturbance[row]
            for row in [r for r in self._flipped if in_range(r)]:
                self._flipped.discard(row)
        else:
            for offset in range(count):
                self.on_refresh_row((start + offset) % rows)

    def disturbance_of(self, physical_row: int) -> float:
        """Current accumulated disturbance of ``physical_row``."""
        return self._disturbance.get(physical_row, 0.0)

    def max_disturbance(self) -> float:
        """Largest accumulated disturbance across all rows (0 if none)."""
        return max(self._disturbance.values(), default=0.0)

    def tracked_rows(self) -> int:
        """Number of rows with nonzero accumulated disturbance."""
        return len(self._disturbance)
