"""In-DRAM row address mappings (Section 2.3).

DRAM vendors internally remap memory-controller-visible (logical) row
addresses to physical rows for density/yield reasons, and keep the
mapping proprietary.  Physical adjacency — which determines RowHammer
victims — is therefore unknown to the controller.

We model three schemes:

* :class:`LinearRowMapping` — identity; logical row k is physical row k.
* :class:`MirroredRowMapping` — adjacent pairs swapped within blocks, a
  simplified version of the address mirroring used in real chips.
* :class:`ScrambledRowMapping` — an affine permutation
  ``phys = (a * logical + b) mod R`` with odd ``a``; invertible, cheap,
  and destroys logical adjacency, standing in for proprietary remapping.

Reactive-refresh mitigations need ``neighbors()`` of an aggressor: on
real systems that requires the proprietary mapping.  Our simulator hands
mechanisms an *adjacency oracle* backed by the true mapping by default
(modeling vendor knowledge); the row-map ablation benchmark instead hands
them a wrong (linear) oracle to demonstrate the compatibility challenge.
BlockHammer never consults a mapping.
"""

from __future__ import annotations

from repro.utils.validation import require


class RowMapping:
    """Base class: a bijection between logical and physical row IDs."""

    def __init__(self, rows: int) -> None:
        require(rows >= 2, "row mapping needs at least 2 rows")
        self.rows = rows

    def to_physical(self, logical: int) -> int:
        """Translate a logical row to its physical row."""
        raise NotImplementedError

    def to_logical(self, physical: int) -> int:
        """Translate a physical row back to its logical row."""
        raise NotImplementedError

    def physical_neighbors(self, logical: int, distance: int) -> list[int]:
        """Physical rows within ``distance`` of ``logical``'s physical row.

        Returns physical row IDs on both sides, clipped to the array.
        """
        p = self.to_physical(logical)
        out = []
        for k in range(1, distance + 1):
            if p - k >= 0:
                out.append(p - k)
            if p + k < self.rows:
                out.append(p + k)
        return out

    def logical_neighbors(self, logical: int, distance: int) -> list[int]:
        """Logical addresses of the physical neighbors of ``logical``.

        This is what a reactive-refresh mechanism must compute to refresh
        victims: it requires knowing the full mapping.
        """
        return [self.to_logical(p) for p in self.physical_neighbors(logical, distance)]


class LinearRowMapping(RowMapping):
    """Identity mapping: logical row == physical row."""

    def to_physical(self, logical: int) -> int:
        return logical

    def to_logical(self, physical: int) -> int:
        return physical


class MirroredRowMapping(RowMapping):
    """Swap odd/even row pairs inside fixed-size blocks.

    With ``block=2`` this swaps each even/odd pair (a common mirroring
    artifact); larger blocks reverse row order within each block.
    """

    def __init__(self, rows: int, block: int = 2) -> None:
        super().__init__(rows)
        require(block >= 2 and rows % block == 0, "block must divide rows")
        self.block = block

    def to_physical(self, logical: int) -> int:
        base = (logical // self.block) * self.block
        offset = logical - base
        return base + (self.block - 1 - offset)

    def to_logical(self, physical: int) -> int:
        # The block reversal is an involution.
        return self.to_physical(physical)


class ScrambledRowMapping(RowMapping):
    """Affine permutation ``phys = (a * logical + b) mod rows``.

    ``a`` is forced odd so the map is a bijection for power-of-two row
    counts (and we verify invertibility for general counts).
    """

    def __init__(self, rows: int, seed: int = 0xC0FFEE) -> None:
        super().__init__(rows)
        a = (seed % rows) | 1
        # Ensure gcd(a, rows) == 1 so the affine map is a bijection.
        while _gcd(a, rows) != 1:
            a += 2
            if a >= rows:
                a = 1
        self._a = a
        self._b = (seed >> 16) % rows
        self._a_inv = pow(self._a, -1, rows)

    def to_physical(self, logical: int) -> int:
        return (self._a * logical + self._b) % self.rows

    def to_logical(self, physical: int) -> int:
        return ((physical - self._b) * self._a_inv) % self.rows


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
