"""DRAM bus commands.

The memory controller communicates with the DRAM device exclusively
through these commands, mirroring a DDRx command bus (Section 2.1 of the
paper).  ``VREF`` is a directed victim-row refresh used by reactive
mitigation mechanisms; on a real chip it is an ACT+PRE pair to the victim
row, and we model it with the same tRC occupancy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """The DRAM command types the controller can issue."""

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"
    VREF = "victim_refresh"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommandKind.{self.name}"


@dataclass(frozen=True, slots=True)
class Command:
    """A single DRAM command addressed to a (rank, bank, row, col).

    ``row`` is a *logical* (memory-controller-visible) row address; the
    device translates it through its in-DRAM row mapping before applying
    disturbance (Section 2.3).  ``col`` is only meaningful for RD/WR.
    """

    kind: CommandKind
    rank: int
    bank: int
    row: int = 0
    col: int = 0

    def is_column(self) -> bool:
        """Return True for data-transferring commands (RD/WR)."""
        return self.kind in (CommandKind.RD, CommandKind.WR)
