"""Per-bank DRAM state machine and timing bookkeeping.

A bank is either precharged (``open_row is None``) or has one row latched
in its row buffer.  The bank tracks, per command type, the earliest time
the next such command may legally issue, which the controller queries to
schedule commands without per-cycle ticking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import CommandKind
from repro.dram.spec import DramSpec

_FAR_PAST = -1.0e18


@dataclass(slots=True)
class BankStats:
    """Activation/column counters for one bank."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0


class Bank:
    """One DRAM bank: open-row state plus next-allowed command times."""

    __slots__ = (
        "spec",
        "rank_id",
        "bank_id",
        "open_row",
        "next_act",
        "next_pre",
        "next_rd",
        "next_wr",
        "last_act_time",
        "stats",
        "_tRCD",
        "_tRAS",
        "_tRC",
        "_tRP",
        "_tCCD",
        "_tRTW",
        "_tRTP",
        "_tRFC",
        "_tCWL",
        "_tBL",
        "_tWTR",
        "_tWR",
    )

    def __init__(self, spec: DramSpec, rank_id: int, bank_id: int) -> None:
        self.spec = spec
        self.rank_id = rank_id
        self.bank_id = bank_id
        self.open_row: int | None = None
        self.next_act = _FAR_PAST
        self.next_pre = _FAR_PAST
        self.next_rd = _FAR_PAST
        self.next_wr = _FAR_PAST
        self.last_act_time = _FAR_PAST
        self.stats = BankStats()
        # Timing deltas resolved once: issue() runs once per DRAM
        # command and a chain of spec attribute hops there is
        # measurable.
        self._tRCD = spec.tRCD
        self._tRAS = spec.tRAS
        self._tRC = spec.tRC
        self._tRP = spec.tRP
        self._tCCD = spec.tCCD
        self._tRTW = spec.tRTW
        self._tRTP = spec.tRTP
        self._tRFC = spec.tRFC
        # Kept as individual floats (not pre-summed): issue() must add
        # them left-to-right exactly as the original ``now + tCWL + tBL
        # + tWTR`` expression did, or the write-to-read/precharge gates
        # shift by an ULP and bit-identity with the seed breaks.
        self._tCWL = spec.tCWL
        self._tBL = spec.tBL
        self._tWTR = spec.tWTR
        self._tWR = spec.tWR

    # ------------------------------------------------------------------
    # Scheduling queries.
    # ------------------------------------------------------------------
    def earliest(self, kind: CommandKind) -> float:
        """Earliest time a command of ``kind`` could issue, bank-local.

        Does not include rank-level constraints (tRRD/tFAW/bus); the
        :class:`~repro.dram.rank.Rank` layers those on top.
        """
        if kind is CommandKind.ACT:
            return self.next_act
        if kind is CommandKind.PRE:
            return self.next_pre
        if kind is CommandKind.RD:
            return self.next_rd
        if kind is CommandKind.WR:
            return self.next_wr
        if kind in (CommandKind.REF, CommandKind.VREF):
            # Refresh-class commands need the bank precharged; they are
            # gated by next_act like an activation.
            return self.next_act
        raise ValueError(f"unsupported command kind {kind}")

    def can_issue(self, kind: CommandKind, row: int, now: float) -> bool:
        """Whether ``kind`` targeting ``row`` is legal at time ``now``."""
        if now < self.earliest(kind):
            return False
        if kind is CommandKind.ACT:
            return self.open_row is None
        if kind is CommandKind.PRE:
            return self.open_row is not None
        if kind in (CommandKind.RD, CommandKind.WR):
            return self.open_row == row
        if kind in (CommandKind.REF, CommandKind.VREF):
            return self.open_row is None
        raise ValueError(f"unsupported command kind {kind}")

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------
    def issue(self, kind: CommandKind, row: int, now: float) -> None:
        """Apply the timing effects of issuing ``kind`` at ``now``.

        The caller is responsible for having checked :meth:`can_issue`.
        """
        if kind is CommandKind.RD:
            t = now + self._tCCD
            if t > self.next_rd:
                self.next_rd = t
            t = now + self._tRTW
            if t > self.next_wr:
                self.next_wr = t
            t = now + self._tRTP
            if t > self.next_pre:
                self.next_pre = t
            self.stats.reads += 1
        elif kind is CommandKind.ACT:
            self.open_row = row
            self.last_act_time = now
            t = now + self._tRCD
            if t > self.next_rd:
                self.next_rd = t
            if t > self.next_wr:
                self.next_wr = t
            t = now + self._tRAS
            if t > self.next_pre:
                self.next_pre = t
            t = now + self._tRC
            if t > self.next_act:
                self.next_act = t
            self.stats.activations += 1
        elif kind is CommandKind.PRE:
            self.open_row = None
            t = now + self._tRP
            if t > self.next_act:
                self.next_act = t
            self.stats.precharges += 1
        elif kind is CommandKind.WR:
            t = now + self._tCCD
            if t > self.next_wr:
                self.next_wr = t
            t = now + self._tCWL + self._tBL + self._tWTR
            if t > self.next_rd:
                self.next_rd = t
            t = now + self._tCWL + self._tBL + self._tWR
            if t > self.next_pre:
                self.next_pre = t
            self.stats.writes += 1
        elif kind is CommandKind.REF:
            # All-bank refresh occupies the bank for tRFC.
            t = now + self._tRFC
            if t > self.next_act:
                self.next_act = t
        elif kind is CommandKind.VREF:
            # A directed victim-row refresh is an internal ACT+PRE pair
            # to the victim row: occupies the bank for tRC.
            t = now + self._tRC
            if t > self.next_act:
                self.next_act = t
        else:
            raise ValueError(f"unsupported command kind {kind}")
