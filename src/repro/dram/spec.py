"""DRAM timing and geometry specifications.

A :class:`DramSpec` captures the standardized timing parameters the
memory controller must honor (Section 2.1) plus device geometry.  All
times are in nanoseconds.  Presets follow JEDEC datasheet values for
DDR4-2400 (the paper's Table 5 configuration), LPDDR4-3200, and
DDR3-1600.

Because a Python simulator cannot execute 64 ms of DRAM traffic per data
point, :meth:`DramSpec.scaled` produces a spec whose *window-scale*
parameters (tREFW, tREFI) are divided by a scale factor while per-command
timings are untouched.  Mitigation thresholds (NRH, NBL, ...) must be
scaled by the same factor so that every acts-per-window ratio the
mechanisms depend on is preserved; see DESIGN.md substitution 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.units import MS, US
from repro.utils.validation import require


@dataclass(frozen=True)
class DramSpec:
    """Timing (ns) and geometry of one DRAM channel.

    Attributes mirror JEDEC names: tRC is the minimum ACT-to-ACT delay to
    the same bank, tFAW bounds four consecutive ACTs in a rank, tREFW is
    the refresh window within which every row is refreshed once, tREFI
    the interval between auto-refresh (REF) commands.
    """

    name: str = "DDR4-2400"
    # Geometry.  ``channels`` is the number of independent channels the
    # memory *system* fans out; every other geometry/timing field
    # describes one channel (a :class:`~repro.dram.device.DramDevice`
    # models exactly one channel and is instantiated per channel by the
    # :class:`~repro.mem.memsystem.MemorySystem`).
    channels: int = 1
    ranks: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 65536
    columns_per_row: int = 128  # cache-line-sized columns
    line_bytes: int = 64
    # Core timings (ns).
    tCK: float = 0.833
    tRCD: float = 14.16
    tRP: float = 14.16
    tRAS: float = 32.0
    tRC: float = 46.25
    tCL: float = 14.16
    tCWL: float = 10.0
    tBL: float = 3.33
    tCCD: float = 5.0
    tRRD: float = 4.9
    tFAW: float = 35.0
    tWR: float = 15.0
    tWTR: float = 7.5
    tRTP: float = 7.5
    tRTW: float = 8.3
    # Refresh.
    tRFC: float = 350.0
    tREFI: float = 7812.5
    tREFW: float = 64.0 * MS
    refresh_groups: int = 8192  # REF commands per tREFW

    def __post_init__(self) -> None:
        require(self.channels >= 1, "channels must be >= 1")
        require(self.ranks >= 1, "ranks must be >= 1")
        require(self.banks_per_rank >= 1, "banks_per_rank must be >= 1")
        require(self.rows_per_bank >= 2, "rows_per_bank must be >= 2")
        require(self.tRC >= self.tRAS, "tRC must cover tRAS")
        require(self.tREFW > 0 and self.tREFI > 0, "refresh timings must be positive")
        require(self.refresh_groups >= 1, "refresh_groups must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def total_banks(self) -> int:
        """Number of banks across all ranks of one channel."""
        return self.ranks * self.banks_per_rank

    @property
    def capacity_bytes(self) -> int:
        """Total addressable bytes across all channels (addresses beyond
        this wrap in :class:`~repro.dram.address.AddressMapping`)."""
        return (
            self.channels
            * self.ranks
            * self.banks_per_rank
            * self.rows_per_bank
            * self.columns_per_row
            * self.line_bytes
        )

    def with_channels(self, channels: int) -> "DramSpec":
        """This spec re-declared with ``channels`` memory channels."""
        if channels == self.channels:
            return self
        return replace(self, channels=channels)

    @property
    def rows_per_refresh_group(self) -> int:
        """Rows per bank refreshed by a single REF command."""
        return max(1, self.rows_per_bank // self.refresh_groups)

    @property
    def max_acts_per_refresh_window(self) -> float:
        """Upper bound on single-bank ACTs within one tREFW (via tRC)."""
        return self.tREFW / self.tRC

    @property
    def max_rank_acts_in(self) -> float:
        """Peak rank-level activation rate implied by tFAW (ACTs/ns)."""
        return 4.0 / self.tFAW

    def read_latency(self) -> float:
        """Data availability latency after a RD command issues."""
        return self.tCL + self.tBL

    def write_latency(self) -> float:
        """Data bus occupancy end after a WR command issues."""
        return self.tCWL + self.tBL

    # ------------------------------------------------------------------
    # Scaling for tractable simulation.
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "DramSpec":
        """Return a spec with the refresh window shrunk by ``factor``.

        Per-command timings — including tREFI and tRFC, and hence the
        refresh duty cycle — are preserved so bank/bus contention
        behaves identically; only the window length (and hence the
        absolute number of activations a window can contain) shrinks.
        The REF walk is re-partitioned so the whole array is still
        refreshed once per (scaled) tREFW.  Pair this with mitigation
        thresholds scaled by the same factor.
        """
        require(factor >= 1.0, "scale factor must be >= 1")
        t_refw = self.tREFW / factor
        groups = max(4, int(round(t_refw / self.tREFI)))
        return replace(
            self,
            name=f"{self.name}/scaled{factor:g}",
            tREFW=t_refw,
            refresh_groups=groups,
        )


DDR4_2400 = DramSpec()

LPDDR4_3200 = DramSpec(
    name="LPDDR4-3200",
    banks_per_rank=8,
    tCK=0.625,
    tRCD=18.0,
    tRP=18.0,
    tRAS=42.0,
    tRC=60.0,
    tCL=17.5,
    tCWL=9.0,
    tBL=2.5,
    tCCD=5.0,
    tRRD=7.5,
    tFAW=30.0,
    tWR=18.0,
    tRFC=280.0,
    tREFI=3906.25,
    tREFW=32.0 * MS,  # LPDDR4 halves tREFW (Section 3.1.3)
)

DDR3_1600 = DramSpec(
    name="DDR3-1600",
    banks_per_rank=8,
    tCK=1.25,
    tRCD=13.75,
    tRP=13.75,
    tRAS=35.0,
    tRC=48.75,
    tCL=13.75,
    tCWL=10.0,
    tBL=5.0,
    tCCD=6.25,
    tRRD=6.0,
    tFAW=40.0,
    tWR=15.0,
    tRFC=260.0,
    tREFI=7812.5,
    tREFW=64.0 * MS,
)


def scaled_threshold(threshold: int, factor: float) -> int:
    """Scale an activation-count threshold consistently with a scaled spec.

    Keeps a floor of 1 so degenerate configurations stay well-formed.
    """
    return max(1, int(round(threshold / factor)))
