"""Per-rank DRAM timing: tRRD, tFAW, and the shared data bus.

The rank enforces inter-bank activation constraints and models the data
bus (one column burst at a time per channel).  The paper's RowBlocker-HB
sizing relies on tFAW bounding the rank activation rate to four ACTs per
tFAW window (Section 3.1.2), which this class enforces.
"""

from __future__ import annotations

from collections import deque

from repro.dram.bank import Bank
from repro.dram.commands import CommandKind
from repro.dram.spec import DramSpec


class Rank:
    """A rank: a set of banks plus rank-wide timing state."""

    def __init__(self, spec: DramSpec, rank_id: int) -> None:
        self.spec = spec
        self.rank_id = rank_id
        self.banks = [Bank(spec, rank_id, b) for b in range(spec.banks_per_rank)]
        self._act_times: deque[float] = deque(maxlen=4)
        self._last_act = -1.0e18
        # Denormalized timing constants: earliest_act runs once per
        # scheduling step, where the spec attribute hops are measurable.
        self._tRRD = spec.tRRD
        self._tFAW = spec.tFAW
        #: Rank ACT readiness independent of ``now``: max(last ACT +
        #: tRRD, tFAW-window close).  Only ACTs move it, so it is
        #: maintained in :meth:`record_act` and the scheduler's hot
        #: path reads it directly instead of calling
        #: :meth:`earliest_act` every step.
        self._act_ready = -1.0e18

    # ------------------------------------------------------------------
    # Rank-level constraints.
    # ------------------------------------------------------------------
    def earliest_act(self, now: float) -> float:
        """Earliest time any ACT may issue in this rank (tRRD + tFAW)."""
        t = self._act_ready
        return t if t > now else now

    def record_act(self, now: float) -> None:
        """Record an ACT (or VREF, which embeds an ACT) at ``now``."""
        acts = self._act_times
        acts.append(now)
        self._last_act = now
        t = now + self._tRRD
        if len(acts) == 4:
            # The 4th-most-recent ACT opens a tFAW window; a 5th ACT must
            # wait until that window closes.
            w = acts[0] + self._tFAW
            if w > t:
                t = w
        self._act_ready = t

    def all_banks_precharged(self) -> bool:
        """True when every bank has a closed row (needed for REF)."""
        return all(bank.open_row is None for bank in self.banks)

    def earliest_all_precharged(self, now: float) -> float:
        """Earliest time all banks could be precharged, assuming the
        controller precharges each open bank as soon as allowed."""
        t = now
        for bank in self.banks:
            if bank.open_row is not None:
                t = max(t, bank.next_pre + self.spec.tRP)
        return t
