"""Hardware cost modeling: SRAM/CAM area, access energy, and static
power at 65 nm (CACTI-style analytical model), plus per-mechanism
storage accounting reproducing Table 4."""

from repro.hwcost.models import SramModel, CamModel, StructureCost
from repro.hwcost.mechanisms import (
    MechanismCost,
    blockhammer_cost,
    mechanism_cost,
    table4_rows,
    CPU_DIE_AREA_MM2,
)

__all__ = [
    "SramModel",
    "CamModel",
    "StructureCost",
    "MechanismCost",
    "blockhammer_cost",
    "mechanism_cost",
    "table4_rows",
    "CPU_DIE_AREA_MM2",
]
