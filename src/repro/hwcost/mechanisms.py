"""Per-mechanism storage accounting (Table 4).

BlockHammer's structures are sized directly from its configuration
(:class:`~repro.core.config.BlockHammerConfig`), so its Table 4 row is
*computed*, not transcribed:

* D-CBF — 2 filters x ``cbf_size`` counters x counter width, per bank
  (SRAM);
* history buffer — ``history_entries`` x 32 bits per rank, stored both
  as a CAM (row IDs, searched associatively) and SRAM (timestamps);
* AttackThrottler — 2 counters x 16 bits per <thread, bank> pair.

Baselines are sized from their own sizing rules where the mechanism
defines one (Graphene's Misra-Gries table) and from their published
per-rank metadata footprints otherwise, scaled by their published
scaling law (TWiCe and CBT metadata grow ∝ 1/NRH; PRoHIT and MRLoc are
fixed design points that do not scale — the paper marks their reduced-
threshold columns "x").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BlockHammerConfig
from repro.dram.spec import DramSpec
from repro.hwcost.models import CamModel, SramModel, StructureCost, ZERO_COST
from repro.mitigations.graphene import Graphene
from repro.utils.validation import require

#: Intel Cascade Lake SP die area used by the paper for the "% CPU"
#: column [152] (28-core die, four memory channels).
CPU_DIE_AREA_MM2 = 246.0

_ROW_ADDR_BITS = 17  # 64K rows per bank
_TIMESTAMP_BITS = 14
_VALID_BITS = 1


@dataclass(frozen=True)
class MechanismCost:
    """One mechanism's Table 4 row (per DRAM rank)."""

    name: str
    nrh: int
    sram: StructureCost
    cam: StructureCost
    scalable: bool = True

    @property
    def total_area_mm2(self) -> float:
        return self.sram.area_mm2 + self.cam.area_mm2

    @property
    def cpu_area_percent(self) -> float:
        """Area as a fraction of the reference CPU die, for four
        single-rank channels (matching the paper's accounting)."""
        return 100.0 * (4.0 * self.total_area_mm2) / CPU_DIE_AREA_MM2

    @property
    def access_energy_pj(self) -> float:
        return self.sram.access_energy_pj + self.cam.access_energy_pj

    @property
    def static_power_mw(self) -> float:
        return self.sram.static_power_mw + self.cam.static_power_mw

    @property
    def sram_kb(self) -> float:
        return self.sram.kilobytes

    @property
    def cam_kb(self) -> float:
        return self.cam.kilobytes


# ----------------------------------------------------------------------
# BlockHammer: computed from its configuration.
# ----------------------------------------------------------------------
def blockhammer_cost(
    nrh: int,
    spec: DramSpec | None = None,
    num_threads: int = 8,
    config: BlockHammerConfig | None = None,
) -> MechanismCost:
    """Sizes BlockHammer's three structures for one DRAM rank."""
    spec = spec or DramSpec()
    config = config or BlockHammerConfig.for_nrh(nrh, spec)
    banks = spec.banks_per_rank

    dcbf_bits = 2 * config.cbf_size * config.counter_bits * banks
    history_entry_bits = _ROW_ADDR_BITS + _TIMESTAMP_BITS + _VALID_BITS
    history_bits = config.history_entries * history_entry_bits
    throttler_bits = 2 * 16 * num_threads * banks

    sram = SramModel.cost(dcbf_bits) + SramModel.cost(history_bits) + SramModel.cost(
        throttler_bits
    )
    cam = CamModel.cost(config.history_entries * _ROW_ADDR_BITS)
    return MechanismCost("blockhammer", nrh, sram=sram, cam=cam)


# ----------------------------------------------------------------------
# Baselines.
# ----------------------------------------------------------------------
def _graphene_cost(nrh: int, spec: DramSpec) -> MechanismCost:
    nrh_eff = nrh / 2.0  # double-sided configuration, as in Table 4
    threshold, entries = Graphene.sizing(nrh_eff, spec.tREFW, spec.tRC)
    counter_bits = max(1, (threshold * 2).bit_length())
    bits_per_entry = _ROW_ADDR_BITS + counter_bits
    cam_bits = entries * bits_per_entry * spec.banks_per_rank
    return MechanismCost("graphene", nrh, sram=ZERO_COST, cam=CamModel.cost(cam_bits))


#: Published per-rank metadata at the NRH = 32K anchor (KB), and whether
#: the footprint scales ∝ 1/NRH (Section 9 discussion).
_ANCHOR_KB = {
    # name: (sram_kb_at_32k, cam_kb_at_32k, scales_inversely)
    "para": (0.0, 0.0, False),
    "prohit": (0.0, 0.22, None),  # fixed design point, cannot rescale
    "mrloc": (0.0, 0.47, None),
    "cbt": (16.0, 8.5, True),
    "twice": (23.10, 14.02, True),
}


def mechanism_cost(
    name: str, nrh: int, spec: DramSpec | None = None, num_threads: int = 8
) -> MechanismCost | None:
    """Table 4 row for a mechanism at a given NRH.

    Returns None for fixed-design-point mechanisms at thresholds other
    than their published one (the paper's "x" cells).
    """
    spec = spec or DramSpec()
    require(nrh >= 2, "NRH must be >= 2")
    if name == "blockhammer":
        return blockhammer_cost(nrh, spec, num_threads)
    if name == "graphene":
        return _graphene_cost(nrh, spec)
    if name in _ANCHOR_KB:
        sram_kb, cam_kb, scaling = _ANCHOR_KB[name]
        if scaling is None and nrh != 32768:
            return None  # not adjustable (paper marks these "x")
        factor = (32768.0 / nrh) if scaling else 1.0
        sram = SramModel.cost(int(sram_kb * factor * 8192))
        cam = CamModel.cost(int(cam_kb * factor * 8192))
        return MechanismCost(name, nrh, sram=sram, cam=cam, scalable=bool(scaling))
    raise ValueError(f"unknown mechanism for cost model: {name!r}")


def table4_rows(
    nrh_values: tuple[int, ...] = (32768, 1024),
    spec: DramSpec | None = None,
) -> list[MechanismCost]:
    """All Table 4 rows (both NRH columns), BlockHammer first."""
    names = ["blockhammer", "para", "prohit", "mrloc", "cbt", "twice", "graphene"]
    rows: list[MechanismCost] = []
    for nrh in nrh_values:
        for name in names:
            cost = mechanism_cost(name, nrh, spec)
            if cost is not None:
                rows.append(cost)
    return rows
