"""Analytical SRAM/CAM cost models at 65 nm.

The paper evaluates storage cost with CACTI 6.0 [99] and latency with
Synopsys DC [143].  We substitute a first-order analytical model — area
linear in bits, access energy growing with array geometry, static power
linear in bits — with coefficients calibrated against the paper's own
Table 4 anchor points (BlockHammer's D-CBF for SRAM, Graphene's table
for CAM).  Because every mechanism's *storage requirement* is computed
from its actual configuration, the model reproduces Table 4's scaling
behaviour (NRH = 32K → 1K) by construction rather than by tabulation.

Calibration anchors (Table 4, NRH = 32K):

* D-CBF: 48 KB SRAM → 0.11 mm², 18.11 pJ/access, 19.81 mW static.
* Graphene: 5.22 KB CAM → 0.04 mm², 40.67 pJ/access, 3.11 mW static.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require


@dataclass(frozen=True)
class StructureCost:
    """Cost of one storage structure."""

    bits: int
    area_mm2: float
    access_energy_pj: float
    static_power_mw: float

    @property
    def kilobytes(self) -> float:
        return self.bits / 8.0 / 1024.0

    def __add__(self, other: "StructureCost") -> "StructureCost":
        return StructureCost(
            bits=self.bits + other.bits,
            area_mm2=self.area_mm2 + other.area_mm2,
            access_energy_pj=self.access_energy_pj + other.access_energy_pj,
            static_power_mw=self.static_power_mw + other.static_power_mw,
        )


ZERO_COST = StructureCost(0, 0.0, 0.0, 0.0)


class SramModel:
    """SRAM arrays: area and leakage linear in bits; access energy grows
    with wordline/bitline geometry (~sqrt of bits)."""

    # Calibrated against the D-CBF anchor: 48 KB = 393,216 bits.
    AREA_MM2_PER_BIT = 0.11 / 393_216
    STATIC_MW_PER_BIT = 19.81 / 393_216
    ACCESS_PJ_COEFF = 18.11 / math.sqrt(393_216)

    @classmethod
    def cost(cls, bits: int) -> StructureCost:
        require(bits >= 0, "bits must be non-negative")
        if bits == 0:
            return ZERO_COST
        return StructureCost(
            bits=bits,
            area_mm2=bits * cls.AREA_MM2_PER_BIT,
            access_energy_pj=cls.ACCESS_PJ_COEFF * math.sqrt(bits),
            static_power_mw=bits * cls.STATIC_MW_PER_BIT,
        )


class CamModel:
    """Content-addressable arrays: a search touches every bit, so access
    energy is linear in bits; match-line/cell overheads make area and
    leakage per bit a few times SRAM's."""

    # Calibrated against the Graphene anchor: 5.22 KB = 42,762 bits.
    AREA_MM2_PER_BIT = 0.04 / 42_762
    STATIC_MW_PER_BIT = 3.11 / 42_762
    ACCESS_PJ_PER_BIT = 40.67 / 42_762

    @classmethod
    def cost(cls, bits: int) -> StructureCost:
        require(bits >= 0, "bits must be non-negative")
        if bits == 0:
            return ZERO_COST
        return StructureCost(
            bits=bits,
            area_mm2=bits * cls.AREA_MM2_PER_BIT,
            access_energy_pj=bits * cls.ACCESS_PJ_PER_BIT,
            static_power_mw=bits * cls.STATIC_MW_PER_BIT,
        )
