"""Structured trace events: ring-buffered capture and Perfetto export.

Events are plain tuples ``(ts_ns, category, name, track, args)`` —
cheap to emit, trivial to filter — held in a bounded ``deque`` so a
pathological run cannot grow without limit (the sink counts what the
ring dropped).  :func:`to_perfetto` renders them as Chrome/Perfetto
``trace_event`` JSON: one process per category, one thread lane per
track (the memory channel for per-channel layers), every event an
instant (``"ph": "i"``) stamped in microseconds.

The DRAM command stream rides the existing
:attr:`repro.dram.device.DramDevice.command_log` hook — the device
appends ``(now, kind_name, rank, bank, row, col)`` tuples to anything
with an ``append`` method, and :class:`ChannelCommandLog` is exactly
that adapter, so command capture adds **zero** new code to the device's
hot path.
"""

from __future__ import annotations

import json
from collections import deque

#: (ts_ns, category, name, track, args-dict-or-None)
TraceEvent = tuple

#: Perfetto pid assignment per category (stable across runs so diffs of
#: exported traces line up); unknown categories get pids above these.
_CATEGORY_PIDS = {"dram": 1, "mem": 2, "mitigation": 3, "os": 4}


class TraceSink:
    """Bounded, append-only store of typed trace events."""

    def __init__(self, limit: int = 500_000) -> None:
        if limit < 1:
            raise ValueError("trace limit must be >= 1")
        self.limit = limit
        self._events: deque[TraceEvent] = deque(maxlen=limit)
        #: Events ever emitted (including ones the ring later dropped).
        self.total_emitted = 0
        self._reset_at: float | None = None

    # ------------------------------------------------------------------
    def emit(
        self, ts: float, category: str, name: str, track: int = 0, args=None
    ) -> None:
        """Record one instant event (the :class:`Probe` call target)."""
        self.total_emitted += 1
        self._events.append((ts, category, name, track, args))

    def note_measurement_reset(self, now: float) -> None:
        """Mark the warmup boundary: events at or before ``now`` predate
        the counter reset (the warmup batch runs *to* the boundary, so
        post-reset events are strictly later)."""
        self._reset_at = now

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Every retained event, in emission order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.total_emitted - len(self._events)

    @property
    def measure_start(self) -> float | None:
        """The warmup boundary, or ``None`` when no reset happened."""
        return self._reset_at

    def measured_events(self) -> list[TraceEvent]:
        """Events from the measured phase only: strictly after the
        warmup reset (pre-reset events can land exactly *on* the
        boundary; post-reset ones cannot), or everything when the run
        had no warmup.  These are the events whose counts match the
        counters in :class:`~repro.sim.stats.SimResult`."""
        if self._reset_at is None:
            return self.events
        boundary = self._reset_at
        return [event for event in self._events if event[0] > boundary]

    def count(
        self, category: str | None = None, name: str | None = None,
        measured_only: bool = False,
    ) -> int:
        """Number of retained events matching ``category``/``name``."""
        events = self.measured_events() if measured_only else self._events
        return sum(
            1
            for event in events
            if (category is None or event[1] == category)
            and (name is None or event[2] == name)
        )


class ChannelCommandLog:
    """``DramDevice.command_log`` adapter: forwards the device's command
    records into a :class:`TraceSink` under the ``dram`` category, with
    the channel index as the track."""

    __slots__ = ("_emit", "channel")

    def __init__(self, sink: TraceSink, channel: int) -> None:
        self._emit = sink.emit
        self.channel = channel

    def append(self, record) -> None:
        now, kind_name, rank, bank, row, col = record
        args = {"rank": rank, "bank": bank}
        if row is not None:
            args["row"] = row
        if col is not None:
            args["col"] = col
        self._emit(now, "dram", kind_name, self.channel, args)


# ----------------------------------------------------------------------
# Perfetto / Chrome trace_event export.
# ----------------------------------------------------------------------
def to_perfetto(events, measure_start: float | None = None) -> dict:
    """Render events as a Chrome/Perfetto ``trace_event`` JSON object.

    One "process" per category, one "thread" per track; every event is
    an instant with thread scope.  Timestamps convert from simulated
    nanoseconds to the format's microseconds; the original nanosecond
    stamp rides along in ``args.ts_ns``.  ``measure_start`` (the warmup
    boundary) is recorded as an instant on a dedicated ``sim`` lane so
    the measured window is visible on the timeline.
    """
    trace_events: list[dict] = []
    pids: dict[str, int] = dict(_CATEGORY_PIDS)
    named: set[int] = set()
    for event in events:
        ts, category, name, track, args = event
        pid = pids.get(category)
        if pid is None:
            pid = max(pids.values(), default=0) + 1
            pids[category] = pid
        if pid not in named:
            named.add(pid)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": category},
                }
            )
        payload = {"ts_ns": ts}
        if args:
            payload.update(args)
        trace_events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": ts / 1000.0,
                "pid": pid,
                "tid": track,
                "args": payload,
            }
        )
    if measure_start is not None:
        trace_events.append(
            {
                "name": "measure_start",
                "cat": "sim",
                "ph": "i",
                "s": "g",
                "ts": measure_start / 1000.0,
                "pid": 0,
                "tid": 0,
                "args": {"ts_ns": measure_start},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_perfetto(path, sink_or_events) -> dict:
    """Serialize a sink (or raw event list) to ``path`` as Perfetto
    JSON; returns the written object."""
    if isinstance(sink_or_events, TraceSink):
        document = to_perfetto(
            sink_or_events.events, measure_start=sink_or_events.measure_start
        )
    else:
        document = to_perfetto(sink_or_events)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return document
