"""The probe API and the telemetry bus.

A :class:`Probe` is a bound emitter: one category, one sink, truthy.
The disabled counterpart is *absence* — components carry a ``probe``
attribute that defaults to ``None`` (bound at class definition, never
touched on the hot path) and emission sites read::

    if self.probe is not None:
        self.probe(now, "vref", self.channel_id, rank=rank, bank=bank)

placed only on branches that already fire rarely.  :data:`NULL_PROBE`
is the defensive falsy no-op for call sites that prefer holding a
callable over holding ``None``; both spellings cost nothing when
observability is off.

:class:`TelemetryBus` owns the per-run sinks (trace ring buffer, epoch
metrics collector) and hands out probes per category.  The
:class:`~repro.sim.system.System` wires a bus through every layer at
construction time (``System(..., obs=bus)``).
"""

from __future__ import annotations

from dataclasses import dataclass


class _NullProbe:
    """Falsy, callable, argument-agnostic no-op (the disabled probe)."""

    __slots__ = ()

    def __call__(self, *args, **kwargs) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_PROBE"


#: The process-wide disabled probe (falsy; calling it does nothing).
NULL_PROBE = _NullProbe()


class Probe:
    """A category-bound event emitter attached to a trace sink."""

    __slots__ = ("category", "_emit")

    def __init__(self, sink, category: str) -> None:
        self.category = category
        # Bind the sink's emit method once: a probe call is one
        # dictionary build plus one deque append.
        self._emit = sink.emit

    def __bool__(self) -> bool:
        return True

    def __call__(self, ts: float, name: str, track: int = 0, **args) -> None:
        """Record an instant event at ``ts`` (simulated nanoseconds).

        ``track`` maps to the Perfetto thread lane (the memory channel
        for per-channel layers, 0 for system-level ones); keyword
        arguments become the event's payload.
        """
        self._emit(ts, self.category, name, track, args or None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Probe({self.category!r})"


@dataclass(frozen=True)
class ObsConfig:
    """What the telemetry bus records.

    Everything defaults to off: a default-constructed bus is inert and
    a ``System`` built without one is the production configuration.
    """

    #: Record typed trace events (and the DRAM command stream).
    trace: bool = False
    #: Ring-buffer bound on retained trace events (oldest drop first;
    #: :attr:`TraceSink.dropped` counts the loss).
    trace_limit: int = 500_000
    #: Mirror the DRAM command stream into the trace via the device's
    #: ``command_log`` hook (only meaningful with ``trace=True``).
    trace_commands: bool = True
    #: Collect per-epoch metrics rows.
    metrics: bool = False
    #: Metrics sampling period; ``None`` defers to the system default
    #: (the channel-0 mechanism's epoch where it has one, else half the
    #: refresh window — the same rule the OS governor uses).
    metrics_epoch_ns: float | None = None


class TelemetryBus:
    """Per-run observability switchboard: sinks plus probe hand-out."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        from repro.obs.metrics import EpochMetricsCollector
        from repro.obs.trace import TraceSink

        self.config = config or ObsConfig()
        #: The trace sink, or ``None`` when tracing is off.
        self.trace: TraceSink | None = (
            TraceSink(self.config.trace_limit) if self.config.trace else None
        )
        #: The metrics collector, or ``None`` when metrics are off.
        self.metrics: EpochMetricsCollector | None = (
            EpochMetricsCollector() if self.config.metrics else None
        )

    @property
    def enabled(self) -> bool:
        """Whether any sink is live (an inert bus wires nothing)."""
        return self.trace is not None or self.metrics is not None

    def probe(self, category: str):
        """A :class:`Probe` for ``category`` when tracing is on, else
        :data:`NULL_PROBE` (falsy — callers binding component probe
        attributes store ``None`` instead and skip the call entirely).
        """
        if self.trace is None:
            return NULL_PROBE
        return Probe(self.trace, category)

    def note_measurement_reset(self, now: float) -> None:
        """Forward the warmup boundary to every sink: counters sampled
        after this instant reflect the measured phase."""
        if self.trace is not None:
            self.trace.note_measurement_reset(now)
        if self.metrics is not None:
            self.metrics.note_measurement_reset(now)
