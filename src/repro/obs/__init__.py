"""Simulator-wide observability: probes, traces, metrics, profiling.

The telemetry bus (:mod:`repro.obs.probe`) is the one switchboard every
layer of the stack reports through when observability is enabled:

* **probes** — typed instant events (mitigation decisions, throttle
  blocks, VREF/REF issue, D-CBF rotations, governor actions) emitted
  from already-rare branches, so the disabled path costs nothing;
* **traces** (:mod:`repro.obs.trace`) — a ring-buffered sink of those
  events plus the DRAM command stream (via the existing
  ``DramDevice.command_log`` hook), exportable as Chrome/Perfetto
  ``trace_event`` JSON for timeline viewing;
* **epoch metrics** (:mod:`repro.obs.metrics`) — periodic samples of
  RHLI per thread, blacklist occupancy, queue depths and throttle-block
  counters, as tidy per-epoch rows alongside :class:`SimResult`;
* **harness profiling** (:mod:`repro.obs.profile`) — per-job wall-clock
  and events/sec breakdowns folded into
  :class:`~repro.harness.parallel.SweepReport` and exported as a
  machine-readable sweep artifact (CLI ``--report-json``).

The zero-overhead contract: with observability off (the default),
component probe attributes stay ``None`` — bound once at init — and the
only residual cost is an attribute test on branches that already fire
rarely (a quota rejection, a REF/VREF issue, an epoch rotation).  The
golden fixtures and ``scripts/perf_guard.py`` pin this down.
"""

from repro.obs.metrics import EpochMetricsCollector
from repro.obs.probe import NULL_PROBE, ObsConfig, Probe, TelemetryBus
from repro.obs.profile import JobProfile, report_to_json, write_report_json
from repro.obs.trace import (
    ChannelCommandLog,
    TraceSink,
    to_perfetto,
    write_perfetto,
)

__all__ = [
    "NULL_PROBE",
    "ObsConfig",
    "Probe",
    "TelemetryBus",
    "TraceSink",
    "ChannelCommandLog",
    "to_perfetto",
    "write_perfetto",
    "EpochMetricsCollector",
    "JobProfile",
    "report_to_json",
    "write_report_json",
]
