"""Sweep-level profiling: per-job cost and the ``--report-json`` artifact.

:class:`JobProfile` is one job's execution record — wall-clock,
simulated events per second, cache disposition, attempts — collected by
:func:`repro.harness.parallel.run_jobs` into
``SweepReport.profiles``.  The collection cost is one ``perf_counter``
pair and one small object per job, nothing near the simulation hot
loop, so profiling is always on.

:func:`report_to_json` renders a whole :class:`SweepReport` (headline
counters, failures, per-job profiles, aggregate throughput) as a plain
JSON-safe dict; the CLI's ``--report-json`` flag writes it next to the
printed table so CI can archive sweep behaviour as a machine-readable
artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass
class JobProfile:
    """One job's execution record inside a sweep.

    ``status`` is the cache disposition: ``"cached"`` (served from the
    persistent result cache; ``wall_s`` is the load time), ``"executed"``
    (simulated this sweep; ``wall_s`` covers the successful attempt —
    dispatch-to-result on the pool path), or ``"failed"`` (exhausted the
    retry ladder; ``events`` is zero and ``wall_s`` unknown).
    """

    label: str
    status: str
    wall_s: float = 0.0
    events: int = 0
    attempts: int = 1

    @property
    def events_per_sec(self) -> float | None:
        """Simulated events per wall-clock second (None when unknown)."""
        if self.events and self.wall_s > 0.0:
            return self.events / self.wall_s
        return None


def report_to_json(report) -> dict:
    """A :class:`~repro.harness.parallel.SweepReport` as a JSON-safe
    dict: headline counters, structured failures, per-job profiles, and
    aggregate throughput over the executed jobs."""
    profiles = list(getattr(report, "profiles", ()))
    executed = [p for p in profiles if p.status == "executed"]
    executed_wall = sum(p.wall_s for p in executed)
    executed_events = sum(p.events for p in executed)
    jobs = []
    for profile in profiles:
        row = asdict(profile)
        rate = profile.events_per_sec
        row["events_per_sec"] = round(rate) if rate is not None else None
        row["wall_s"] = round(row["wall_s"], 6)
        jobs.append(row)
    return {
        "total": report.total,
        "cached": report.cached,
        "executed": report.executed,
        "retries": report.retries,
        "timeouts": report.timeouts,
        "crashes": report.crashes,
        "elapsed_s": round(report.elapsed_s, 3),
        "failures": [
            {
                "key": repr(failure.key),
                "kind": failure.kind,
                "attempts": failure.attempts,
                "error": failure.error,
            }
            for failure in report.failures
        ],
        "jobs": jobs,
        "aggregate": {
            "executed_wall_s": round(executed_wall, 3),
            "executed_events": executed_events,
            "events_per_sec": (
                round(executed_events / executed_wall)
                if executed_wall > 0.0 and executed_events
                else None
            ),
        },
    }


def write_report_json(report, path) -> dict:
    """Serialize :func:`report_to_json` to ``path``; returns the dict."""
    document = report_to_json(report)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def format_profile_breakdown(report, top: int = 10) -> str:
    """Human-readable per-job cost table: the ``top`` slowest executed
    jobs plus cached/failed tallies (rendered under CLI ``--progress``)."""
    from repro.harness.reporting import format_table

    profiles = list(getattr(report, "profiles", ()))
    if not profiles:
        return "no job profiles recorded"
    executed = sorted(
        (p for p in profiles if p.status == "executed"),
        key=lambda p: p.wall_s,
        reverse=True,
    )
    rows = []
    for profile in executed[:top]:
        rate = profile.events_per_sec
        rows.append(
            [
                profile.label,
                profile.status,
                round(profile.wall_s, 3),
                profile.events or None,
                round(rate) if rate is not None else None,
                profile.attempts,
            ]
        )
    cached = sum(1 for p in profiles if p.status == "cached")
    failed = sum(1 for p in profiles if p.status == "failed")
    table = format_table(
        ["job", "status", "wall s", "events", "ev/s", "tries"], rows
    )
    return f"{table}\n({len(executed)} executed, {cached} cached, {failed} failed)"
