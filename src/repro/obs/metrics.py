"""Per-epoch metrics sampling: time-resolved rows beside ``SimResult``.

The end-of-run aggregates say *how much* a mechanism acted; these rows
say *when*.  Once per sampling epoch (an event the
:class:`~repro.sim.system.System` schedules, exactly like a governor
review) the collector snapshots, per channel:

* **RHLI per thread** — the mechanism's OS telemetry (BlockHammer
  family; mechanisms without RHLI tracking contribute no rows);
* **blacklist occupancy** — rows at/above the blacklisting threshold in
  the active D-CBF window (mechanisms exposing
  ``blacklist_occupancy()``);
* **queue depths** — total read/write queue depth plus per-bank depth
  for occupied banks;
* **throttle-block counters** — cumulative per-thread blocked/quota-
  blocked injections (deltas between epochs give the rate);
* **victim-refresh backlog** — VREFs queued but not yet issued.

Rows are *tidy*: one ``(epoch, time_ns, phase, channel, metric, index,
value)`` record per observation, so downstream analysis pivots freely.
``phase`` distinguishes warmup samples from measured ones (counters
reset at the warmup boundary, which the collector is notified of).
Sampling events ride the ordinary event queue and therefore only
perturb ``SimResult.events_processed`` — the one field excluded from
result-equality comparisons — so enabling metrics never changes
simulation results.
"""

from __future__ import annotations

import csv
import io

#: Tidy-row field order (also the CSV header).
FIELDS = ("epoch", "time_ns", "phase", "channel", "metric", "index", "value")


class EpochMetricsCollector:
    """Accumulates tidy per-epoch metric rows from a running system."""

    def __init__(self) -> None:
        self.rows: list[dict] = []
        self.epochs = 0
        self.phase = "measure"
        self._reset_at: float | None = None

    # ------------------------------------------------------------------
    def note_measurement_reset(self, now: float) -> None:
        """Warmup ended at ``now``: later samples read reset counters."""
        self._reset_at = now
        self.phase = "measure"

    def begin_warmup(self) -> None:
        """Mark samples as warmup-phase until the measurement reset."""
        self.phase = "warmup"

    # ------------------------------------------------------------------
    def sample(self, system, now: float) -> None:
        """Record one epoch's rows from ``system`` (duck-typed: anything
        with the :class:`~repro.sim.system.System` surface works)."""
        epoch = self.epochs
        self.epochs += 1
        rows = self.rows
        phase = self.phase
        memsys = system.memsys
        telemetry = memsys.mechanism_telemetry()

        def add(channel: int, metric: str, index, value) -> None:
            rows.append(
                {
                    "epoch": epoch,
                    "time_ns": now,
                    "phase": phase,
                    "channel": channel,
                    "metric": metric,
                    "index": index,
                    "value": value,
                }
            )

        for channel, controller in enumerate(memsys.controllers):
            tele = telemetry[channel]
            if tele.thread_rhli is not None:
                for thread, value in enumerate(tele.thread_rhli):
                    add(channel, "rhli", thread, value)
            occupancy = getattr(
                memsys.mitigations[channel], "blacklist_occupancy", None
            )
            if occupancy is not None:
                add(channel, "blacklist_occupancy", "", occupancy())
            for metric, queue in (
                ("read_queue_depth", controller.read_queue),
                ("write_queue_depth", controller.write_queue),
            ):
                add(channel, metric, "", len(queue))
                for bank_key, bucket in queue.by_bank.items():
                    if bucket:
                        add(channel, f"{metric}_bank", bank_key, len(bucket))
            add(channel, "vref_backlog", "", controller._pending_vref_count)
            for thread, stats in enumerate(controller.thread_stats):
                blocked = stats.blocked_injections
                quota = stats.quota_blocked_injections
                if blocked:
                    add(channel, "blocked_injections", thread, blocked)
                if quota:
                    add(channel, "throttle_blocked", thread, quota)

    # ------------------------------------------------------------------
    def measured_rows(self) -> list[dict]:
        """Rows sampled during the measured phase only."""
        return [row for row in self.rows if row["phase"] == "measure"]

    def to_csv(self) -> str:
        """The tidy rows as CSV text (header + one line per row)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=FIELDS, lineterminator="\n")
        writer.writeheader()
        writer.writerows(self.rows)
        return buffer.getvalue()

    def write_csv(self, path) -> int:
        """Write :meth:`to_csv` to ``path``; returns the row count."""
        with open(path, "w") as handle:
            handle.write(self.to_csv())
        return len(self.rows)
