"""Security analysis (Section 5): epoch types, attack constraints, the
infeasibility solver, and adversarial pattern simulation."""

from repro.security.epochs import EpochType, EpochModel
from repro.security.constraints import AttackConstraints
from repro.security.solver import SecurityProof, prove_safety
from repro.security.adversary import (
    OptimalAttacker,
    simulate_optimal_attack,
    max_acts_in_any_window,
)

__all__ = [
    "EpochType",
    "EpochModel",
    "AttackConstraints",
    "SecurityProof",
    "prove_safety",
    "OptimalAttacker",
    "simulate_optimal_attack",
    "max_acts_in_any_window",
]
