"""The infeasibility proof (Section 5).

The paper uses an analytical solver [154] to show no epoch-count vector
satisfies all constraints of Table 3.  We do the same two ways:

* **LP relaxation** (scipy ``linprog``): maximize total activations over
  real-valued epoch counts.  The LP optimum upper-bounds every integer
  attack, so ``lp_max < NRH*`` proves no attack exists.
* **Exhaustive integer enumeration**: for the small epoch budgets real
  configurations produce (tREFW / (tCBF/2) epochs), enumerate every
  valid integer vector and confirm the bound — a cross-check of the LP
  and a constructive worst case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.config import BlockHammerConfig
from repro.security.constraints import AttackConstraints


@dataclass(frozen=True)
class SecurityProof:
    """Outcome of the Section 5 analysis for one configuration.

    ``lp_max_activations`` / ``enumeration_max_activations`` follow the
    paper's whole-epoch framework (Tables 2/3) literally.  The
    ``fast_delayed_max`` bound decomposes any refresh window into fast
    (pre-blacklist, tRC-paced, at most NBL per filter lifetime) and
    delayed (tDelay-paced) activations; it is conservative for *any*
    window placement — including windows that straddle epoch boundaries,
    which the whole-epoch model cannot see — and is the bound ``safe``
    is judged on.
    """

    nrh_star: float
    lp_max_activations: float
    enumeration_max_activations: int | None
    best_counts: tuple[int, int, int, int, int] | None
    max_epochs: int
    fast_delayed_max: float

    @property
    def safe(self) -> bool:
        """True when no attack can exceed NRH* (the paper's conclusion).

        Eq. 1 is designed so the worst schedule lands *exactly at* the
        per-window budget; exceeding it is impossible.
        """
        bound = max(self.lp_max_activations, self.fast_delayed_max)
        if self.enumeration_max_activations is not None:
            bound = max(bound, float(self.enumeration_max_activations))
        return bound <= self.nrh_star

    @property
    def safety_margin(self) -> float:
        """NRH* minus the best achievable activation count."""
        return self.nrh_star - max(self.lp_max_activations, self.fast_delayed_max)


def fast_delayed_bound(config: BlockHammerConfig) -> float:
    """Upper-bound activations of one row in any tREFW-long window.

    Any activation is either *fast* (row not yet blacklisted) or
    *delayed* (>= tDelay since the row's last activation).  The active
    filter always covers the current and previous epoch, so fast
    activations are limited to NBL per two-epoch filter lifetime —
    ``NBL * ceil(E/2)`` in a window of E epochs — and delayed
    activations fill the remaining time at one per tDelay.
    """
    import math

    epochs = max(1, int(config.t_refw_ns / config.epoch_ns))
    fast = config.nbl * math.ceil(epochs / 2)
    fast_time = fast * config.t_rc_ns
    delayed = max(0.0, (config.t_refw_ns - fast_time)) / config.t_delay_ns
    return fast + delayed


def _solve_lp(constraints: AttackConstraints) -> float:
    c = -constraints.objective()  # linprog minimizes
    a_ub, b_ub = constraints.inequality_matrix()
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * 5, method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"LP solve failed: {result.message}")
    return -result.fun


def _enumerate(
    constraints: AttackConstraints, limit: int
) -> tuple[int, tuple[int, int, int, int, int]] | None:
    """Exhaustive search over integer epoch-count vectors."""
    if constraints.max_epochs > limit:
        return None
    best = (-1, (0, 0, 0, 0, 0))
    budget = constraints.max_epochs
    for n0, n1, n2, n3 in itertools.product(range(budget + 1), repeat=4):
        if n0 + n1 + n2 + n3 > budget:
            continue
        n4 = budget - (n0 + n1 + n2 + n3)
        counts = (n0, n1, n2, n3, n4)
        if not constraints.satisfied_by(counts):
            continue
        total = constraints.activations(counts)
        if total > best[0]:
            best = (total, counts)
    if best[0] < 0:
        return 0, (0, 0, 0, 0, 0)
    return best


def prove_safety(
    config: BlockHammerConfig,
    ordering_slack: int = 0,
    enumeration_limit: int = 12,
) -> SecurityProof:
    """Run the full Section 5 analysis for a configuration.

    ``enumeration_limit`` bounds the exhaustive search (epoch budgets
    beyond it rely on the LP bound alone, which is already sufficient).
    """
    constraints = AttackConstraints.for_config(config, ordering_slack)
    lp_max = _solve_lp(constraints)
    enumerated = _enumerate(constraints, enumeration_limit)
    if enumerated is None:
        enum_max, best_counts = None, None
    else:
        enum_max, best_counts = enumerated
    return SecurityProof(
        nrh_star=config.nrh_star,
        lp_max_activations=lp_max,
        enumeration_max_activations=enum_max,
        best_counts=best_counts,
        max_epochs=constraints.max_epochs,
        fast_delayed_max=fast_delayed_bound(config),
    )
