"""The constraints a successful RowHammer attack must satisfy
(Section 5, Table 3).

An attack is a sequence of epochs; with ``n_i`` = number of epochs of
type ``T_i`` inside one refresh window, a *successful* attack needs:

1. total activations exceed the threshold, with all epochs fitting in
   the window:  ``sum(n_i * Nepmax_i) >= NRH*`` and
   ``sum(n_i) <= floor(tREFW / tep)``;
2. sequence validity: a type can only appear after one of its allowed
   predecessors, which collapses (Table 3) to ``n2 <= n3 + s`` and
   ``n3 <= n2 + s``.  The paper's constraints are the equalities
   (``s = 0``, the default); a slack accommodates sequence-edge effects
   but also admits epoch-count vectors that the inter-epoch NBL*
   coupling (which this independent-epoch model drops) makes physically
   unrealizable, so nonzero slack is for sensitivity analysis only —
   the adversarial simulation (``repro.security.adversary``) provides
   the coupling-faithful empirical check;
3. non-negativity: ``n_i >= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BlockHammerConfig
from repro.security.epochs import EpochModel, EpochType


@dataclass(frozen=True)
class AttackConstraints:
    """Linear-program form of Table 3 for one configuration.

    Maximize ``c . n`` subject to ``A_ub @ n <= b_ub`` and ``n >= 0``,
    where ``c[i] = Nepmax(T_i)``.
    """

    nepmax: tuple[int, ...]
    max_epochs: int
    ordering_slack: int
    target: float  # NRH*: the count a successful attack must reach

    @classmethod
    def for_config(
        cls, config: BlockHammerConfig, ordering_slack: int = 0
    ) -> "AttackConstraints":
        model = EpochModel(config)
        return cls(
            nepmax=tuple(model.nepmax(t) for t in EpochType),
            max_epochs=model.epochs_per_refresh_window(),
            ordering_slack=ordering_slack,
            target=config.nrh_star,
        )

    def objective(self) -> np.ndarray:
        """Coefficients of the activation-count objective."""
        return np.array(self.nepmax, dtype=float)

    def inequality_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """(A_ub, b_ub) for ``A_ub @ n <= b_ub``."""
        # n indices: [n0, n1, n2, n3, n4]
        a_ub = np.array(
            [
                [1, 1, 1, 1, 1],  # total epochs fit in the window
                [0, 0, 1, -1, 0],  # n2 <= n3 + slack
                [0, 0, -1, 1, 0],  # n3 <= n2 + slack
            ],
            dtype=float,
        )
        b_ub = np.array(
            [self.max_epochs, self.ordering_slack, self.ordering_slack], dtype=float
        )
        return a_ub, b_ub

    def satisfied_by(self, counts: tuple[int, int, int, int, int]) -> bool:
        """Whether an epoch-count vector meets constraints (2) and (3)."""
        if any(c < 0 for c in counts):
            return False
        if sum(counts) > self.max_epochs:
            return False
        n2, n3 = counts[2], counts[3]
        return abs(n2 - n3) <= self.ordering_slack

    def activations(self, counts: tuple[int, int, int, int, int]) -> int:
        """Total activations achieved by an epoch-count vector."""
        return sum(n * m for n, m in zip(counts, self.nepmax))
