"""Adversarial activation-pattern simulation.

Complements the analytical proof with a constructive check: an
:class:`OptimalAttacker` generates the theoretically-worst activation
schedule against RowBlocker (an NBL-burst at tRC pace at every epoch
boundary where the row is clean, tDelay-spaced activations otherwise —
the T2/T4 pattern the epoch analysis identifies as optimal), drives a
real :class:`~repro.core.rowblocker.RowBlocker` instance with it, and
measures the maximum activation count any sliding refresh window ever
contains.  BlockHammer is safe iff that maximum stays below NRH*.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import BlockHammerConfig
from repro.core.rowblocker import RowBlocker
from repro.utils.rng import DeterministicRng


def max_acts_in_any_window(times: list[float], window_ns: float) -> int:
    """Maximum number of timestamps within any sliding window."""
    best = 0
    window: deque[float] = deque()
    for t in times:
        window.append(t)
        while window and window[0] <= t - window_ns:
            window.popleft()
        if len(window) > best:
            best = len(window)
    return best


class OptimalAttacker:
    """Greedy adversary: activates the target row at every instant
    RowBlocker permits, as early as permitted."""

    def __init__(self, config: BlockHammerConfig, seed: int = 7) -> None:
        self.config = config
        self.rowblocker = RowBlocker(
            config,
            num_ranks=1,
            banks_per_rank=1,
            rows_per_bank=65536,
            rng=DeterministicRng(seed),
        )
        self.act_times: list[float] = []

    def run(self, duration_ns: float, row: int = 100) -> list[float]:
        """Hammer ``row`` as fast as RowBlocker allows for ``duration``.

        Greedy earliest-allowed activation is optimal for a single row:
        delaying an ACT can never increase the number of ACTs that fit
        in any later window.
        """
        now = 0.0
        t_rc = self.config.t_rc_ns
        while now < duration_ns:
            allowed = self.rowblocker.allowed_at(0, 0, row, 0, now)
            if allowed > now:
                now = allowed
                continue
            self.rowblocker.on_activate(0, 0, row, now)
            self.act_times.append(now)
            now += t_rc
        return self.act_times


def simulate_optimal_attack(
    config: BlockHammerConfig,
    num_windows: float = 3.0,
    row: int = 100,
) -> int:
    """Max activations the greedy adversary achieves in any tREFW window.

    Runs for ``num_windows`` refresh windows so the sliding-window
    maximum can straddle epoch boundaries arbitrarily.
    """
    attacker = OptimalAttacker(config)
    times = attacker.run(num_windows * config.t_refw_ns, row=row)
    return max_acts_in_any_window(times, config.t_refw_ns)
