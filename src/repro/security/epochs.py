"""Epoch-type analysis (Section 5, Table 2).

RowBlocker's D-CBF partitions time into epochs of tCBF/2.  From the
perspective of one aggressor row, each epoch falls into one of five
types, determined by whether the row's activation count stayed below the
blacklisting threshold NBL in the previous and current epochs.  Each
type bounds the number of activations the row can receive in the epoch
(``Nepmax``):

* **T0** — not blacklisted, stays below NBL* (= NBL minus the previous
  epoch's count; we bound with the worst case NBL):   Nepmax = NBL* - 1.
* **T1** — crosses NBL* but not NBL: blacklisted mid-epoch, clean at the
  next boundary:                                       Nepmax = NBL - 1.
* **T2** — crosses NBL: an NBL*-long burst at tRC pace, then tDelay-
  spaced activations fill the epoch:
  ``Nepmax = NBL* + floor((tep - NBL* * tRC) / tDelay)``.
* **T3** — blacklisted from the previous epoch, stays below NBL:
  Table 2 lists the definitional range bound ``NBL - 1``, but a T3
  epoch's row is blacklisted for the *entire* epoch (the newly-active
  filter still carries the previous epoch's >= NBL counts), so every
  activation is tDelay-spaced and the effective bound is
  ``min(NBL - 1, floor(tep / tDelay))`` — the bound the paper's solver
  outcome implies.
* **T4** — blacklisted throughout: every activation tDelay-spaced:
                                       ``Nepmax = floor(tep / tDelay)``.
"""

from __future__ import annotations

import enum

from repro.core.config import BlockHammerConfig


class EpochType(enum.Enum):
    """The five epoch types of Table 2."""

    T0 = 0
    T1 = 1
    T2 = 2
    T3 = 3
    T4 = 4


#: Which epoch types may precede each type (footnote 2 of the paper):
#: T0/T1/T2 require the row to start the epoch un-blacklisted, so they
#: follow T0/T1/T3; T3/T4 require it blacklisted, so they follow T2/T4.
PREDECESSORS: dict[EpochType, frozenset[EpochType]] = {
    EpochType.T0: frozenset({EpochType.T0, EpochType.T1, EpochType.T3}),
    EpochType.T1: frozenset({EpochType.T0, EpochType.T1, EpochType.T3}),
    EpochType.T2: frozenset({EpochType.T0, EpochType.T1, EpochType.T3}),
    EpochType.T3: frozenset({EpochType.T2, EpochType.T4}),
    EpochType.T4: frozenset({EpochType.T2, EpochType.T4}),
}


class EpochModel:
    """Computes per-type activation bounds for a BlockHammer config."""

    def __init__(self, config: BlockHammerConfig) -> None:
        self.config = config
        self.tep = config.epoch_ns

    def nepmax(self, epoch_type: EpochType) -> int:
        """Maximum activations an aggressor row can receive in an epoch
        of the given type (Table 2, worst case NBL* = NBL)."""
        cfg = self.config
        nbl_star = cfg.nbl  # worst case: zero activations carried over
        if epoch_type is EpochType.T0:
            return max(0, nbl_star - 1)
        if epoch_type is EpochType.T1:
            return max(0, cfg.nbl - 1)
        if epoch_type is EpochType.T3:
            # Blacklisted for the whole epoch: tDelay-spaced throughout.
            return min(max(0, cfg.nbl - 1), int(self.tep / cfg.t_delay_ns))
        if epoch_type is EpochType.T2:
            burst_time = nbl_star * cfg.t_rc_ns
            remaining = max(0.0, self.tep - burst_time)
            return nbl_star + int(remaining / cfg.t_delay_ns)
        if epoch_type is EpochType.T4:
            return int(self.tep / cfg.t_delay_ns)
        raise ValueError(f"unknown epoch type {epoch_type}")

    def all_bounds(self) -> dict[EpochType, int]:
        """Nepmax for every type (the Table 2 column)."""
        return {t: self.nepmax(t) for t in EpochType}

    def epochs_per_refresh_window(self) -> int:
        """How many full epochs fit in one tREFW."""
        return int(self.config.t_refw_ns / self.tep)
