"""RowHammer mitigation mechanisms: the shared controller-side interface,
the six state-of-the-art baselines evaluated in the paper, and simple
increased-refresh / naive-throttling references."""

from repro.mitigations.base import (
    MitigationContext,
    MitigationMechanism,
    NoMitigation,
    VictimRefresh,
)
from repro.mitigations.para import Para
from repro.mitigations.prohit import ProHit
from repro.mitigations.mrloc import MrLoc
from repro.mitigations.cbt import CounterBasedTree
from repro.mitigations.twice import TWiCe
from repro.mitigations.graphene import Graphene
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.naive_throttle import NaiveThrottling
from repro.mitigations.registry import build_mitigation, available_mitigations

__all__ = [
    "MitigationContext",
    "MitigationMechanism",
    "NoMitigation",
    "VictimRefresh",
    "Para",
    "ProHit",
    "MrLoc",
    "CounterBasedTree",
    "TWiCe",
    "Graphene",
    "IncreasedRefreshRate",
    "NaiveThrottling",
    "build_mitigation",
    "available_mitigations",
]
