"""CBT: Counter-Based Tree (Seyedzadeh et al., ISCA 2018).

CBT tracks activations with an adaptive tree of counters per bank.  The
root covers the whole bank; when a node's counter crosses its level
threshold the region splits in half (children inherit the count, which
keeps the bound conservative), concentrating counters on hot regions.
When a maximum-depth (leaf) counter reaches the final threshold, *all
rows of the leaf region* are refreshed and the counter resets — which is
why CBT's refresh cost grows as trees get hot.  All counters clear every
refresh window.

The paper's configuration is a six-level tree with 125 counters and
thresholds growing exponentially from 1K to the RowHammer threshold; the
depth and counter budget are configurable so perf experiments can use
deeper trees (smaller leaf regions) under scaled specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


@dataclass
class _Node:
    start: int
    size: int
    level: int
    count: int = 0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class CounterBasedTree(MitigationMechanism):
    """CBT with configurable depth and counter budget."""

    name = "cbt"
    comprehensive_protection = True
    commodity_compatible = False
    scales_with_vulnerability = False
    deterministic_protection = True

    def __init__(
        self,
        levels: int = 6,
        counter_budget: int = 125,
        min_threshold: int | None = None,
        max_refresh_rows: int = 128,
    ) -> None:
        super().__init__()
        self.levels = levels
        self.counter_budget = counter_budget
        self._min_threshold_override = min_threshold
        self.max_refresh_rows = max_refresh_rows
        self._roots: dict[tuple[int, int], _Node] = {}
        self._counters_used: dict[tuple[int, int], int] = {}
        self._thresholds: list[int] = []
        self._next_reset = 0.0
        self.region_refreshes = 0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        final = max(2, int(effective_nrh(context) / 2))
        first = self._min_threshold_override or max(2, final // 32)
        first = min(first, final)
        # Exponential threshold ladder across levels (Section 7: "1K to
        # the RowHammer threshold").
        self._thresholds = []
        for level in range(self.levels):
            if self.levels == 1:
                ratio = 1.0
            else:
                ratio = level / (self.levels - 1)
            value = first * (final / first) ** ratio
            self._thresholds.append(max(2, int(round(value))))
        self._next_reset = context.spec.tREFW

    # ------------------------------------------------------------------
    def _root(self, rank: int, bank: int) -> _Node:
        key = (rank, bank)
        if key not in self._roots:
            self._roots[key] = _Node(0, self.context.spec.rows_per_bank, 0)
            self._counters_used[key] = 1
        return self._roots[key]

    def on_time_advance(self, now: float) -> None:
        while now >= self._next_reset:
            self._roots.clear()
            self._counters_used.clear()
            self._next_reset += self.context.spec.tREFW

    def advance_to(self, now: float) -> float:
        self.on_time_advance(now)
        return self._next_reset

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        key = (rank, bank)
        node = self._root(rank, bank)
        while not node.is_leaf:
            mid = node.start + node.size // 2
            node = node.left if row < mid else node.right
        node.count += 1
        threshold = self._thresholds[min(node.level, self.levels - 1)]
        if node.count < threshold:
            return
        can_split = (
            node.level < self.levels - 1
            and node.size >= 2
            and self._counters_used.get(key, 0) + 2 <= self.counter_budget
        )
        if can_split:
            half = node.size // 2
            # Children inherit the parent count: conservative (an
            # aggressor's count never decreases on a split).
            node.left = _Node(node.start, half, node.level + 1, node.count)
            node.right = _Node(node.start + half, node.size - half, node.level + 1, node.count)
            self._counters_used[key] += 2
        else:
            self._refresh_region(rank, bank, node, now)
            node.count = 0

    def _refresh_region(self, rank: int, bank: int, node: _Node, now: float) -> None:
        """Refresh the leaf region's rows (bounded for simulation cost).

        CBT refreshes every row of the region; for very large regions we
        refresh an evenly-spaced bounded subset plus the region edges —
        the performance cost is modeled by the VREF commands either way.
        """
        rows = range(node.start, node.start + node.size)
        if node.size > self.max_refresh_rows:
            step = node.size // self.max_refresh_rows
            rows = range(node.start, node.start + node.size, step)
        for row in rows:
            self.queue_victim_refresh(rank, bank, row)
        self.region_refreshes += 1
        if self.probe is not None:
            self.probe(
                now,
                "region_refresh",
                self.obs_track,
                rank=rank,
                bank=bank,
                start=node.start,
                size=node.size,
            )
