"""TWiCe: Time Window Counters (Lee et al., ISCA 2019).

TWiCe keeps one table entry per recently-activated row: an activation
count and an age (in pruning intervals).  At every pruning interval
(tREFI) it drops entries whose average activation rate is too low to
ever reach the RowHammer threshold within the refresh window — which
keeps the table small for benign workloads.  When an entry's count
crosses the row-hammer threshold, the row's neighbors are refreshed and
the entry resets.

As in the paper (Section 7), the pruning stage limits how far TWiCe can
scale: our implementation follows the TWiCe-Ideal variant of Kim et al.
[72] so it can be configured below NRH = 32K for the scaling study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


@dataclass
class _Entry:
    count: int = 0
    life: int = 0  # pruning intervals since allocation


class TWiCe(MitigationMechanism):
    """TWiCe(-Ideal) with tREFI pruning."""

    name = "twice"
    comprehensive_protection = True
    commodity_compatible = False
    scales_with_vulnerability = False
    deterministic_protection = True

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[tuple[int, int], dict[int, _Entry]] = {}
        self._next_prune = 0.0
        self.refresh_threshold = 0
        self.prune_rate = 0.0
        self.refreshes_injected = 0
        self.max_table_entries = 0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        spec = context.spec
        self.refresh_threshold = max(2, int(effective_nrh(context) / 2))
        intervals_per_window = max(1.0, spec.tREFW / spec.tREFI)
        # An entry that cannot reach the refresh threshold within the
        # refresh window at its observed average rate is safe to prune.
        self.prune_rate = self.refresh_threshold / intervals_per_window
        self._next_prune = spec.tREFI

    # ------------------------------------------------------------------
    def on_time_advance(self, now: float) -> None:
        while now >= self._next_prune:
            for table in self._tables.values():
                dead = []
                for row, entry in table.items():
                    entry.life += 1
                    if entry.count < entry.life * self.prune_rate:
                        dead.append(row)
                for row in dead:
                    del table[row]
            self._next_prune += self.context.spec.tREFI

    def advance_to(self, now: float) -> float:
        self.on_time_advance(now)
        return self._next_prune

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        table = self._tables.setdefault((rank, bank), {})
        entry = table.setdefault(row, _Entry())
        entry.count += 1
        self.max_table_entries = max(self.max_table_entries, len(table))
        if entry.count >= self.refresh_threshold:
            victims = 0
            for victim in self.context.adjacency(
                rank, bank, row, self.context.blast_radius
            ):
                self.queue_victim_refresh(rank, bank, victim)
                self.refreshes_injected += 1
                victims += 1
            entry.count = 0
            entry.life = 0
            if self.probe is not None:
                self.probe(
                    now,
                    "neighbor_refresh",
                    self.obs_track,
                    rank=rank,
                    bank=bank,
                    row=row,
                    victims=victims,
                )
