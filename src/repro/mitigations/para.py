"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

On every activation the controller refreshes one physically-adjacent row
with a small probability ``p``.  A victim escapes refresh during an
``N``-activation hammer campaign with probability ``(1 - p/2)^N``
(each trial picks one of the victim's two sides), so for a reliability
target ``F`` (the paper uses a typical consumer target of 1e-15 per
refresh window) PARA needs::

    p = 2 * (1 - F**(1 / NRH_eff))

PARA is stateless and area-free but probabilistic (no deterministic
guarantee) and needs adjacency knowledge — and its ``p`` (and hence its
performance/energy overhead) grows quickly as NRH shrinks (Section 8.3).
"""

from __future__ import annotations

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


class Para(MitigationMechanism):
    """PARA with the paper's reliability-target tuning."""

    name = "para"
    comprehensive_protection = True
    commodity_compatible = False  # needs in-DRAM adjacency knowledge
    scales_with_vulnerability = False
    deterministic_protection = False

    def __init__(
        self, failure_target: float = 1e-15, probability: float | None = None
    ) -> None:
        super().__init__()
        self.failure_target = failure_target
        # Explicit override: scaled-window experiments must tune p at the
        # *paper-scale* NRH (p per-ACT does not scale with the window).
        self._probability_override = probability
        self.probability = 0.0
        self.refreshes_injected = 0

    @staticmethod
    def tuned_probability(nrh_eff: float, failure_target: float = 1e-15) -> float:
        """The reliability-target tuning rule (see module docstring)."""
        return min(1.0, 2.0 * (1.0 - failure_target ** (1.0 / nrh_eff)))

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        if self._probability_override is not None:
            self.probability = self._probability_override
        else:
            self.probability = self.tuned_probability(
                effective_nrh(context), self.failure_target
            )

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        if self.context.rng.uniform() >= self.probability:
            return
        neighbors = self.context.adjacency(rank, bank, row, 1)
        if not neighbors:
            return
        victim = self.context.rng.choice(neighbors)
        self.queue_victim_refresh(rank, bank, victim)
        self.refreshes_injected += 1
