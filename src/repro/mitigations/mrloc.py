"""MRLoc: Mitigating Row-hammering based on memory Locality
(You & Yang, DAC 2019).

MRLoc extends PARA with a queue of recently-refreshed victim rows: when
a candidate victim is found in the queue (i.e., the same aggressor
neighborhood is being hammered repeatedly — high temporal locality), the
refresh probability is boosted; cold candidates keep a low base
probability.  Parameters are the published empirical design point; like
PRoHIT, the original work gives no scaling rule, so the design point is
fixed (Table 4 note).
"""

from __future__ import annotations

from collections import deque

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


class MrLoc(MitigationMechanism):
    """MRLoc: locality-adaptive PARA."""

    name = "mrloc"
    comprehensive_protection = True
    commodity_compatible = False
    scales_with_vulnerability = False
    deterministic_protection = False

    def __init__(
        self,
        queue_depth: int = 64,
        base_probability: float | None = None,
        locality_boost: float = 8.0,
        failure_target: float = 1e-15,
    ) -> None:
        super().__init__()
        self.queue_depth = queue_depth
        self._base_probability = base_probability
        self.locality_boost = locality_boost
        self.failure_target = failure_target
        self.probability = 0.0
        self._queue: deque[tuple[int, int, int]] = deque(maxlen=queue_depth)
        self.refreshes_injected = 0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        if self._base_probability is not None:
            self.probability = self._base_probability
        else:
            # Base probability tuned like PARA but lower: the locality
            # boost recovers protection for localized (real) attacks.
            nrh_eff = effective_nrh(context)
            para_p = 2.0 * (1.0 - self.failure_target ** (1.0 / nrh_eff))
            self.probability = min(1.0, para_p / 2.0)

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        neighbors = self.context.adjacency(rank, bank, row, 1)
        if not neighbors:
            return
        victim = self.context.rng.choice(neighbors)
        key = (rank, bank, victim)
        p = self.probability
        if key in self._queue:
            p = min(1.0, p * self.locality_boost)
        if self.context.rng.uniform() < p:
            self.queue_victim_refresh(rank, bank, victim)
            self._queue.append(key)
            self.refreshes_injected += 1
