"""PRoHIT: Probabilistic management of a row-history table
(Son et al., DAC 2017).

PRoHIT extends PARA with a small probabilistically-managed history
table split into *hot* and *cold* sides.  Activated rows enter the cold
table with a small probability; re-activations promote entries toward
the hot table; on every auto-refresh tick the mechanism refreshes the
neighbors of the hottest entry.

The original paper provides empirically-determined fixed parameters for
NRH = 2K and — as the BlockHammer paper notes — "does not provide a
concrete discussion on how to adjust" them for other thresholds, so this
implementation keeps the published design point (insert probability
1/16, 4 hot + 16 cold entries) regardless of the configured NRH and is
marked non-scalable in the Table 6 matrix.
"""

from __future__ import annotations

from repro.mitigations.base import MitigationContext, MitigationMechanism


class ProHit(MitigationMechanism):
    """PRoHIT at its published (NRH = 2K) design point."""

    name = "prohit"
    comprehensive_protection = True
    commodity_compatible = False
    scales_with_vulnerability = False
    deterministic_protection = False

    def __init__(
        self,
        hot_entries: int = 4,
        cold_entries: int = 16,
        insert_probability: float = 1.0 / 16.0,
    ) -> None:
        super().__init__()
        self.hot_entries = hot_entries
        self.cold_entries = cold_entries
        self.insert_probability = insert_probability
        # Per-bank tables: ordered lists of (row, score); index 0 hottest.
        self._hot: dict[tuple[int, int], list[int]] = {}
        self._cold: dict[tuple[int, int], list[int]] = {}
        self._next_tick = 0.0
        self.refreshes_injected = 0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        self._next_tick = context.spec.tREFI

    # ------------------------------------------------------------------
    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        key = (rank, bank)
        hot = self._hot.setdefault(key, [])
        cold = self._cold.setdefault(key, [])
        if row in hot:
            index = hot.index(row)
            if index > 0:  # promote toward the top
                hot[index - 1], hot[index] = hot[index], hot[index - 1]
            return
        if row in cold:
            cold.remove(row)
            hot.insert(len(hot), row)
            if len(hot) > self.hot_entries:
                demoted = hot.pop()
                cold.insert(0, demoted)
                del cold[self.cold_entries:]
            return
        if self.context.rng.uniform() < self.insert_probability:
            cold.insert(0, row)
            del cold[self.cold_entries:]

    def on_time_advance(self, now: float) -> None:
        # Once per tREFI, refresh the neighbors of each bank's hottest
        # tracked row (piggybacking on the auto-refresh cadence).
        while now >= self._next_tick:
            for (rank, bank), hot in self._hot.items():
                if not hot:
                    continue
                target = hot.pop(0)
                for victim in self.context.adjacency(rank, bank, target, 1):
                    self.queue_victim_refresh(rank, bank, victim)
                    self.refreshes_injected += 1
            self._next_tick += self.context.spec.tREFI

    def advance_to(self, now: float) -> float:
        self.on_time_advance(now)
        return self._next_tick
