"""Naive proactive throttling (Greenfield & Levy patent [40]; Kim et al.
[73]; Mutlu [102]).

The straightforward throttling designs the paper contrasts BlockHammer
against (Section 9):

* **per-row counters** — count every row's activations exactly and block
  a row once it reaches the threshold until the refresh window rolls
  over.  Deterministic, but needs a counter per row (the prohibitive
  area cost BlockHammer's Bloom filters eliminate).
* **static slowdown** (``static_delay=True``) — stretch every ACT's
  minimum spacing so that *no* row can ever exceed the threshold:
  ``tDelay_static = tREFW / NRH_eff`` (a 42x–1350x tRC stretch for
  NRH = 32K/1K, which is why it is a strawman).
"""

from __future__ import annotations

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


class NaiveThrottling(MitigationMechanism):
    """Exact per-row counting with end-of-window blocking."""

    name = "naive-throttle"
    comprehensive_protection = True
    commodity_compatible = True
    scales_with_vulnerability = False
    deterministic_protection = True

    def __init__(self, static_delay: bool = False) -> None:
        super().__init__()
        self.static_delay = static_delay
        self.threshold = 0
        self._counts: dict[tuple[int, int, int], int] = {}
        self._window_end = 0.0
        self._static_gap = 0.0
        self._last_act: dict[tuple[int, int, int], float] = {}
        self.blocked_rows = 0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        self.threshold = max(1, int(effective_nrh(context)))
        self._window_end = context.spec.tREFW
        self._static_gap = context.spec.tREFW / self.threshold

    def on_time_advance(self, now: float) -> None:
        while now >= self._window_end:
            self._counts.clear()
            self._last_act.clear()
            self._window_end += self.context.spec.tREFW

    def advance_to(self, now: float) -> float:
        self.on_time_advance(now)
        return self._window_end

    def act_allowed_at(self, rank: int, bank: int, row: int, thread: int, now: float) -> float:
        key = (rank, bank, row)
        if self.static_delay:
            last = self._last_act.get(key)
            if last is None:
                return now
            return max(now, last + self._static_gap)
        if self._counts.get(key, 0) >= self.threshold:
            return self._window_end  # blocked until the window rolls over
        return now

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        key = (rank, bank, row)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        self._last_act[key] = now
        if count == self.threshold:
            self.blocked_rows += 1
