"""Graphene (Park et al., MICRO 2020): Misra–Gries frequent-element
tracking of row activations.

Graphene keeps, per bank, a Misra–Gries summary: a table of (row,
counter) pairs plus a spillover counter.  The summary guarantees that
any row activated at least ``W / (entries + 1)`` times in a window of
``W`` activations is present in the table with an estimate that
undercounts by at most the spillover value.  Sizing the table with
threshold ``T``::

    entries = ceil(W / T),   W = tREFW / tRC

guarantees no aggressor reaches ``2T`` activations unobserved; Graphene
refreshes neighbors each time a tracked counter crosses a multiple of
``T``.  The table resets every refresh window.

Graphene is deterministic and the strongest prior baseline in the paper;
its cost scales as CAM entries ∝ 1/NRH (Table 4).
"""

from __future__ import annotations

import math

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


class Graphene(MitigationMechanism):
    """Graphene with the original sizing equations."""

    name = "graphene"
    comprehensive_protection = True
    commodity_compatible = False
    scales_with_vulnerability = True
    deterministic_protection = True

    def __init__(self, threshold: int | None = None) -> None:
        super().__init__()
        self._threshold_override = threshold
        self.threshold = 0
        self.table_entries = 0
        self._tables: dict[tuple[int, int], dict[int, int]] = {}
        self._spill: dict[tuple[int, int], int] = {}
        self._next_reset = 0.0
        self.refreshes_injected = 0

    @staticmethod
    def sizing(nrh_eff: float, t_refw_ns: float, t_rc_ns: float) -> tuple[int, int]:
        """(threshold, table entries) per the Graphene equations."""
        threshold = max(2, int(nrh_eff / 4))
        window_acts = t_refw_ns / t_rc_ns
        entries = max(1, math.ceil(window_acts / threshold))
        return threshold, entries

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        spec = context.spec
        nrh_eff = effective_nrh(context)
        self.threshold, self.table_entries = self.sizing(nrh_eff, spec.tREFW, spec.tRC)
        if self._threshold_override is not None:
            self.threshold = self._threshold_override
        self._next_reset = spec.tREFW

    # ------------------------------------------------------------------
    def on_time_advance(self, now: float) -> None:
        while now >= self._next_reset:
            self._tables.clear()
            self._spill.clear()
            self._next_reset += self.context.spec.tREFW

    def advance_to(self, now: float) -> float:
        self.on_time_advance(now)
        return self._next_reset

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        key = (rank, bank)
        table = self._tables.setdefault(key, {})
        if row in table:
            table[row] += 1
            if table[row] % self.threshold == 0:
                self._refresh_neighbors(rank, bank, row, now)
            return
        if len(table) < self.table_entries:
            table[row] = 1
            return
        # Misra–Gries spillover update: replace the minimum entry when
        # the spill counter catches up with it, else absorb the ACT.
        spill = self._spill.get(key, 0)
        min_row = min(table, key=table.get)
        if table[min_row] <= spill + 1:
            estimate = table.pop(min_row)
            table[row] = estimate + 1
            self._spill[key] = estimate
        else:
            self._spill[key] = spill + 1

    def _refresh_neighbors(self, rank: int, bank: int, row: int, now: float) -> None:
        victims = 0
        for victim in self.context.adjacency(rank, bank, row, self.context.blast_radius):
            self.queue_victim_refresh(rank, bank, victim)
            self.refreshes_injected += 1
            victims += 1
        if self.probe is not None:
            self.probe(
                now,
                "neighbor_refresh",
                self.obs_track,
                rank=rank,
                bank=bank,
                row=row,
                victims=victims,
            )
