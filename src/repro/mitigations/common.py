"""Helpers shared by mitigation mechanisms."""

from __future__ import annotations

from repro.mitigations.base import MitigationContext


def effective_nrh(context: MitigationContext) -> float:
    """The per-aggressor threshold after the many-sided correction.

    Mirrors the paper's Eq. 3: every evaluated mechanism is configured
    for the attack model implied by the chip's blast radius and impact
    factors (double-sided attacks — blast radius 1 — halve NRH).
    """
    impact_sum = sum(
        context.blast_decay ** (k - 1) for k in range(1, context.blast_radius + 1)
    )
    return context.nrh / (2.0 * impact_sum)
