"""Factory registry mapping mechanism names to constructors.

The experiment harness and benchmarks refer to mechanisms by name; this
keeps sweep definitions declarative (``for name in MECHANISMS: ...``).
"""

from __future__ import annotations

from typing import Callable

from repro.mitigations.base import MitigationMechanism, NoMitigation
from repro.mitigations.cbt import CounterBasedTree
from repro.mitigations.graphene import Graphene
from repro.mitigations.mrloc import MrLoc
from repro.mitigations.naive_throttle import NaiveThrottling
from repro.mitigations.para import Para
from repro.mitigations.prohit import ProHit
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.twice import TWiCe
from repro.utils.validation import ConfigError

def _blockhammer(**kwargs) -> MitigationMechanism:
    # Imported lazily: repro.core.blockhammer imports this package's
    # ``base`` module, so a top-level import here would be circular.
    from repro.core.blockhammer import BlockHammer

    return BlockHammer(**kwargs)


def _blockhammer_observe(**kwargs) -> MitigationMechanism:
    from repro.core.blockhammer import BlockHammer

    return BlockHammer(observe_only=True, **kwargs)


def _blockhammer_os(**kwargs) -> MitigationMechanism:
    from repro.core.os_policy import BlockHammerWithOsPolicy

    return BlockHammerWithOsPolicy(**kwargs)


_FACTORIES: dict[str, Callable[..., MitigationMechanism]] = {
    "none": NoMitigation,
    "para": Para,
    "prohit": ProHit,
    "mrloc": MrLoc,
    "cbt": CounterBasedTree,
    "twice": TWiCe,
    "graphene": Graphene,
    "blockhammer": _blockhammer,
    "blockhammer-observe": _blockhammer_observe,
    "blockhammer-os": _blockhammer_os,
    "refresh-rate": IncreasedRefreshRate,
    "naive-throttle": NaiveThrottling,
}

#: The six state-of-the-art baselines of the paper's evaluation plus
#: BlockHammer, in the order of Figure 4/5 legends.
PAPER_MECHANISMS = ["para", "prohit", "mrloc", "cbt", "twice", "graphene", "blockhammer"]


def available_mitigations() -> list[str]:
    """All registered mechanism names."""
    return sorted(_FACTORIES)


def build_mitigation(name: str, **kwargs) -> MitigationMechanism:
    """Instantiate a mechanism by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown mitigation {name!r}; known: {', '.join(available_mitigations())}"
        ) from None
    return factory(**kwargs)
