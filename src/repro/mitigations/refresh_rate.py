"""Increased refresh rate (Apple EFI update [2]; analyzed in [72, 73]).

Refreshing all rows ``k`` times more often shrinks the window an
aggressor has to accumulate NRH activations.  Preventing *all* bit-flips
requires ``k >= (tREFW / tRC) / NRH_eff`` — at NRH = 32K that is already
~43x the standard rate, and the time spent refreshing overwhelms the
DRAM's availability (the paper cites 78% average performance overhead).
We clamp the interval to a configurable floor above tRFC so the
simulated channel keeps making (slow) forward progress.
"""

from __future__ import annotations

import math

from repro.mitigations.base import MitigationContext, MitigationMechanism
from repro.mitigations.common import effective_nrh


class IncreasedRefreshRate(MitigationMechanism):
    """Raise the refresh rate enough to outrun the RowHammer threshold."""

    name = "refresh-rate"
    comprehensive_protection = True
    commodity_compatible = True
    scales_with_vulnerability = False
    deterministic_protection = True

    def __init__(self, rate_multiplier: int | None = None, min_interval_factor: float = 1.25) -> None:
        super().__init__()
        self._override = rate_multiplier
        self.min_interval_factor = min_interval_factor
        self.rate_multiplier = 1
        self._scale = 1.0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        spec = context.spec
        if self._override is not None:
            self.rate_multiplier = self._override
        else:
            window_acts = spec.tREFW / spec.tRC
            self.rate_multiplier = max(1, math.ceil(window_acts / effective_nrh(context)))
        interval = spec.tREFI / self.rate_multiplier
        floor = spec.tRFC * self.min_interval_factor
        interval = max(interval, floor)
        self._scale = interval / spec.tREFI

    def refresh_interval_scale(self) -> float:
        return self._scale
