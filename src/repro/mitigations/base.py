"""The controller-side mitigation interface.

Every RowHammer mitigation mechanism in this repository implements
:class:`MitigationMechanism`.  The memory controller interacts with a
mechanism through four hooks:

* :meth:`~MitigationMechanism.act_allowed_at` — proactive throttling:
  the earliest time an ACT to (rank, bank, row) may issue.  Most
  mechanisms always answer "now"; BlockHammer's RowBlocker delays
  blacklisted, recently-activated rows (Section 3.1).
* :meth:`~MitigationMechanism.on_activate` — observation: called when an
  ACT actually issues, with the issuing thread.
* :meth:`~MitigationMechanism.drain_victim_refreshes` — reactive refresh:
  victim rows the controller must refresh (PARA, PRoHIT, MRLoc, CBT,
  TWiCe, Graphene).  Requires the adjacency oracle, i.e. knowledge of the
  in-DRAM row mapping (Section 2.3) — which is the compatibility
  challenge BlockHammer avoids.
* :meth:`~MitigationMechanism.max_inflight` — source throttling quota per
  <thread, bank> (AttackThrottler, Section 3.2.2).

Mechanisms receive a :class:`MitigationContext` at attach time with the
DRAM spec, thread count, a deterministic RNG, and the adjacency oracle.

Mechanisms additionally expose read-only **OS telemetry**
(:meth:`MitigationMechanism.os_telemetry`): the per-thread signals an
operating-system governor (:mod:`repro.os`) samples each scheduling
epoch — RHLI where the mechanism tracks it (Section 3.2.3), plus
blacklist/delay event counters.  The base implementation duck-types on
the attributes a mechanism actually has (mirroring the harness's
``channel_attribution`` extractor), so reactive baselines degrade
gracefully to "no signal" instead of every mechanism having to opt in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dram.spec import DramSpec
from repro.utils.rng import DeterministicRng

_FOREVER = float("inf")

# (rank, bank, logical_row) to refresh.
VictimRefresh = tuple[int, int, int]

# adjacency(rank, bank, logical_row, distance) -> logical victim rows.
AdjacencyOracle = Callable[[int, int, int, int], list[int]]


@dataclass
class MitigationContext:
    """Everything a mechanism may legitimately know at design time."""

    spec: DramSpec
    num_threads: int
    rng: DeterministicRng
    adjacency: AdjacencyOracle
    # Readily-available chip characterization (Section 9, property 2):
    # the RowHammer threshold, blast radius and impact factors come from
    # public characterization studies, not proprietary documentation.
    nrh: int = 32768
    blast_radius: int = 1
    blast_decay: float = 0.5
    #: The memory channel this mechanism instance protects.  BlockHammer
    #: is deployed per channel (Section 3); the MemorySystem builds one
    #: mechanism instance per channel and never shares state across them.
    channel: int = 0


@dataclass
class MechanismTelemetry:
    """One mechanism instance's OS-facing telemetry snapshot.

    ``thread_rhli`` is ``None`` for mechanisms without RHLI tracking
    (every baseline except the BlockHammer family); the event counters
    are zero where the mechanism has no corresponding hardware.  An OS
    governor aggregates snapshots across channels with the standing
    contract: counters sum, RHLI maxes.
    """

    #: Per-thread maximum RHLI on this instance (None = not tracked).
    thread_rhli: list[float] | None
    #: AttackThrottler events: ACTs to blacklisted rows.
    blacklisted_acts: int = 0
    #: RowBlocker delay counters (zero without delay statistics).
    total_acts: int = 0
    delayed_acts: int = 0
    false_positive_acts: int = 0


class MitigationMechanism:
    """Base class; the default implementation never interferes."""

    name = "base"
    #: Section 9 qualitative properties (Table 6), overridden per class.
    comprehensive_protection = False
    commodity_compatible = False
    scales_with_vulnerability = False
    deterministic_protection = False
    #: Trace probe (``mitigation`` category), bound via
    #: :meth:`bind_probe` when a telemetry bus is attached; stays None
    #: (class attribute, zero per-instance cost) otherwise.  Emission
    #: sites live only on rare branches (neighbor refreshes, blacklist
    #: hits, epoch rotations), never in per-ACT bookkeeping.
    probe = None
    #: Perfetto track for emitted events (the channel this instance
    #: protects); stamped in :meth:`bind_probe`.
    obs_track = 0

    def __init__(self) -> None:
        self.context: MitigationContext | None = None
        self._pending_vrefs: list[VictimRefresh] = []
        # Mechanisms that inherit the base act_allowed_at can never
        # block an ACT, so every scheduler verdict for them is stable
        # forever: the incremental FR-FCFS policy checks this flag once
        # per step and caches bank decisions until the bank is dirtied.
        self.never_blocks = type(self).act_allowed_at is MitigationMechanism.act_allowed_at
        # Mechanisms that inherit the base (no-op) on_time_advance have
        # no time-driven state at all: their default quiescence horizon
        # is "never".  A subclass that overrides on_time_advance without
        # also overriding advance_to falls back to the conservative
        # horizon (-inf), which makes the controller call advance_to on
        # every scheduling step — the legacy per-step cadence.
        self._default_horizon = (
            _FOREVER
            if type(self).on_time_advance is MitigationMechanism.on_time_advance
            else -_FOREVER
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def attach(self, context: MitigationContext) -> None:
        """Bind the mechanism to a system; called once before simulation."""
        self.context = context

    def bind_probe(self, probe) -> None:
        """Attach a trace probe (called by the System when a telemetry
        bus is live).  Subclasses with traced internal components
        override this to forward the probe (e.g. BlockHammer's
        RowBlocker emits the D-CBF rotation events itself)."""
        self.probe = probe
        if self.context is not None:
            self.obs_track = self.context.channel

    def on_time_advance(self, now: float) -> None:
        """Periodic maintenance hook, called once per controller step."""

    def advance_to(self, now: float) -> float:
        """Advance time-driven state to ``now`` and return the
        **quiescence horizon**: the next instant at which this
        mechanism's state can change through the passage of time alone
        (epoch/CBF rotation, window rollover, periodic victim-refresh
        emission, a coupled governor's review deadline).

        The contract: until the returned time, calling this hook again
        is a no-op — verdicts, quotas and victim-refresh queues can only
        change through commands the controller itself issues (which it
        observes via :meth:`on_activate`).  The controller therefore
        skips the call entirely while leaping batches of scheduling
        steps, and re-invokes it at the first step at or past the
        horizon.  Horizons may be conservative (early) but never late.

        The default advances via :meth:`on_time_advance` and returns
        +inf for mechanisms with no time-driven state; subclasses with
        periodic state override this to report their next deadline.
        """
        self.on_time_advance(now)
        return self._default_horizon

    # ------------------------------------------------------------------
    # Proactive throttling.
    # ------------------------------------------------------------------
    #: Horizon until which :meth:`act_allowed_at` verdicts are *stable*.
    #: This is the scheduler's epoch hook: before the returned time,
    #:
    #: * a "blocked until T" answer cannot move earlier — no event other
    #:   than the passage of time can make the row safe before T, and
    #: * a "safe" answer stays safe, except through an ACT issued to the
    #:   same (rank, bank) — which the controller reports by dirtying
    #:   that bank's cached scheduling state.
    #:
    #: The scheduler caches blocked verdicts on the request until
    #: ``min(allowed, act_block_stable)`` and whole-bank decisions (the
    #: incremental FR-FCFS candidate cache) until the same horizon.  The
    #: default (-inf) disables caching — every scheduling step
    #: re-queries, exactly like a naive scan.  Mechanisms with
    #: epoch-style state (BlockHammer's CBF rotation, see
    #: ``RowBlocker.next_rotate``) override this with their next
    #: state-change deadline; mechanisms that can never block at all are
    #: detected via ``never_blocks`` and treated as stable forever.
    act_block_stable: float = float("-inf")

    def act_allowed_at(self, rank: int, bank: int, row: int, thread: int, now: float) -> float:
        """Earliest time an ACT to (rank, bank, row) may issue (>= now)."""
        return now

    # ------------------------------------------------------------------
    # Observation.
    # ------------------------------------------------------------------
    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        """Called when an ACT issues."""

    # ------------------------------------------------------------------
    # Reactive refresh.
    # ------------------------------------------------------------------
    def queue_victim_refresh(self, rank: int, bank: int, row: int) -> None:
        """Internal helper: schedule a victim-row refresh."""
        self._pending_vrefs.append((rank, bank, row))

    def drain_victim_refreshes(self) -> list[VictimRefresh]:
        """Return and clear the pending victim-refresh list."""
        if not self._pending_vrefs:
            return []
        # Copy-and-clear rather than swap: the controller's batched hot
        # loop holds a direct reference to this list, so the object must
        # stay stable for the mechanism's lifetime.
        out = list(self._pending_vrefs)
        self._pending_vrefs.clear()
        return out

    # ------------------------------------------------------------------
    # Source throttling.
    # ------------------------------------------------------------------
    def max_inflight(self, thread: int, rank: int, bank: int) -> int | None:
        """In-flight request quota for <thread, bank>; None = unlimited."""
        return None

    def max_inflight_total(self, thread: int) -> int | None:
        """Quota on the thread's *total* in-flight requests (Section
        3.2: AttackThrottler limits both the per-bank and the total
        in-flight count); None = unlimited."""
        return None

    # ------------------------------------------------------------------
    # Refresh-rate adjustment (IncreasedRefreshRate overrides this).
    # ------------------------------------------------------------------
    def refresh_interval_scale(self) -> float:
        """Multiplier on tREFI (1.0 = standard refresh rate)."""
        return 1.0

    # ------------------------------------------------------------------
    # OS-facing telemetry (Section 3.2.3: the interface BlockHammer can
    # expose to system software; generalized to every mechanism).
    # ------------------------------------------------------------------
    def os_telemetry(self) -> MechanismTelemetry:
        """Snapshot this instance's OS-facing signals.

        Duck-typed on what the mechanism actually tracks —
        ``thread_max_rhli`` (RHLI), ``throttler`` (blacklist events),
        ``delay_stats`` (RowBlocker delay counters) — so mechanisms
        without those report ``None``/zero rather than raising.  The
        cadence contract matches ``on_time_advance``: counters are
        cumulative over the run, RHLI reflects the current epoch.
        """
        rhli = None
        if hasattr(self, "thread_max_rhli"):
            rhli = [
                self.thread_max_rhli(thread)
                for thread in range(self.context.num_threads)
            ]
        throttler = getattr(self, "throttler", None)
        stats = self.delay_stats() if hasattr(self, "delay_stats") else None
        return MechanismTelemetry(
            thread_rhli=rhli,
            blacklisted_acts=getattr(throttler, "blacklisted_acts_total", 0),
            total_acts=stats.total_acts if stats is not None else 0,
            delayed_acts=stats.delayed_acts if stats is not None else 0,
            false_positive_acts=(
                stats.false_positive_acts if stats is not None else 0
            ),
        )


class NoMitigation(MitigationMechanism):
    """The unprotected baseline system (paper's normalization target)."""

    name = "none"
    commodity_compatible = True
