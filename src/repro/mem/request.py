"""Memory requests as seen by the controller."""

from __future__ import annotations

import enum
import itertools

from repro.dram.address import BANK_KEY_BITS, DecodedAddress

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    """Read or write (cache-line granularity)."""

    READ = "read"
    WRITE = "write"


class ServiceClass(enum.Enum):
    """Row-buffer outcome of a request, recorded at first service."""

    HIT = "hit"  # row already open
    MISS = "miss"  # bank closed, ACT needed
    CONFLICT = "conflict"  # different row open, PRE needed first


class Request:
    """One cache-line memory request from a thread.

    Requests compare by identity: each models one physical in-flight
    access, and queue removal relies on the interpreter's identity fast
    path instead of a field-by-field comparison over every scanned
    entry.  A hand-written slotted class rather than a dataclass: a
    core constructs one per LLC miss, and the dataclass ``__init__`` +
    ``__post_init__`` pair costs a second Python call per request on
    that path.

    ``address`` carries the decoded DRAM coordinates.  The controller
    fills in ``service_class`` when the request first receives a command
    and ``complete_time`` when its data transfer finishes.
    ``queue_seq`` is assigned by the request queue on insertion and
    orders FR-FCFS tie-breaks (arrival order within the queue).

    ``blocked_until``/``blocked_wake`` cache a mitigation's "unsafe
    until ``blocked_wake``" verdict: the scheduler trusts it without
    re-querying while ``now < blocked_until`` (the verdict's stability
    horizon, see ``MitigationMechanism.act_block_stable``).
    """

    __slots__ = (
        "thread",
        "kind",
        "address",
        "arrival",
        "request_id",
        "service_class",
        "complete_time",
        "queue_seq",
        "blocked_until",
        "blocked_wake",
        "is_write",
        "channel",
        "rank",
        "bank",
        "row",
        "col",
        "bank_key",
    )

    def __init__(
        self,
        thread: int,
        kind: RequestKind,
        address: DecodedAddress,
        arrival: float,
        request_id: int | None = None,
        service_class: ServiceClass | None = None,
        complete_time: float | None = None,
        queue_seq: int = 0,
        blocked_until: float = 0.0,
        blocked_wake: float = 0.0,
    ) -> None:
        self.thread = thread
        self.kind = kind
        self.address = address
        self.arrival = arrival
        self.request_id = next(_request_ids) if request_id is None else request_id
        self.service_class = service_class
        self.complete_time = complete_time
        self.queue_seq = queue_seq
        self.blocked_until = blocked_until
        self.blocked_wake = blocked_wake
        # Denormalized plain attributes: these are read in the
        # scheduler's innermost loop (and the MemorySystem's channel
        # router), where a property or a nested dataclass hop per
        # access is measurable.
        self.is_write = kind is RequestKind.WRITE
        rank = address.rank
        bank = address.bank
        self.channel = address.channel
        self.rank = rank
        self.bank = bank
        self.row = address.row
        self.col = address.col
        self.bank_key = (rank << BANK_KEY_BITS) | bank

    def key(self) -> tuple[int, int]:
        """(rank, bank) the request targets."""
        return (self.address.rank, self.address.bank)
