"""Memory requests as seen by the controller."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.dram.address import BANK_KEY_BITS, DecodedAddress

_request_ids = itertools.count()


class RequestKind(enum.Enum):
    """Read or write (cache-line granularity)."""

    READ = "read"
    WRITE = "write"


class ServiceClass(enum.Enum):
    """Row-buffer outcome of a request, recorded at first service."""

    HIT = "hit"  # row already open
    MISS = "miss"  # bank closed, ACT needed
    CONFLICT = "conflict"  # different row open, PRE needed first


@dataclass(slots=True, eq=False)
class Request:
    """One cache-line memory request from a thread.

    Requests compare by identity (``eq=False``): each models one
    physical in-flight access, and queue removal relies on the
    interpreter's identity fast path instead of a field-by-field
    dataclass comparison over every scanned entry.

    ``address`` carries the decoded DRAM coordinates.  The controller
    fills in ``service_class`` when the request first receives a command
    and ``complete_time`` when its data transfer finishes.
    ``queue_seq`` is assigned by the request queue on insertion and
    orders FR-FCFS tie-breaks (arrival order within the queue).

    ``blocked_until``/``blocked_wake`` cache a mitigation's "unsafe
    until ``blocked_wake``" verdict: the scheduler trusts it without
    re-querying while ``now < blocked_until`` (the verdict's stability
    horizon, see ``MitigationMechanism.act_block_stable``).
    """

    thread: int
    kind: RequestKind
    address: DecodedAddress
    arrival: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    service_class: ServiceClass | None = None
    complete_time: float | None = None
    queue_seq: int = 0
    blocked_until: float = 0.0
    blocked_wake: float = 0.0
    is_write: bool = field(init=False)
    channel: int = field(init=False)
    rank: int = field(init=False)
    bank: int = field(init=False)
    row: int = field(init=False)
    col: int = field(init=False)
    bank_key: int = field(init=False)

    def __post_init__(self) -> None:
        # Denormalized plain attributes: these are read in the
        # scheduler's innermost loop (and the MemorySystem's channel
        # router), where a property or a nested dataclass hop per
        # access is measurable.
        self.is_write = self.kind is RequestKind.WRITE
        self.channel = self.address.channel
        self.rank = self.address.rank
        self.bank = self.address.bank
        self.row = self.address.row
        self.col = self.address.col
        self.bank_key = (self.rank << BANK_KEY_BITS) | self.bank

    def key(self) -> tuple[int, int]:
        """(rank, bank) the request targets."""
        return (self.address.rank, self.address.bank)
