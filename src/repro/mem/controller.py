"""The memory controller (Table 5 configuration).

The controller owns the read/write request queues, the FR-FCFS
scheduler, the refresh manager, and the attached RowHammer mitigation
mechanism.  It is driven by the simulation engine through :meth:`step`,
which issues at most one DRAM command per invocation (modeling the
one-command-per-cycle command bus) and reports when it next needs
attention, enabling event-driven simulation without per-cycle ticking.

Priority order within a step:

1. overdue auto-refresh (precharge-all then REF),
2. victim refreshes queued by reactive mitigation mechanisms,
3. normal requests via the scheduling policy (reads first, writes when
   draining or when no reads are pending).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.utils.aggregate import merge_fields

from repro.dram.address import bank_key
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.dram.spec import DramSpec
from repro.mem.queues import RequestQueue
from repro.mem.refresh import RefreshManager
from repro.mem.request import Request, ServiceClass
from repro.mem.scheduler import FrFcfsPolicy, SchedulingPolicy, Selection
from repro.mitigations.base import MitigationMechanism, NoMitigation
from repro.utils.validation import require

_NEVER = 1.0e30
_NO_RANKS: frozenset[int] = frozenset()


def _peek_nothing() -> None:
    """``peek()`` stand-in for single-step entry points (no events)."""
    return None


@dataclass(frozen=True)
class ControllerConfig:
    """Controller sizing and policy knobs (defaults follow Table 5)."""

    read_queue_depth: int = 64
    write_queue_depth: int = 64
    write_drain_high: int = 48
    write_drain_low: int = 16

    def __post_init__(self) -> None:
        require(0 < self.write_drain_low <= self.write_drain_high, "bad drain marks")
        require(self.write_drain_high <= self.write_queue_depth, "bad drain marks")


@dataclass
class ThreadMemStats:
    """Per-thread memory-system statistics."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activations: int = 0
    read_latency_sum: float = 0.0
    read_latency_count: int = 0
    blocked_injections: int = 0
    #: The subset of ``blocked_injections`` rejected by the mitigation's
    #: in-flight quotas (AttackThrottler) rather than by queue capacity.
    #: This is the throttle-pressure signal OS telemetry keys on: plain
    #: queue-full backpressure hits benign threads too and must never
    #: read as attack suspicion.
    quota_blocked_injections: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def avg_read_latency(self) -> float:
        if self.read_latency_count == 0:
            return 0.0
        return self.read_latency_sum / self.read_latency_count

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @classmethod
    def merged(cls, parts: "list[ThreadMemStats]") -> "ThreadMemStats":
        """Sum per-channel statistics into one aggregate (the
        average-latency property recomputes from the merged sums)."""
        out = cls()
        for part in parts:
            merge_fields(out, part)
        return out


class MemoryController:
    """One channel's memory controller."""

    #: Trace probe (``mem`` category), bound by the System when a
    #: telemetry bus is attached.  Emission sites live only on rare
    #: branches (quota rejections, REF/VREF issue), never in the
    #: scheduling hot loop, so the disabled path costs nothing.
    probe = None

    def __init__(
        self,
        spec: DramSpec,
        device: DramDevice,
        mitigation: MitigationMechanism | None = None,
        policy: SchedulingPolicy | None = None,
        config: ControllerConfig | None = None,
        num_threads: int = 1,
        channel_id: int = 0,
        refresh_phase_ns: float = 0.0,
    ) -> None:
        self.spec = spec
        self.channel_id = channel_id
        self.device = device
        self.mitigation = mitigation or NoMitigation()
        self.policy = policy or FrFcfsPolicy()
        self.config = config or ControllerConfig()
        self.read_queue = RequestQueue(self.config.read_queue_depth)
        self.write_queue = RequestQueue(self.config.write_queue_depth)
        # Direct bindings to the queues' backing lists (never
        # reassigned): the drain-mode checks run every scheduling step
        # and a C-level len() beats a method call there.
        self._read_items = self.read_queue.items
        self._write_items = self.write_queue.items
        self.refresh = RefreshManager(
            spec, self.mitigation.refresh_interval_scale(), refresh_phase_ns
        )
        self.num_threads = num_threads
        self.thread_stats = [ThreadMemStats() for _ in range(num_threads)]
        self.on_request_complete = None  # set by the System
        self._write_draining = False
        # The mitigation's quiescence horizon (see ``advance_to``):
        # persisted across batches because mechanism deadlines only ever
        # move forward, so a stored horizon can be conservative (early)
        # but never late.  Starts at -inf: the first step advances
        # unconditionally.
        self._mitig_horizon = -_NEVER
        # Pending victim refreshes, FIFO per bank: one queue per bank
        # keeps each scheduling step O(banks) while letting every idle
        # bank service refreshes in parallel (mechanisms like CBT can
        # queue hundreds at once).
        self._vrefs: dict[tuple[int, int], deque[int]] = {}
        self._pending_vref_count = 0
        # Per <thread, bank> in-flight counters keyed by the packed int
        # ``(thread << 16) | Request.bank_key`` — admission and
        # completion run once per request, and an int key avoids a
        # tuple allocation + hash on each of those lookups.
        self._inflight: dict[int, int] = {}
        self._inflight_per_thread: dict[int, int] = {}
        # Completion-latency floats resolved once; added left-to-right
        # in _complete_request exactly as ``now + tCL + tBL`` was (a
        # pre-summed constant would round differently).
        self._tCL = spec.tCL
        self._tCWL = spec.tCWL
        self._tBL = spec.tBL
        self.vref_count = 0
        self.commands_issued = 0
        self.total_enqueued = 0
        # Fused per-queue select closures (policies that support them):
        # the batched hot loop calls these when no rank is refresh-
        # draining, skipping the per-call rebinding of every stable
        # object the incremental scheduler touches.
        make_fused = getattr(self.policy, "make_fused", None)
        self._fused_read = self._fused_write = None
        if make_fused is not None:
            self._fused_read = make_fused(self.read_queue, self.device, self.mitigation)
            self._fused_write = make_fused(self.write_queue, self.device, self.mitigation)
        # Bound invalidation endpoints for the per-command hot path
        # (_issue_for_request): equivalent to _invalidate_bank, minus
        # two method frames per issued command.
        self._rq_cache_pop = self.read_queue.bank_cache.pop
        self._rq_dirty_add = self.read_queue.dirty.add
        self._wq_cache_pop = self.write_queue.bank_cache.pop
        self._wq_dirty_add = self.write_queue.dirty.add

    # ------------------------------------------------------------------
    # Request injection (called by cores / the System).
    # ------------------------------------------------------------------
    def can_accept(self, request: Request) -> bool:
        """Whether the request can enter the queues right now.

        Enforces queue capacity plus the mitigation's in-flight quotas,
        both per <thread, bank> and per thread (AttackThrottler).
        """
        return self._admission(request) is None

    def _admission(self, request: Request) -> str | None:
        """``None`` to accept, else the rejection reason: ``"queue"``
        (capacity backpressure) or ``"quota"`` (mitigation throttling —
        counted separately for OS telemetry)."""
        queue = self.write_queue if request.is_write else self.read_queue
        if queue.full:
            return "queue"
        total_quota = self.mitigation.max_inflight_total(request.thread)
        if total_quota is not None and (
            self._inflight_per_thread.get(request.thread, 0) >= total_quota
        ):
            return "quota"
        quota = self.mitigation.max_inflight(
            request.thread, request.address.rank, request.address.bank
        )
        if quota is None:
            return None
        key = (request.thread << 16) | request.bank_key
        if self._inflight.get(key, 0) < quota:
            return None
        return "quota"

    def enqueue(self, request: Request, now: float) -> bool:
        """Insert a request; returns False (and counts it) if rejected."""
        reason = self._admission(request)
        if reason is not None:
            stats = self.thread_stats[request.thread]
            stats.blocked_injections += 1
            if reason == "quota":
                stats.quota_blocked_injections += 1
                if self.probe is not None:
                    self.probe(
                        now,
                        "throttle_block",
                        self.channel_id,
                        thread=request.thread,
                        rank=request.address.rank,
                        bank=request.address.bank,
                    )
            return False
        queue = self.write_queue if request.is_write else self.read_queue
        queue.push(request)
        self.total_enqueued += 1
        key = (request.thread << 16) | request.bank_key
        self._inflight[key] = self._inflight.get(key, 0) + 1
        self._inflight_per_thread[request.thread] = (
            self._inflight_per_thread.get(request.thread, 0) + 1
        )
        stats = self.thread_stats[request.thread]
        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        self._classify(request, stats)
        return True

    def _classify(self, request: Request, stats: ThreadMemStats) -> None:
        """Record the row-buffer outcome against arrival-time bank state.

        Arrival-time classification measures the access stream's row
        locality (the RBCPKI of Table 8) independently of scheduling
        reorderings, which can split one physical PRE+ACT pair across
        two requests.
        """
        bank = self.device.flat_banks[request.bank_key]
        if bank.open_row == request.address.row:
            request.service_class = ServiceClass.HIT
            stats.row_hits += 1
        elif bank.open_row is None:
            request.service_class = ServiceClass.MISS
            stats.row_misses += 1
        else:
            request.service_class = ServiceClass.CONFLICT
            stats.row_conflicts += 1

    def inflight_for(self, thread: int, rank: int, bank: int) -> int:
        """Current in-flight request count for a <thread, bank> pair."""
        return self._inflight.get((thread << 16) | bank_key(rank, bank), 0)

    # ------------------------------------------------------------------
    # Dirty-bank tracking for the incremental scheduler.
    # ------------------------------------------------------------------
    def _invalidate_bank(self, rank_id: int, bank_id: int) -> None:
        """A command changed (rank, bank)'s row-buffer or verdict state:
        drop both queues' cached scheduling decisions for it.

        Called for **every** command the controller addresses to a bank
        (ACT/PRE/RD/WR/VREF; REF dirties the whole rank): cached
        entries snapshot the bank's local timing (next ACT/PRE/column
        instants) at examination time, so any command that moves those
        — a column command shifts the bank's next-PRE and opposite-kind
        column timing too — must void both queues' entries for the
        bank.  Queue arrivals/departures additionally invalidate in
        ``RequestQueue.push``/``remove``; time-driven verdict expiry is
        handled by the cache entries' own expiry instants.  Rank-level
        ACT spacing (tRRD/tFAW) and data-bus occupancy are deliberately
        *not* part of any entry — the scheduler reads those shared
        scalars live each step.
        """
        key = bank_key(rank_id, bank_id)
        self.read_queue.invalidate_bank(key)
        self.write_queue.invalidate_bank(key)

    def _invalidate_rank(self, rank_id: int) -> None:
        """Rank-wide command (REF): every bank's timing state moved."""
        self.read_queue.invalidate_rank(rank_id)
        self.write_queue.invalidate_rank(rank_id)

    # ------------------------------------------------------------------
    # Main scheduling step(s).
    # ------------------------------------------------------------------
    def step(self, now: float) -> float:
        """Issue at most one command at ``now``.

        Returns the next time the controller needs attention (``_NEVER``
        when it is completely idle, in which case the System wakes it on
        the next arrival).  One iteration of :meth:`run_until`; the
        event loop uses the batched form, this single-step entry point
        serves tests and tick-by-tick oracles.
        """
        _, wake = self.run_until(now, _peek_nothing, now)
        return wake

    def next_event_time(self, now: float) -> float:
        """The channel's quiescence horizon: the earliest future instant
        at which this controller can make progress, folding the refresh
        deadline, victim-refresh backlog and the scheduler's normative
        ``Selection.next_ready`` into one time.  Returns ``now`` when a
        command could issue immediately (or conservatively when victim
        refreshes are pending), ``_NEVER`` when fully idle.
        """
        due = self.refresh.earliest
        if due <= now or self._pending_vref_count:
            return now
        selection = self._select_request_command(now, _NO_RANKS)
        if selection.command is not None:
            return now
        wake = selection.next_ready
        return due if due < wake else wake

    def run_until(self, now: float, peek, hard_limit: float) -> tuple[int, float]:
        """Run scheduling steps starting at ``now``, leaping local time
        from each step directly to the next, until the next step would
        land at or past the next pending global event (``peek()``) or
        beyond ``hard_limit`` (the warmup/deadline boundary, across
        which the event loop must regain control).

        Returns ``(steps, wake)``: how many scheduling steps executed
        and the controller's next wake time (``_NEVER`` when idle).
        The step *times* are exactly the wake times the event loop
        would have delivered one-by-one — after a command issues the
        next step runs one tCK later; an idle step leaps to the folded
        quiescence horizon (refresh deadline, victim-refresh readiness,
        ``Selection.next_ready``, mitigation ``advance_to`` horizon) —
        so command streams are bit-identical to single-stepping and
        only the event-queue round trips disappear.
        """
        mitigation = self.mitigation
        refresh = self.refresh
        vrefs = self._vrefs
        tCK = self.spec.tCK
        num_ranks = self.spec.ranks
        config = self.config
        drain_high = config.write_drain_high
        drain_low = config.write_drain_low
        read_items = self._read_items
        write_items = self._write_items
        read_queue = self.read_queue
        write_queue = self.write_queue
        device = self.device
        policy_select = self.policy.select_raw
        fused_read = self._fused_read
        fused_write = self._fused_write
        issue_for = self._issue_for_request
        advance_to = mitigation.advance_to
        pv = mitigation._pending_vrefs
        draining = self._write_draining
        horizon = self._mitig_horizon
        t = now
        steps = 0
        while True:
            steps += 1
            if t >= horizon:
                horizon = advance_to(t)
            # Victim refreshes accumulate from on_activate (reactive
            # mechanisms) as well as advance_to (PRoHIT's periodic
            # ticks), so the hand-off runs every step, not only at
            # horizon crossings.
            if pv:
                for rank_id, bank_id, row in pv:
                    key = (rank_id, bank_id)
                    queue = vrefs.get(key)
                    if queue is None:
                        vrefs[key] = deque((row,))
                    else:
                        queue.append(row)
                self._pending_vref_count += len(pv)
                pv.clear()

            # A future REF deadline is a wake source; an already-pending
            # one is handled by the refresh steps below (whose own
            # bank-timing estimates provide the wake time).  The common
            # case is no rank overdue, decided by the earliest deadline.
            due = refresh.earliest
            issued = False
            if due > t:
                wake = due
                blocked_ranks = _NO_RANKS
            else:
                wake = _NEVER
                blocked_ranks = frozenset(
                    r for r in range(num_ranks) if refresh.pending(r, t)
                )
                # 1. Auto-refresh steps for overdue ranks.
                for rank_id in blocked_ranks:
                    done, w = self._refresh_step(rank_id, t)
                    if done:
                        issued = True
                        break
                    if w < wake:
                        wake = w

            # 2. Victim refreshes from reactive mechanisms.
            if not issued and self._pending_vref_count:
                done, w = self._vref_step(t, blocked_ranks)
                if done:
                    issued = True
                elif w < wake:
                    wake = w

            # 3. Normal requests.  Inlined drain-mode + policy dispatch
            # (keep in lockstep with _select_request_command, which
            # serves the probe/oracle path): writes are served in
            # batches — forced drain above the high watermark,
            # opportunistic drain when reads are idle and a batch has
            # accumulated.
            if not issued:
                writes_pending = len(write_items)
                if writes_pending >= drain_high:
                    draining = True
                elif writes_pending <= drain_low:
                    draining = False
                fused = fused_read is not None and not blocked_ranks
                if draining or (not read_items and writes_pending >= drain_low):
                    if fused:
                        cmd, req, ready = fused_write(t)
                    else:
                        cmd, req, ready = policy_select(
                            write_queue, device, mitigation, t, blocked_ranks
                        )
                    if cmd is None:
                        if fused:
                            cmd, req, ready2 = fused_read(t)
                        else:
                            cmd, req, ready2 = policy_select(
                                read_queue, device, mitigation, t, blocked_ranks
                            )
                        if ready2 < ready:
                            ready = ready2
                elif fused:
                    cmd, req, ready = fused_read(t)
                else:
                    cmd, req, ready = policy_select(
                        read_queue, device, mitigation, t, blocked_ranks
                    )
                if cmd is not None:
                    issue_for(cmd, req, t)
                    issued = True
                elif ready < wake:
                    wake = ready

            if issued:
                wake = t + tCK

            # Batch continuation: the next step happens at ``wake``
            # unless the event loop must regain control first — idle
            # channel, warmup/deadline crossing, or a pending global
            # event at or before the wake (same-instant events carry
            # smaller sequence numbers and must drain first).
            if wake >= _NEVER or wake > hard_limit:
                break
            if wake <= t:
                # Defensive: a non-advancing wake re-fires through the
                # event loop after same-instant peers, like the legacy
                # single-step path did.
                wake = t
                break
            limit = peek()
            if limit is not None and wake >= limit:
                break
            t = wake
        self._write_draining = draining
        self._mitig_horizon = horizon
        return steps, wake

    def busy(self) -> bool:
        """True while any request or victim refresh is pending."""
        return bool(
            len(self.read_queue) or len(self.write_queue) or self._pending_vref_count
        )

    # ------------------------------------------------------------------
    # Refresh handling.
    # ------------------------------------------------------------------
    def _refresh_step(self, rank_id: int, now: float) -> tuple[bool, float]:
        """Advance one overdue rank toward its REF.

        Returns (issued_a_command, next_interesting_time).
        """
        rank = self.device.ranks[rank_id]
        if rank.all_banks_precharged():
            ready = max(
                bank.earliest(CommandKind.REF) for bank in rank.banks
            )
            if ready <= now:
                self.device.issue(Command(CommandKind.REF, rank_id, 0), now)
                self.refresh.on_ref_issued(rank_id, now)
                if self.probe is not None:
                    self.probe(now, "ref", self.channel_id, rank=rank_id)
                self.commands_issued += 1
                self._invalidate_rank(rank_id)
                return True, now
            return False, ready
        # Precharge open banks, earliest-ready first.
        best_t = _NEVER
        for bank in rank.banks:
            if bank.open_row is None:
                continue
            t = bank.earliest(CommandKind.PRE)
            if t <= now:
                self.device.issue(
                    Command(CommandKind.PRE, rank_id, bank.bank_id, bank.open_row), now
                )
                self.commands_issued += 1
                self._invalidate_bank(rank_id, bank.bank_id)
                return True, now
            best_t = min(best_t, t)
        return False, best_t

    # ------------------------------------------------------------------
    # Victim-refresh handling.
    # ------------------------------------------------------------------
    def _vref_step(self, now: float, blocked_ranks: frozenset[int]) -> tuple[bool, float]:
        """Service the victim-refresh queues (FIFO per bank)."""
        best_t = _NEVER
        for (rank_id, bank_id), queue in self._vrefs.items():
            if not queue or rank_id in blocked_ranks:
                continue
            bank = self.device.bank(rank_id, bank_id)
            if bank.open_row is not None:
                cmd = Command(CommandKind.PRE, rank_id, bank_id, bank.open_row)
            else:
                cmd = Command(CommandKind.VREF, rank_id, bank_id, queue[0])
            t = self.device.earliest_issue(cmd, now)
            if t <= now:
                self.device.issue(cmd, now)
                self.commands_issued += 1
                self._invalidate_bank(rank_id, bank_id)
                if cmd.kind is CommandKind.VREF:
                    queue.popleft()
                    if not queue:
                        # Prune drained banks so later steps do not
                        # rescan them (safe: we return immediately).
                        del self._vrefs[(rank_id, bank_id)]
                    self._pending_vref_count -= 1
                    self.vref_count += 1
                    if self.probe is not None:
                        self.probe(
                            now,
                            "vref",
                            self.channel_id,
                            rank=rank_id,
                            bank=bank_id,
                            row=cmd.row,
                        )
                return True, now
            if t < best_t:
                best_t = t
        return False, best_t

    # ------------------------------------------------------------------
    # Normal request handling.
    # ------------------------------------------------------------------
    def _select_request_command(
        self, now: float, blocked_ranks: frozenset[int]
    ) -> Selection:
        """Run the policy over reads/writes per the drain mode."""
        writes_pending = len(self._write_items)
        if writes_pending >= self.config.write_drain_high:
            self._write_draining = True
        elif writes_pending <= self.config.write_drain_low:
            self._write_draining = False

        # Writes are served in batches: forced drain above the high
        # watermark, opportunistic drain when reads are idle and a batch
        # has accumulated.  Outside those windows, writes never issue
        # row commands — a lone write's precharge would ping-pong open
        # rows underneath the read stream.
        opportunistic = not self._read_items and (
            writes_pending >= self.config.write_drain_low
        )
        if self._write_draining or opportunistic:
            sel = self.policy.select(
                self.write_queue, self.device, self.mitigation, now, blocked_ranks
            )
            if sel.command is not None:
                return sel
            sel2 = self.policy.select(
                self.read_queue, self.device, self.mitigation, now, blocked_ranks
            )
            if sel2.command is not None:
                return sel2
            return Selection(None, None, min(sel.next_ready, sel2.next_ready))

        sel = self.policy.select(
            self.read_queue, self.device, self.mitigation, now, blocked_ranks
        )
        return sel

    def _issue_for_request(self, cmd: Command, request: Request, now: float) -> None:
        """Commit a policy-selected command and update request state."""
        self.device.issue(cmd, now)
        self.commands_issued += 1

        kind = cmd.kind
        if kind is CommandKind.ACT:
            self.thread_stats[request.thread].activations += 1
            self.mitigation.on_activate(
                cmd.rank, cmd.bank, cmd.row, request.thread, now
            )
        elif kind is not CommandKind.PRE:
            self._complete_request(request, cmd, now)
        # The row-buffer state moved (and for ACT the mitigation
        # observed it) — both queues' cached decisions for this bank
        # are void.  Inlined _invalidate_bank: the command always
        # targets the request's own bank here.
        key = request.bank_key
        self._rq_cache_pop(key, None)
        self._rq_dirty_add(key)
        self._wq_cache_pop(key, None)
        self._wq_dirty_add(key)

    def _complete_request(self, request: Request, cmd: Command, now: float) -> None:
        """Retire a request whose column command just issued."""
        queue = self.write_queue if request.is_write else self.read_queue
        queue.remove(request)
        thread = request.thread
        self._inflight[(thread << 16) | request.bank_key] -= 1
        self._inflight_per_thread[thread] -= 1
        if cmd.kind is CommandKind.RD:
            done = now + self._tCL + self._tBL
            stats = self.thread_stats[thread]
            stats.read_latency_sum += done - request.arrival
            stats.read_latency_count += 1
        else:
            done = now + self._tCWL + self._tBL
        request.complete_time = done
        if self.on_request_complete is not None:
            self.on_request_complete(request, done)
