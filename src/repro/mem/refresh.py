"""Auto-refresh management.

The controller must issue one all-bank REF per rank every tREFI (8192
REFs walk the whole array once per tREFW).  When a REF becomes due the
controller stops activating the rank, precharges all banks, and issues
the REF; the rank is unavailable for tRFC.

``interval_scale`` < 1 models the "increased refresh rate" mitigation
approach (Section 9), which refreshes rows more often to shrink the
window an attacker has to accumulate activations.
"""

from __future__ import annotations

from repro.dram.spec import DramSpec
from repro.utils.validation import require


class RefreshManager:
    """Tracks per-rank REF deadlines.

    ``phase_offset_ns`` shifts every deadline by a fixed amount; the
    MemorySystem staggers per-channel offsets (deterministically from
    the experiment seed) so a multi-channel system does not refresh all
    channels in lockstep — lockstep refresh is unrealistic and hides
    bank-conflict effects during the refresh shadow.
    """

    def __init__(
        self,
        spec: DramSpec,
        interval_scale: float = 1.0,
        phase_offset_ns: float = 0.0,
    ) -> None:
        require(interval_scale > 0.0, "refresh interval scale must be positive")
        require(phase_offset_ns >= 0.0, "refresh phase offset must be >= 0")
        self.spec = spec
        self.interval = spec.tREFI * interval_scale
        self.phase_offset_ns = phase_offset_ns
        # Stagger rank deadlines so multi-rank channels do not refresh
        # simultaneously.
        self.next_due = [
            phase_offset_ns + self.interval * (1.0 + r / max(1, spec.ranks))
            for r in range(spec.ranks)
        ]
        self.refreshes_issued = [0] * spec.ranks
        #: Cached ``min(next_due)``, maintained on every REF issue so
        #: the controller's hot loop reads one attribute instead of
        #: recomputing the min every scheduling step (O(1) per epoch
        #: rather than per step).
        self.earliest = min(self.next_due)

    def pending(self, rank: int, now: float) -> bool:
        """True when rank ``rank`` has a REF due at or before ``now``."""
        return now >= self.next_due[rank]

    def earliest_due(self) -> float:
        """The soonest REF deadline across ranks."""
        return self.earliest

    def on_ref_issued(self, rank: int, now: float) -> None:
        """Advance the deadline after a REF issues.

        The deadline advances by a fixed interval (not ``now`` +
        interval) so the long-run refresh *rate* is preserved even when
        individual REFs slip behind heavy traffic.
        """
        self.next_due[rank] += self.interval
        # Never let deadlines fall unrecoverably behind the clock.
        if self.next_due[rank] < now - 8 * self.interval:
            self.next_due[rank] = now
        self.refreshes_issued[rank] += 1
        self.earliest = min(self.next_due)
