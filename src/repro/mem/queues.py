"""Bounded request queues (Table 5: 64-entry read and write queues).

The queue maintains two views of its contents: a flat arrival-ordered
list (``items``) and a per-bank index (``by_bank``) keyed by
``Request.bank_key``.  FR-FCFS consumes the per-bank view so one
scheduling step no longer scans the full queue twice; arrival-order
tie-breaking is preserved through ``Request.queue_seq``, assigned
monotonically on insertion.

On top of the views sits the incremental scheduler's **per-bank
candidate cache** (``bank_cache``): the FR-FCFS policy stores each
bank's scheduling decision (best candidate request + command kind +
verdict-expiry + wake time) here and trusts it until the bank is
*dirtied*.  Dirty-bank tracking is cooperative:

* the queue itself invalidates on ``push`` (a new arrival can become
  the oldest hit or kill a precharge decision via hit protection) and
  on ``remove`` (the cached candidate may be the departing request);
* the memory controller invalidates through :meth:`invalidate_bank` /
  :meth:`invalidate_rank` whenever a command changes a bank's row-buffer
  state or its mitigation verdicts (ACT/PRE/VREF, REF for the rank);
* time-driven verdict changes (a blocked row's delay expiring, a
  blacklist epoch rotation) need no callback: every cached entry carries
  its own expiry instant and the scheduler re-examines the bank once
  ``now`` passes it.

A bank absent from ``bank_cache`` is dirty; the policy re-walks it on
the next scheduling step and re-caches the result.
"""

from __future__ import annotations

from repro.dram.address import BANK_KEY_BITS, bank_key
from repro.mem.request import Request
from repro.utils.validation import require


class RequestQueue:
    """A FIFO-ordered, capacity-bounded request queue.

    Order is arrival order; FR-FCFS ties break toward older requests
    (smaller ``queue_seq``).
    """

    __slots__ = (
        "capacity",
        "_items",
        "by_bank",
        "bank_cache",
        "wake_heaps",
        "ready_heaps",
        "expiry_heap",
        "heap_seq",
        "dirty",
        "hot",
        "_next_seq",
    )

    def __init__(self, capacity: int = 64) -> None:
        require(capacity >= 1, "queue capacity must be >= 1")
        self.capacity = capacity
        self._items: list[Request] = []
        #: Arrival-ordered requests per bank_key (scheduler hot path).
        self.by_bank: dict[int, list[Request]] = {}
        #: Scheduler-maintained per-bank decision cache: bank_key ->
        #: entry tuple (see ``repro.mem.scheduler``).  Entries are
        #: dropped here on push/remove and by the controller on
        #: row-buffer / verdict changes; the scheduler itself drops
        #: entries whose expiry instant has passed.  Only the scheduler
        #: may insert entries: it mirrors each store into the lazy heaps
        #: below, which its steps-with-nothing-ready fast path relies on.
        self.bank_cache: dict[int, tuple] = {}
        #: Lazy min-heaps over live cache entries' bank-local times, one
        #: per wake class (hit-column / ACT-gate / PRE-gate).  Items are
        #: (local_t, heap_seq, bank_key, entry); an item is dead when
        #: ``bank_cache[bank_key] is not entry``.  Maintained entirely
        #: by the scheduler — see ``FrFcfsPolicy.select``.
        self.wake_heaps: tuple[list, list, list] = ([], [], [])
        #: Per-class lazy min-heaps, keyed by arrival order
        #: (``queue_seq``), of entries whose *bank-local* time has come
        #: due — readiness then depends only on the class's shared
        #: scalar, and the FR-FCFS winner is simply the live top (the
        #: oldest locally-ready candidate).  A bank-local time never
        #: un-passes, so items migrate here from ``wake_heaps`` once
        #: and stay until their entry dies.  Items are
        #: (queue_seq, bank_key, entry).
        self.ready_heaps: tuple[list, list, list] = ([], [], [])
        #: Lazy min-heap of entry expiry instants (same item shape).
        self.expiry_heap: list = []
        #: Monotonic tiebreaker for heap items (entry tuples containing
        #: Requests do not order).
        self.heap_seq = 0
        #: Banks needing re-examination: every invalidation records the
        #: key here so a scheduling step walks the dirtied banks only,
        #: never the whole queue.  Drained by ``FrFcfsPolicy.select``.
        self.dirty: set[int] = set()
        #: One-tuple bundle of every stable scheduler structure above:
        #: the incremental select unpacks this once per call instead of
        #: performing ten attribute loads.  All referenced objects are
        #: mutated in place and never reassigned.
        hit_heap, act_heap, pre_heap = self.wake_heaps
        ready_hits, ready_acts, ready_pres = self.ready_heaps
        self.hot = (
            self.bank_cache,
            self.by_bank,
            self.dirty,
            self.expiry_heap,
            hit_heap,
            act_heap,
            pre_heap,
            ready_hits,
            ready_acts,
            ready_pres,
        )
        self._next_seq = 0

    @property
    def items(self) -> list[Request]:
        """The queue contents in arrival order (read-only by convention;
        exposed without copying for the scheduler's hot path)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, request: Request) -> None:
        """Append ``request``; raises if the queue is full."""
        require(not self.full, "pushing into a full request queue")
        request.queue_seq = self._next_seq
        self._next_seq += 1
        self._items.append(request)
        key = request.bank_key
        bank_list = self.by_bank.get(key)
        if bank_list is None:
            self.by_bank[key] = [request]
        else:
            bank_list.append(request)
        self.bank_cache.pop(key, None)
        self.dirty.add(key)

    def remove(self, request: Request) -> None:
        """Remove a serviced request."""
        self._items.remove(request)
        key = request.bank_key
        bank_list = self.by_bank[key]
        if len(bank_list) == 1:
            del self.by_bank[key]
        else:
            bank_list.remove(request)
        self.bank_cache.pop(key, None)
        self.dirty.add(key)

    # ------------------------------------------------------------------
    # Dirty-bank tracking (controller-facing).
    # ------------------------------------------------------------------
    def invalidate_bank(self, key: int) -> None:
        """Mark one bank dirty: drop its cached scheduling decision."""
        self.bank_cache.pop(key, None)
        self.dirty.add(key)

    def invalidate_rank(self, rank: int) -> None:
        """Mark every bank of ``rank`` dirty (rank-wide commands: REF)."""
        lo = rank << BANK_KEY_BITS
        hi = lo + (1 << BANK_KEY_BITS)
        for key in [k for k in self.bank_cache if lo <= k < hi]:
            del self.bank_cache[key]
            self.dirty.add(key)

    def invalidate_all(self) -> None:
        """Drop every cached bank decision."""
        self.dirty.update(self.bank_cache)
        self.bank_cache.clear()

    def requests_for_bank(self, rank: int, bank: int) -> list[Request]:
        """Queued requests targeting (rank, bank), oldest first."""
        return list(self.by_bank.get(bank_key(rank, bank), ()))
