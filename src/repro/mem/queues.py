"""Bounded request queues (Table 5: 64-entry read and write queues)."""

from __future__ import annotations

from repro.mem.request import Request
from repro.utils.validation import require


class RequestQueue:
    """A FIFO-ordered, capacity-bounded request queue.

    Order is arrival order; FR-FCFS scans it front-to-back so "first
    ready" ties break toward older requests.
    """

    def __init__(self, capacity: int = 64) -> None:
        require(capacity >= 1, "queue capacity must be >= 1")
        self.capacity = capacity
        self._items: list[Request] = []

    @property
    def items(self) -> list[Request]:
        """The queue contents in arrival order (read-only by convention;
        exposed without copying for the scheduler's hot path)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, request: Request) -> None:
        """Append ``request``; raises if the queue is full."""
        require(not self.full, "pushing into a full request queue")
        self._items.append(request)

    def remove(self, request: Request) -> None:
        """Remove a serviced request."""
        self._items.remove(request)

    def requests_for_bank(self, rank: int, bank: int) -> list[Request]:
        """Queued requests targeting (rank, bank), oldest first."""
        return [r for r in self._items if r.address.rank == rank and r.address.bank == bank]
