"""Bounded request queues (Table 5: 64-entry read and write queues).

The queue maintains two views of its contents: a flat arrival-ordered
list (``items``) and a per-bank index (``by_bank``) keyed by
``Request.bank_key``.  FR-FCFS consumes the per-bank view so one
scheduling step no longer scans the full queue twice; arrival-order
tie-breaking is preserved through ``Request.queue_seq``, assigned
monotonically on insertion.
"""

from __future__ import annotations

from repro.dram.address import bank_key
from repro.mem.request import Request
from repro.utils.validation import require


class RequestQueue:
    """A FIFO-ordered, capacity-bounded request queue.

    Order is arrival order; FR-FCFS ties break toward older requests
    (smaller ``queue_seq``).
    """

    __slots__ = ("capacity", "_items", "by_bank", "bank_block", "_next_seq")

    def __init__(self, capacity: int = 64) -> None:
        require(capacity >= 1, "queue capacity must be >= 1")
        self.capacity = capacity
        self._items: list[Request] = []
        #: Arrival-ordered requests per bank_key (scheduler hot path).
        self.by_bank: dict[int, list[Request]] = {}
        #: Scheduler-maintained "whole bank is RowHammer-blocked"
        #: summaries: bank_key -> (blocked_until, wake, observed open
        #: row).  Invalidated here on push (a new request may be safe);
        #: the scheduler re-validates the open row and expiry itself.
        self.bank_block: dict[int, tuple[float, float, int | None]] = {}
        self._next_seq = 0

    @property
    def items(self) -> list[Request]:
        """The queue contents in arrival order (read-only by convention;
        exposed without copying for the scheduler's hot path)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, request: Request) -> None:
        """Append ``request``; raises if the queue is full."""
        require(not self.full, "pushing into a full request queue")
        request.queue_seq = self._next_seq
        self._next_seq += 1
        self._items.append(request)
        key = request.bank_key
        bank_list = self.by_bank.get(key)
        if bank_list is None:
            self.by_bank[key] = [request]
        else:
            bank_list.append(request)
        if self.bank_block:
            self.bank_block.pop(key, None)

    def remove(self, request: Request) -> None:
        """Remove a serviced request."""
        self._items.remove(request)
        bank_list = self.by_bank[request.bank_key]
        if len(bank_list) == 1:
            del self.by_bank[request.bank_key]
        else:
            bank_list.remove(request)

    def requests_for_bank(self, rank: int, bank: int) -> list[Request]:
        """Queued requests targeting (rank, bank), oldest first."""
        return list(self.by_bank.get(bank_key(rank, bank), ()))
