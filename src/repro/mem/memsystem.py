"""The channel-sharded memory system.

A :class:`MemorySystem` owns one :class:`~repro.mem.controller.MemoryController`
per memory channel, each with its **own** DRAM device shard, row
mapping, refresh schedule, and RowHammer mitigation instance —
BlockHammer is specified per channel (Section 3), so mitigation state is
never shared across channels.  Requests are routed by the channel bits
the :class:`~repro.dram.address.AddressMapping` decoded into the
address; statistics are reported both per channel and aggregated
(bandwidth/energy counters sum, RHLI maxes — see the harness
extractors).

Per-channel refresh schedules are phase-staggered: channel 0 keeps the
canonical phase (so single-channel systems are bit-identical to the
pre-channel-sharding simulator) and every further channel gets an offset
within one tREFI derived deterministically from the experiment seed.
Lockstep all-channel refresh would be unrealistic and would hide
bank-conflict effects inside a shared refresh shadow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.dram.device import CommandCounts, DramDevice
from repro.mem.controller import MemoryController, ThreadMemStats
from repro.mem.request import Request
from repro.mem.scheduler import SchedulingPolicy
from repro.mitigations.base import (
    AdjacencyOracle,
    MechanismTelemetry,
    MitigationContext,
    MitigationMechanism,
)
from repro.sim.stats import ChannelResult
from repro.utils.aggregate import merge_fields
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require

#: Builds one fresh mitigation instance per call (one per channel).
MitigationFactory = Callable[[], MitigationMechanism]


class MemorySystem:
    """N per-channel controller/device/mitigation shards + a router."""

    def __init__(
        self,
        config,  # SystemConfig (not annotated: repro.sim.config imports mem)
        num_threads: int,
        mitigation_factory: MitigationFactory,
        policy: SchedulingPolicy | None = None,
        adjacency_override: AdjacencyOracle | None = None,
        rng: DeterministicRng | None = None,
    ) -> None:
        spec = config.effective_spec()
        num_channels = config.channels
        require(num_channels >= 1, "need at least one memory channel")
        self.spec = spec
        self.num_channels = num_channels
        rng = rng or DeterministicRng(config.seed)

        # Deterministic per-channel refresh phase offsets within one
        # tREFI.  Channel 0 stays at phase 0 so a one-channel system
        # reproduces the pre-sharding refresh schedule exactly.
        phase_rng = rng.fork("refresh-phase")
        phase_offsets = [0.0] + [
            phase_rng.uniform() * spec.tREFI for _ in range(num_channels - 1)
        ]

        self.devices: list[DramDevice] = []
        self.mitigations: list[MitigationMechanism] = []
        self.controllers: list[MemoryController] = []
        for channel in range(num_channels):
            rowmap = config.build_rowmap()
            device = DramDevice(spec, rowmap, config.disturbance)

            def true_adjacency(
                rank: int, bank: int, row: int, distance: int, _rowmap=rowmap
            ) -> list[int]:
                # Rank/bank are accepted for interface generality; the
                # row mapping is uniform across banks in this model.
                return _rowmap.logical_neighbors(row, distance)

            mitigation = mitigation_factory()
            context = MitigationContext(
                spec=spec,
                num_threads=num_threads,
                # Channel 0 keeps the historical fork label so one-channel
                # systems draw the exact same mitigation RNG stream.
                rng=rng.fork(
                    "mitigation" if channel == 0 else f"mitigation-ch{channel}"
                ),
                adjacency=adjacency_override or true_adjacency,
                nrh=config.disturbance.nrh,
                blast_radius=config.disturbance.blast_radius,
                blast_decay=config.disturbance.decay,
                channel=channel,
            )
            mitigation.attach(context)

            controller = MemoryController(
                spec,
                device,
                mitigation,
                policy,
                config.controller,
                num_threads=num_threads,
                channel_id=channel,
                refresh_phase_ns=phase_offsets[channel],
            )
            self.devices.append(device)
            self.mitigations.append(mitigation)
            self.controllers.append(controller)

        #: Channels that accepted at least one request since the last
        #: drain; the System reads and clears it after each core wake to
        #: schedule exactly the controllers that gained work.
        self.touched: list[int] = []

    # ------------------------------------------------------------------
    # Request routing (the cores' controller-facing interface).
    # ------------------------------------------------------------------
    def enqueue(self, request: Request, now: float) -> bool:
        """Route ``request`` to its channel's controller."""
        if self.controllers[request.channel].enqueue(request, now):
            self.touched.append(request.channel)
            return True
        return False

    def can_accept(self, request: Request) -> bool:
        return self.controllers[request.channel].can_accept(request)

    def busy(self) -> bool:
        """True while any channel has pending work."""
        return any(controller.busy() for controller in self.controllers)

    # ------------------------------------------------------------------
    # Measurement plumbing.
    # ------------------------------------------------------------------
    def reset_measurement(self, now: float) -> None:
        """Zero performance/energy counters on every channel while
        keeping architectural and mechanism state (end of warmup)."""
        for device in self.devices:
            device.finalize_active_time(now)
            device.counts = CommandCounts()
            device.active_time = [0.0] * self.spec.ranks
        for controller in self.controllers:
            controller.thread_stats = [
                ThreadMemStats() for _ in range(controller.num_threads)
            ]
            controller.vref_count = 0
            controller.commands_issued = 0

    def finalize(self, end_time: float) -> None:
        for device in self.devices:
            device.finalize_active_time(end_time)

    # ------------------------------------------------------------------
    # Aggregation (RHLI maxes over channels in the harness extractors;
    # command/bandwidth/energy counters sum here).
    # ------------------------------------------------------------------
    def merged_thread_stats(self) -> list[ThreadMemStats]:
        """Per-thread statistics aggregated across channels.  With one
        channel the controller's own objects are returned unchanged."""
        if self.num_channels == 1:
            return self.controllers[0].thread_stats
        per_channel = [controller.thread_stats for controller in self.controllers]
        return [
            ThreadMemStats.merged([stats[thread] for stats in per_channel])
            for thread in range(self.controllers[0].num_threads)
        ]

    def aggregate_counts(self) -> CommandCounts:
        if self.num_channels == 1:
            return self.devices[0].counts
        total = CommandCounts()
        for device in self.devices:
            merge_fields(total, device.counts)
        return total

    def aggregate_active_time(self) -> list[float]:
        """Rank-level active-time integrals, channel-major."""
        out: list[float] = []
        for device in self.devices:
            out.extend(device.active_time)
        return out

    def aggregate_bitflips(self) -> list:
        """All recorded bit-flips, time-ordered across channels."""
        if self.num_channels == 1:
            return list(self.devices[0].bitflips)
        flips = [flip for device in self.devices for flip in device.bitflips]
        flips.sort(key=lambda flip: flip.time_ns)
        return flips

    def total_refreshes(self) -> int:
        return sum(
            sum(controller.refresh.refreshes_issued)
            for controller in self.controllers
        )

    def total_victim_refreshes(self) -> int:
        return sum(controller.vref_count for controller in self.controllers)

    def total_commands_issued(self) -> int:
        return sum(controller.commands_issued for controller in self.controllers)

    # ------------------------------------------------------------------
    # OS-facing telemetry (sampled by the governor, repro.os).
    # ------------------------------------------------------------------
    def mechanism_telemetry(self) -> list[MechanismTelemetry]:
        """One per-channel mechanism telemetry snapshot per channel
        (duck-typed: mechanisms without RHLI report ``None``)."""
        return [mechanism.os_telemetry() for mechanism in self.mitigations]

    def os_telemetry(self, now: float, epoch: int = 0):
        """The cross-channel :class:`~repro.os.telemetry.TelemetrySample`
        an OS governor reviews: per-thread RHLI maxed over channels with
        the per-channel split preserved, controller-side blocked
        injections and accepted-request counts summed over channels,
        and the mechanism event counters summed."""
        from repro.os.telemetry import sample_telemetry

        return sample_telemetry(
            self.mitigations,
            self.controllers[0].num_threads,
            now,
            epoch,
            thread_stats=self.merged_thread_stats(),
        )

    def channel_results(self) -> list[ChannelResult]:
        """One per-channel statistics row per channel."""
        rows = []
        for channel, (controller, device) in enumerate(
            zip(self.controllers, self.devices)
        ):
            rows.append(
                ChannelResult(
                    channel=channel,
                    counts=replace(device.counts),
                    active_time_ns=list(device.active_time),
                    bitflips=len(device.bitflips),
                    refreshes=sum(controller.refresh.refreshes_issued),
                    victim_refreshes=controller.vref_count,
                    commands_issued=controller.commands_issued,
                    refresh_phase_ns=controller.refresh.phase_offset_ns,
                    blocked_injections=sum(
                        stats.blocked_injections for stats in controller.thread_stats
                    ),
                )
            )
        return rows
