"""Memory request scheduling policies.

:class:`FrFcfsPolicy` implements FR-FCFS (Rixner et al. [122], the
paper's Table 5 policy): ready column commands (row-buffer hits) are
prioritized over row commands, and ties break toward older requests.
On top of the classic policy, ACT commands are gated by the mitigation
mechanism (``act_allowed_at``): a RowHammer-unsafe activation is simply
skipped and younger, safe requests proceed — exactly the "prioritize
RowHammer-safe accesses" behaviour of Section 3.1.

:class:`FcfsPolicy` (strict arrival order) is included as an ablation.

This is the simulator's hottest code path, so the FR-FCFS implementation
reads bank timing fields directly instead of constructing trial
:class:`Command` objects for every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.mem.request import Request
from repro.mitigations.base import MitigationMechanism

_NEVER = 1.0e30


@dataclass
class Selection:
    """The policy's answer for one scheduling step.

    ``command``/``request`` are set when something can issue exactly at
    ``now``; ``next_ready`` is the earliest future instant at which any
    candidate could become issuable (used to schedule the next wake-up).
    """

    command: Command | None
    request: Request | None
    next_ready: float


class SchedulingPolicy:
    """Interface: pick the next command for a set of queued requests."""

    name = "base"

    def select(
        self,
        requests: list[Request],
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        raise NotImplementedError


class FrFcfsPolicy(SchedulingPolicy):
    """First-Ready, First-Come-First-Served with mitigation gating."""

    name = "fr-fcfs"

    def select(
        self,
        requests: list[Request],
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        next_ready = _NEVER
        spec = device.spec
        ranks = device.ranks
        flat_banks = device.flat_banks
        bus_free = device.bus_free
        rd_bus_ready = bus_free - spec.tCL
        wr_bus_ready = bus_free - spec.tCWL

        # Pass 1 — ready column commands (row-buffer hits), oldest first.
        # ``hit_banks`` doubles as the don't-precharge set for pass 2.
        hit_banks: set[int] = set()
        for req in requests:
            bank = flat_banks[req.bank_key]
            if bank.open_row != req.row:
                continue
            hit_banks.add(req.bank_key)
            if req.is_write:
                t = bank.next_wr
                if wr_bus_ready > t:
                    t = wr_bus_ready
                kind = CommandKind.WR
            else:
                t = bank.next_rd
                if rd_bus_ready > t:
                    t = rd_bus_ready
                kind = CommandKind.RD
            if t <= now:
                return Selection(
                    Command(kind, req.rank, req.bank, req.row, req.col), req, now
                )
            if t < next_ready:
                next_ready = t

        # Pass 2 — row commands (ACT/PRE) for the oldest *safe* request
        # per bank.  Banks in refresh drain accept no new row commands.
        decided: set[int] = set()
        for req in requests:
            key = req.bank_key
            if key in decided or req.rank in blocked_ranks:
                continue
            bank = flat_banks[key]
            open_row = bank.open_row
            if open_row == req.row:
                continue  # served by pass 1 when column timing allows
            allowed = mitigation.act_allowed_at(req.rank, req.bank, req.row, req.thread, now)
            if allowed > now:
                # RowHammer-unsafe: skip this request, let younger safe
                # requests to the same bank proceed; remember the wake.
                if allowed < next_ready:
                    next_ready = allowed
                continue
            decided.add(key)
            if open_row is None:
                t = bank.next_act
                rank_t = ranks[req.rank].earliest_act(now)
                if rank_t > t:
                    t = rank_t
                if t <= now:
                    return Selection(
                        Command(CommandKind.ACT, req.rank, req.bank, req.row), req, now
                    )
                if t < next_ready:
                    next_ready = t
            else:
                # Conflict: precharge, but never underneath pending hits.
                if key in hit_banks:
                    continue
                t = bank.next_pre
                if t <= now:
                    return Selection(
                        Command(CommandKind.PRE, req.rank, req.bank, open_row), req, now
                    )
                if t < next_ready:
                    next_ready = t

        return Selection(None, None, next_ready)


class FcfsPolicy(SchedulingPolicy):
    """Strict arrival-order scheduling (ablation reference)."""

    name = "fcfs"

    def select(
        self,
        requests: list[Request],
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        if not requests:
            return Selection(None, None, _NEVER)
        # Strict FCFS: only the head request is ever considered.
        req = requests[0]
        a = req.address
        bank = device.bank(a.rank, a.bank)
        if bank.open_row == a.row:
            kind = CommandKind.WR if req.is_write else CommandKind.RD
            cmd = Command(kind, a.rank, a.bank, a.row, a.col)
        elif a.rank in blocked_ranks:
            return Selection(None, None, _NEVER)
        elif bank.open_row is None:
            allowed = mitigation.act_allowed_at(a.rank, a.bank, a.row, req.thread, now)
            if allowed > now:
                return Selection(None, None, allowed)
            cmd = Command(CommandKind.ACT, a.rank, a.bank, a.row)
        else:
            cmd = Command(CommandKind.PRE, a.rank, a.bank, bank.open_row)
        t = device.earliest_issue(cmd, now)
        if t <= now:
            return Selection(cmd, req, now)
        return Selection(None, None, t)
