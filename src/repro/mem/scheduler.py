"""Memory request scheduling policies.

:class:`FrFcfsPolicy` implements FR-FCFS (Rixner et al. [122], the
paper's Table 5 policy): ready column commands (row-buffer hits) are
prioritized over row commands, and ties break toward older requests.
On top of the classic policy, ACT commands are gated by the mitigation
mechanism (``act_allowed_at``): a RowHammer-unsafe activation is simply
skipped and younger, safe requests proceed — exactly the "prioritize
RowHammer-safe accesses" behaviour of Section 3.1.

:class:`FcfsPolicy` (strict arrival order) is included as an ablation.

This is the simulator's hottest code path.  Both policies accept either
a plain list of requests or a :class:`~repro.mem.queues.RequestQueue`;
the queue's per-bank index (``by_bank``) turns each scheduling step
into one walk over the banks that actually have work, instead of two
scans over the full queue:

* per open bank, the walk stops looking for column candidates once the
  oldest read hit and oldest write hit are known (younger same-kind
  hits share their timing and lose the arrival-order tie-break);
* per bank, the oldest RowHammer-*safe* non-hit request decides the
  bank's row command (ACT on an empty bank, PRE on a conflict unless a
  pending hit protects the open row), and the globally oldest issuable
  decision wins — the same command a naive full scan selects;
* "unsafe until T" verdicts from the mitigation are cached on the
  request (``Request.blocked_until``) and trusted until the
  mechanism's ``act_block_stable`` horizon (e.g. BlockHammer's next
  epoch rotation), so a blocked attack request costs one dict-free
  comparison per step instead of a full mitigation query.

Selected commands are identical to a naive double scan.  The set and
timing of ``act_allowed_at`` queries is not: a naive scan re-queries
every blocked request each step, while this walk skips hit-protected
and timing-gated banks entirely and trusts cached verdicts inside the
stability horizon.  ``act_allowed_at`` is side-effect-free for every
mechanism except BlockHammer, whose Section 8.4 first-block stamps
happen at first query: deferring a query can stamp a block a few
scheduling steps later (or skip stamping a sub-step block), so the
reproduced delay *statistics* shift slightly (sub-percent in practice)
even though command schedules and performance results do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import BANK_KEY_BITS
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.mem.queues import RequestQueue
from repro.mem.request import Request
from repro.mitigations.base import MitigationMechanism

_NEVER = 1.0e30


@dataclass
class Selection:
    """The policy's answer for one scheduling step.

    ``command``/``request`` are set when something can issue exactly at
    ``now``; ``next_ready`` is the earliest future instant at which any
    candidate could become issuable (used to schedule the next wake-up).
    """

    command: Command | None
    request: Request | None
    next_ready: float


def _views(requests) -> tuple[list[Request], dict[int, list[Request]]]:
    """(flat arrival-ordered list, per-bank index) for either input."""
    if isinstance(requests, RequestQueue):
        return requests.items, requests.by_bank
    by_bank: dict[int, list[Request]] = {}
    for seq, req in enumerate(requests):
        req.queue_seq = seq
        bank_list = by_bank.get(req.bank_key)
        if bank_list is None:
            by_bank[req.bank_key] = [req]
        else:
            bank_list.append(req)
    return requests, by_bank


class SchedulingPolicy:
    """Interface: pick the next command for a set of queued requests."""

    name = "base"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        raise NotImplementedError


class FrFcfsPolicy(SchedulingPolicy):
    """First-Ready, First-Come-First-Served with mitigation gating."""

    name = "fr-fcfs"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        cacheable = isinstance(requests, RequestQueue)
        if cacheable:
            by_bank = requests.by_bank
            bank_block = requests.bank_block
        else:
            _, by_bank = _views(requests)
            bank_block = None
        next_ready = _NEVER
        spec = device.spec
        ranks = device.ranks
        flat_banks = device.flat_banks
        bus_free = device.bus_free
        rd_bus_ready = bus_free - spec.tCL
        wr_bus_ready = bus_free - spec.tCWL
        act_allowed_at = mitigation.act_allowed_at

        RD = CommandKind.RD
        WR = CommandKind.WR
        best_hit: Request | None = None
        best_hit_seq = -1
        best_hit_kind = None
        best_row: Request | None = None
        best_row_seq = -1
        best_row_kind = None
        best_row_row = -1
        # Duplicate blocked queries for the same (bank, row, thread)
        # within one step: allocated lazily, blocking is the rare case.
        blocked_memo: dict[tuple[int, int, int], float] | None = None
        # Rank-level ACT readiness (tRRD/tFAW) is constant within one
        # scheduling step; compute it at most once per rank.
        rank_act_ready: dict[int, float] = {}

        any_rank_blocked = bool(blocked_ranks)
        key_bits = BANK_KEY_BITS
        for key, bank_requests in by_bank.items():
            bank = flat_banks[key]
            open_row = bank.open_row
            rank_blocked = any_rank_blocked and (key >> key_bits) in blocked_ranks

            # Whole-bank blocked summary recorded by an earlier step:
            # while it holds (verdicts inside their stability horizon,
            # bank state unchanged, no new arrivals — push() invalidates)
            # the bank contributes its wake time and nothing else.
            if bank_block:
                entry = bank_block.get(key)
                if entry is not None:
                    if (
                        entry[0] > now
                        and bank.open_row == entry[2]
                        and not rank_blocked
                    ):
                        wake = entry[1]
                        if wake < next_ready:
                            next_ready = wake
                        continue
                    del bank_block[key]

            if open_row is None:
                # No hits possible: the oldest safe request decides the
                # bank with an ACT.  Refresh-draining ranks accept no
                # row commands (and their requests are not queried).
                # Bank/rank ACT timing gates the walk: when no ACT can
                # issue yet there is nothing to decide, so the bank
                # contributes its timing wake without any mitigation
                # queries.
                if rank_blocked:
                    continue
                t = bank.next_act
                if t <= now:
                    rank_id = key >> key_bits
                    rank_t = rank_act_ready.get(rank_id)
                    if rank_t is None:
                        rank_t = ranks[rank_id].earliest_act(now)
                        rank_act_ready[rank_id] = rank_t
                    if rank_t > t:
                        t = rank_t
                if t > now:
                    if t < next_ready:
                        next_ready = t
                    continue
                all_bu = _NEVER
                all_wake = _NEVER
                for req in bank_requests:
                    bu = req.blocked_until
                    if bu > now:
                        wake = req.blocked_wake
                        if wake < next_ready:
                            next_ready = wake
                        if bu < all_bu:
                            all_bu = bu
                        if wake < all_wake:
                            all_wake = wake
                        continue
                    row = req.row
                    memo_key = (key, row, req.thread)
                    allowed = (
                        blocked_memo.get(memo_key)
                        if blocked_memo is not None
                        else None
                    )
                    if allowed is None:
                        allowed = act_allowed_at(req.rank, req.bank, row, req.thread, now)
                        if allowed > now:
                            if blocked_memo is None:
                                blocked_memo = {}
                            blocked_memo[memo_key] = allowed
                    if allowed > now:
                        if cacheable:
                            stable = mitigation.act_block_stable
                            req.blocked_wake = allowed
                            bu = stable if stable < allowed else allowed
                            req.blocked_until = bu
                            if bu < all_bu:
                                all_bu = bu
                            if allowed < all_wake:
                                all_wake = allowed
                        if allowed < next_ready:
                            next_ready = allowed
                        continue
                    # Safe and timing-ready: the oldest issuable row
                    # decision across banks wins the arrival-order
                    # tie-break.
                    seq = req.queue_seq
                    if best_row is None or seq < best_row_seq:
                        best_row = req
                        best_row_seq = seq
                        best_row_kind = CommandKind.ACT
                        best_row_row = row
                    break  # bank decided
                else:
                    if cacheable and all_bu > now:
                        # Every request is inside a blocked verdict's
                        # stability window: skip this bank wholesale
                        # until the earliest verdict expires.
                        bank_block[key] = (all_bu, all_wake, None)
                continue

            # Open bank: the oldest hit per kind is the head of the
            # bank's arrival-ordered walk (a RequestQueue holds one
            # request kind, so the first hit settles it; mixed plain
            # lists keep scanning for the other kind).
            rd_hit: Request | None = None
            wr_hit: Request | None = None
            for req in bank_requests:
                if req.row == open_row:
                    if req.is_write:
                        if wr_hit is None:
                            wr_hit = req
                    elif rd_hit is None:
                        rd_hit = req
                    if cacheable or (rd_hit is not None and wr_hit is not None):
                        break
            if rd_hit is not None:
                t = bank.next_rd
                if rd_bus_ready > t:
                    t = rd_bus_ready
                if t <= now:
                    # Oldest ready hit across all banks wins (FR-FCFS
                    # arrival-order tie-break).
                    seq = rd_hit.queue_seq
                    if best_hit is None or seq < best_hit_seq:
                        best_hit = rd_hit
                        best_hit_seq = seq
                        best_hit_kind = RD
                elif t < next_ready:
                    next_ready = t
            if wr_hit is not None:
                t = bank.next_wr
                if wr_bus_ready > t:
                    t = wr_bus_ready
                if t <= now:
                    seq = wr_hit.queue_seq
                    if best_hit is None or seq < best_hit_seq:
                        best_hit = wr_hit
                        best_hit_seq = seq
                        best_hit_kind = WR
                elif t < next_ready:
                    next_ready = t
            if rd_hit is not None or wr_hit is not None:
                # Pending hits protect the open row: no PRE decision,
                # and therefore nothing to query this step.
                continue
            if rank_blocked:
                continue
            # Conflict bank: precharge timing gates the decider walk
            # exactly like ACT timing gates the empty-bank walk.  The
            # walk below deliberately mirrors the empty-bank walk above
            # (ACT -> PRE, row -> open_row) instead of sharing a helper:
            # this is the innermost hot loop and a per-bank function
            # call is measurable.  Keep the two in sync when touching
            # the verdict-caching protocol.
            t = bank.next_pre
            if t > now:
                if t < next_ready:
                    next_ready = t
                continue
            all_bu = _NEVER
            all_wake = _NEVER
            for req in bank_requests:
                bu = req.blocked_until
                if bu > now:
                    wake = req.blocked_wake
                    if wake < next_ready:
                        next_ready = wake
                    if bu < all_bu:
                        all_bu = bu
                    if wake < all_wake:
                        all_wake = wake
                    continue
                row = req.row
                memo_key = (key, row, req.thread)
                allowed = (
                    blocked_memo.get(memo_key) if blocked_memo is not None else None
                )
                if allowed is None:
                    allowed = act_allowed_at(req.rank, req.bank, row, req.thread, now)
                    if allowed > now:
                        if blocked_memo is None:
                            blocked_memo = {}
                        blocked_memo[memo_key] = allowed
                if allowed > now:
                    if cacheable:
                        stable = mitigation.act_block_stable
                        req.blocked_wake = allowed
                        bu = stable if stable < allowed else allowed
                        req.blocked_until = bu
                        if bu < all_bu:
                            all_bu = bu
                        if allowed < all_wake:
                            all_wake = allowed
                    if allowed < next_ready:
                        next_ready = allowed
                    continue
                # Safe: precharge toward this request's row.
                seq = req.queue_seq
                if best_row is None or seq < best_row_seq:
                    best_row = req
                    best_row_seq = seq
                    best_row_kind = CommandKind.PRE
                    best_row_row = open_row
                break  # bank decided
            else:
                if cacheable and all_bu > now:
                    bank_block[key] = (all_bu, all_wake, open_row)

        # Column commands (row-buffer hits) always outrank row commands.
        if best_hit is not None:
            req = best_hit
            return Selection(
                Command(best_hit_kind, req.rank, req.bank, req.row, req.col), req, now
            )
        if best_row is not None:
            req = best_row
            return Selection(
                Command(best_row_kind, req.rank, req.bank, best_row_row), req, now
            )
        return Selection(None, None, next_ready)


class FcfsPolicy(SchedulingPolicy):
    """Strict arrival-order scheduling (ablation reference)."""

    name = "fcfs"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        items = requests.items if isinstance(requests, RequestQueue) else requests
        if not items:
            return Selection(None, None, _NEVER)
        # Strict FCFS: only the head request is ever considered.
        req = items[0]
        a = req.address
        bank = device.bank(a.rank, a.bank)
        if bank.open_row == a.row:
            kind = CommandKind.WR if req.is_write else CommandKind.RD
            cmd = Command(kind, a.rank, a.bank, a.row, a.col)
        elif a.rank in blocked_ranks:
            return Selection(None, None, _NEVER)
        elif bank.open_row is None:
            allowed = mitigation.act_allowed_at(a.rank, a.bank, a.row, req.thread, now)
            if allowed > now:
                return Selection(None, None, allowed)
            cmd = Command(CommandKind.ACT, a.rank, a.bank, a.row)
        else:
            cmd = Command(CommandKind.PRE, a.rank, a.bank, bank.open_row)
        t = device.earliest_issue(cmd, now)
        if t <= now:
            return Selection(cmd, req, now)
        return Selection(None, None, t)
