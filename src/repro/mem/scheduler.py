"""Memory request scheduling policies.

:class:`FrFcfsPolicy` implements FR-FCFS (Rixner et al. [122], the
paper's Table 5 policy): ready column commands (row-buffer hits) are
prioritized over row commands, and ties break toward older requests.
On top of the classic policy, ACT commands are gated by the mitigation
mechanism (``act_allowed_at``): a RowHammer-unsafe activation is simply
skipped and younger, safe requests proceed — exactly the "prioritize
RowHammer-safe accesses" behaviour of Section 3.1.

:class:`ReferenceFrFcfsPolicy` is a deliberately naive reimplementation
of the same policy — one arrival-order scan per step, a fresh mitigation
query per considered request, ``device.earliest_issue`` per candidate,
no caching of any kind.  It exists to be *obviously* correct so the
differential harness (``tests/differential.py``) can prove the fast
policy equivalent to it: identical command streams, identical simulated
results.  :class:`FcfsPolicy` (strict arrival order) is an ablation.

This is the simulator's hottest code path.  The fast policy is
**incremental across scheduling steps**: each bank's decision — the
oldest ready row-buffer hit, or the oldest RowHammer-safe request that
decides the bank's row command (ACT on a closed bank, PRE on a conflict
unless a pending hit protects the open row) — is a pure function of the
bank's queue contents, its row-buffer state + local timing, and the
mitigation's verdicts.  None of those change on most steps, so the
decision (with the bank-local timing snapshotted into it) is cached per
bank on the :class:`~repro.mem.queues.RequestQueue` (``bank_cache``)
and one step re-examines only *dirty* banks:

* the queue invalidates a bank's entry on push/remove (arrivals and
  departures change the oldest-hit/decider walk);
* the controller invalidates on every command addressed to a bank
  (ACT/PRE/RD/WR/VREF; REF dirties the rank) — commands move both the
  bank's decision inputs and its snapshotted local timing — see
  ``MemoryController._invalidate_bank``;
* time-driven verdict changes need no callback: every entry carries an
  expiry instant — the earliest time a *skipped* blocked request could
  unblock and preempt the cached decider, capped by the mechanism's
  verdict-stability horizon (``act_block_stable``, e.g. BlockHammer's
  next CBF epoch rotation) — and the policy re-walks the bank once
  ``now`` reaches it (tracked in a lazy expiry heap).

Clean banks are never visited at all.  Entries live in per-class lazy
min-heaps keyed by their bank-local time (hit column timing / ACT gate
/ PRE gate); because a per-bank wake is ``max(bank-local time, shared
scalar)`` and the shared scalar (data-bus occupancy, rank tRRD/tFAW) is
class-wide, the exact ``next_ready`` falls out of three heap tops.
Once a bank-local time passes it never un-passes, so entries migrate
to per-class *ready* heaps ordered by arrival (``queue_seq``), whose
live top is the FR-FCFS winner.  A scheduling step is therefore
O(dirtied banks + expired verdicts + heap-top maintenance), not
O(queued requests) and not even O(banks).

Selected commands are identical to the naive scan's.  The set and
timing of ``act_allowed_at`` queries is not: the naive scan re-queries
every blocked request each step, while the incremental walk trusts
cached verdicts inside the stability horizon and skips clean banks
entirely.  ``act_allowed_at`` is side-effect-free for every mechanism
except BlockHammer, whose Section 8.4 first-block stamps happen at
first query: deferring a query can stamp a block a few scheduling steps
later, so the reproduced delay *statistics* shift slightly (sub-percent
in practice) even though command schedules and performance results do
not — the differential harness pins exactly that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from repro.dram.address import BANK_KEY_BITS
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.mem.queues import RequestQueue
from repro.mem.request import Request
from repro.mitigations.base import MitigationMechanism

_NEVER = 1.0e30

# bank_cache entry tags (first tuple element).  Entries are
# (tag, request, command_kind, row, expires_at, blocked_wake, local_t):
#
# _HIT  — ``request`` is the bank's oldest row-buffer hit; issues as
#         RD/WR the moment column timing and the data bus allow.  Valid
#         until the bank is dirtied (hits involve no verdicts).
#         ``local_t`` snapshots the bank's column timing.
# _ROW  — ``request`` decides the bank's row command (``command_kind``
#         ACT or PRE toward ``row``); older requests were skipped as
#         mitigation-blocked, and ``expires_at`` is the earliest instant
#         one of them could unblock and preempt the decider.
#         ``local_t`` snapshots the bank's ACT/PRE timing.
# _IDLE — every queued request for the bank is mitigation-blocked;
#         ``command_kind`` records which row-command gate applies (ACT
#         for a closed bank, PRE for a conflict), ``blocked_wake`` the
#         earliest allowed time, and ``local_t`` is already
#         ``max(bank gate, blocked_wake)`` so the per-step wake needs
#         only the rank constraint folded in (Selection contract).
#
# ``local_t`` snapshots are sound because the controller dirties a bank
# on *every* command addressed to it — bank-local timing cannot move
# while an entry lives.  Rank ACT spacing and data-bus occupancy are
# shared scalars and stay out of entries; the select loop reads them
# live each step.
_HIT, _ROW, _IDLE = 0, 1, 2


@dataclass(slots=True)
class Selection:
    """The policy's answer for one scheduling step.

    ``command``/``request`` are set when something can issue exactly at
    ``now``; ``next_ready`` is the earliest future instant at which any
    candidate could become issuable (used to schedule the next wake-up).

    ``next_ready`` is **normative**, not advisory: command issue is
    wake-driven (a ready command issues at the controller's first wake
    at or after its ready instant), so two policies only produce
    identical command streams if they report identical wake times.
    Every FR-FCFS implementation in this module therefore computes the
    same pure function of simulator state — the minimum over banks with
    queued requests of:

    * a bank with a queued row-buffer hit: the oldest hit's column
      ready time, ``max(bank column timing, data-bus constraint)``
      (hit-protected banks contribute nothing else);
    * otherwise, on a refresh-draining rank: nothing;
    * otherwise, with a RowHammer-safe request (the oldest safe request
      is the bank's decider): the row-command gate alone — ACT:
      ``max(bank ACT timing, rank tRRD/tFAW)``, PRE: bank PRE timing.
      Blocked requests skipped on the way to the decider contribute
      *nothing*: at any future instant the bank issues at its gate, so
      their individual unblock times never surface as wakes;
    * with every queued request blocked: ``max(row-command gate,
      earliest allowed time over the bank's requests)`` — the exact
      instant the first request unblocks *and* can issue.
    """

    command: Command | None
    request: Request | None
    next_ready: float


class SchedulingPolicy:
    """Interface: pick the next command for a set of queued requests."""

    name = "base"
    #: Trace probe (``mem`` category), bound by the System when a
    #: telemetry bus is attached; only rare branches may emit.
    probe = None

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        raise NotImplementedError

    def select_raw(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> tuple[Command | None, Request | None, float]:
        """Tuple-returning form of :meth:`select` for the controller's
        batched hot loop: ``(command, request, next_ready)`` with the
        exact same normative contents, minus the Selection allocation.
        Policies may override with a native implementation; the default
        wraps :meth:`select`.
        """
        sel = self.select(requests, device, mitigation, now, blocked_ranks)
        return sel.command, sel.request, sel.next_ready


def _examine_bank(
    bank_requests: list[Request],
    bank,
    now: float,
    act_allowed_at,
    stable: float,
    rank_blocked: bool,
) -> tuple | None:
    """Full walk of one bank's queued requests -> a ``bank_cache`` entry.

    Only runs for dirty or expired banks.  Assumes the request list is
    single-kind (the controller keeps separate read and write queues),
    so the first arrival-order row match settles the oldest hit.
    Returns None for a hitless bank on a refresh-draining rank: no row
    decision may be taken (or cached), and its requests are not queried.
    """
    open_row = bank.open_row
    if open_row is not None:
        for req in bank_requests:
            if req.row == open_row:
                t_col = bank.next_wr if req.is_write else bank.next_rd
                return (_HIT, req, None, 0, _NEVER, _NEVER, t_col)
    if rank_blocked:
        return None
    # Closed or conflict bank: the oldest RowHammer-safe request decides
    # the row command; blocked requests ahead of it bound the entry's
    # lifetime ("unsafe until T" verdicts are cached on the request and
    # trusted until the mechanism's stability horizon).
    expires = stable
    wake = _NEVER
    for req in bank_requests:
        bu = req.blocked_until
        if bu > now:
            if bu < expires:
                expires = bu
            w = req.blocked_wake
            if w < wake:
                wake = w
            continue
        allowed = act_allowed_at(req.rank, req.bank, req.row, req.thread, now)
        if allowed > now:
            req.blocked_wake = allowed
            bu = stable if stable < allowed else allowed
            req.blocked_until = bu
            if bu < expires:
                expires = bu
            if allowed < wake:
                wake = allowed
            continue
        if open_row is None:
            return (_ROW, req, CommandKind.ACT, req.row, expires, wake, bank.next_act)
        return (_ROW, req, CommandKind.PRE, open_row, expires, wake, bank.next_pre)
    if open_row is None:
        gate_kind = CommandKind.ACT
        local = bank.next_act
    else:
        gate_kind = CommandKind.PRE
        local = bank.next_pre
    if wake > local:
        local = wake
    return (_IDLE, None, gate_kind, 0, expires, wake, local)


class FrFcfsPolicy(SchedulingPolicy):
    """First-Ready, First-Come-First-Served with mitigation gating.

    Incremental: re-examines only banks whose queue contents, row-buffer
    state, or mitigation verdicts changed since the last step (see the
    module docstring for the dirty/expiry protocol).  Plain-list inputs
    carry no cache and fall back to the reference scan.
    """

    name = "fr-fcfs"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        command, request, next_ready = self.select_raw(
            requests, device, mitigation, now, blocked_ranks
        )
        return Selection(command, request, next_ready)

    def select_raw(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> tuple[Command | None, Request | None, float]:
        if not isinstance(requests, RequestQueue):
            sel = _naive_select(requests, device, mitigation, now, blocked_ranks)
            return sel.command, sel.request, sel.next_ready
        if blocked_ranks or len(device.ranks) != 1:
            # Refresh-draining windows (and hypothetical multi-rank
            # devices, whose per-rank ACT constraint does not factor
            # out of the class minima) take the every-bank scan.
            if self.probe is not None:
                self.probe(
                    now, "sched_full_scan", 0, blocked_ranks=len(blocked_ranks)
                )
            sel = self._scan_select(requests, device, mitigation, now, blocked_ranks)
            return sel.command, sel.request, sel.next_ready

        # Incremental path: one step touches only (a) banks dirtied
        # since the last step, (b) banks whose verdict horizon passed,
        # and (c) banks that are *ready* — everything else is covered
        # by three exact class minima.  A bank's wake decomposes as
        # max(bank-local time, shared scalar) where the shared scalar
        # (data-bus occupancy for hits, rank tRRD/tFAW for ACTs) is
        # class-wide, so min-over-banks = max(class min-heap top,
        # shared scalar), and a bank is ready iff its local time AND
        # the shared scalar have both come due — the ready set is a
        # heap prefix.  Heap items are lazy: an item is dead when its
        # entry is no longer the bank's cached one; dead tops pop on
        # sight, so a live top is the exact class minimum.
        (
            cache,
            by_bank,
            dirty,
            expiry_heap,
            hit_heap,
            act_heap,
            pre_heap,
            ready_hits,
            ready_acts,
            ready_pres,
        ) = requests.hot
        cache_get = cache.get
        flat_banks, rank0, tCL, tCWL = device.select_hot
        bus_free = device._bus_free
        rd_bus_ready = bus_free - tCL
        wr_bus_ready = bus_free - tCWL
        stable = _NEVER if mitigation.never_blocks else mitigation.act_block_stable
        act_allowed_at = mitigation.act_allowed_at
        rank_t = -1.0  # lazy: rank ACT readiness at most once per step

        ACT = CommandKind.ACT
        next_ready = _NEVER
        best_hit: Request | None = None
        best_hit_seq = -1
        best_row: Request | None = None
        best_row_seq = -1
        best_row_kind = None
        best_row_row = -1
        heap_seq = requests.heap_seq

        # 1. Re-examine dirtied banks; 2. re-examine banks whose
        # verdict horizon has passed.  Fresh entries go to the cache
        # and heaps; uncacheable decisions (horizon already passed —
        # mechanisms declaring no stability) are kept aside for inline
        # evaluation and the bank stays dirty.
        uncached: list | None = None
        redirty: list | None = None
        if dirty:
            for key in dirty:
                bank_requests = by_bank.get(key)
                if bank_requests is None:
                    cache.pop(key, None)
                    continue
                entry = _examine_bank(
                    bank_requests, flat_banks[key], now, act_allowed_at, stable, False
                )
                if entry[4] > now:
                    # Store + heap registration.  Keep this block in
                    # lockstep with its copy in the expiry drain below:
                    # inlined twice because this is the innermost hot
                    # loop and a per-bank helper call is measurable.
                    cache[key] = entry
                    heap_seq += 1
                    item = (entry[6], heap_seq, key, entry)
                    tag = entry[0]
                    if tag == _HIT:
                        heappush(hit_heap, item)
                    elif entry[2] is ACT:
                        heappush(act_heap, item)
                    else:
                        heappush(pre_heap, item)
                    if entry[4] < _NEVER:
                        heappush(expiry_heap, (entry[4], heap_seq, key, entry))
                else:
                    cache.pop(key, None)
                    if uncached is None:
                        uncached = []
                        redirty = []
                    uncached.append(entry)
                    redirty.append(key)
            dirty.clear()
            if redirty is not None:
                dirty.update(redirty)
        while expiry_heap:
            item = expiry_heap[0]
            key = item[2]
            if cache_get(key) is not item[3]:
                heappop(expiry_heap)
                continue
            if item[0] > now:
                break
            heappop(expiry_heap)
            entry = _examine_bank(
                by_bank[key], flat_banks[key], now, act_allowed_at, stable, False
            )
            if entry[4] > now:
                # Mirror of the dirty-drain store block above — keep
                # the two in lockstep.
                cache[key] = entry
                heap_seq += 1
                hitem = (entry[6], heap_seq, key, entry)
                tag = entry[0]
                if tag == _HIT:
                    heappush(hit_heap, hitem)
                elif entry[2] is ACT:
                    heappush(act_heap, hitem)
                else:
                    heappush(pre_heap, hitem)
                if entry[4] < _NEVER:
                    heappush(expiry_heap, (entry[4], heap_seq, key, entry))
            else:
                del cache[key]
                dirty.add(key)
                if uncached is None:
                    uncached = []
                uncached.append(entry)
        requests.heap_seq = heap_seq

        # 3. Inline evaluation of uncacheable bank decisions (their
        # banks stay dirty, so every step re-queries — exactly the
        # naive behaviour such mechanisms get today).
        if uncached is not None:
            for entry in uncached:
                tag = entry[0]
                if tag == _HIT:
                    req = entry[1]
                    t = entry[6]
                    bus = wr_bus_ready if req.is_write else rd_bus_ready
                    if bus > t:
                        t = bus
                    if t <= now:
                        seq = req.queue_seq
                        if best_hit is None or seq < best_hit_seq:
                            best_hit = req
                            best_hit_seq = seq
                    elif t < next_ready:
                        next_ready = t
                    continue
                t = entry[6]
                if entry[2] is ACT:
                    if rank_t < 0.0:
                        rank_t = rank0._act_ready
                        if rank_t < now:
                            rank_t = now
                    if rank_t > t:
                        t = rank_t
                if tag == _IDLE:
                    if t < next_ready:
                        next_ready = t
                    continue
                if t > now:
                    if t < next_ready:
                        next_ready = t
                    continue
                req = entry[1]
                seq = req.queue_seq
                if best_row is None or seq < best_row_seq:
                    best_row = req
                    best_row_seq = seq
                    best_row_kind = entry[2]
                    best_row_row = entry[3]

        # 4. Ready candidates and exact wakes from the class heaps.
        # Dirty banks for step-1's uncacheable entries were re-added
        # above via ``dirty``; heaps only ever hold cached entries, so
        # every minimum below is exact.  A bank-local time never
        # un-passes, so an entry migrates from the local-time wake heap
        # to the class's arrival-ordered ready heap exactly once; the
        # FR-FCFS winner is then the live ready-heap top (the oldest
        # locally-ready candidate), and a gated class's wake needs no
        # per-item scan: with any locally-ready item the shared scalar
        # is the binding constraint, without one it is max(shared,
        # oldest local time).
        # --- hits (shared scalar: data-bus occupancy) ---
        while hit_heap:
            item = hit_heap[0]
            if cache_get(item[2]) is not item[3]:
                heappop(hit_heap)
                continue
            if item[0] > now:
                break
            heappop(hit_heap)
            entry = item[3]
            heappush(ready_hits, (entry[1].queue_seq, item[2], entry))
        while ready_hits and cache_get(ready_hits[0][1]) is not ready_hits[0][2]:
            heappop(ready_hits)
        if ready_hits:
            req = ready_hits[0][2][1]
            bus = wr_bus_ready if req.is_write else rd_bus_ready
            if bus > now:
                # Bus not free: no hit is ready anywhere, and some
                # bank's column timing has already passed, so the bus
                # is the binding constraint.
                if bus < next_ready:
                    next_ready = bus
            else:
                seq = ready_hits[0][0]
                if best_hit is None or seq < best_hit_seq:
                    best_hit = req
                    best_hit_seq = seq
        if hit_heap:
            item = hit_heap[0]  # live: dead tops popped above
            t = item[0]
            bus = wr_bus_ready if item[3][1].is_write else rd_bus_ready
            if bus > t:
                t = bus
            if t < next_ready:
                next_ready = t

        # --- ACT deciders (shared scalar: rank tRRD/tFAW) ---
        while act_heap:
            item = act_heap[0]
            if cache_get(item[2]) is not item[3]:
                heappop(act_heap)
                continue
            if item[0] > now:
                break
            heappop(act_heap)
            entry = item[3]
            # A live _IDLE entry cannot come due (its expiry precedes
            # its wake), so migrating entries are _ROW deciders.
            heappush(ready_acts, (entry[1].queue_seq, item[2], entry))
        while ready_acts and cache_get(ready_acts[0][1]) is not ready_acts[0][2]:
            heappop(ready_acts)
        if ready_acts:
            if rank_t < 0.0:
                rank_t = rank0._act_ready
                if rank_t < now:
                    rank_t = now
            if rank_t > now:
                # Rank ACT budget exhausted: it alone gates the class.
                if rank_t < next_ready:
                    next_ready = rank_t
            else:
                seq = ready_acts[0][0]
                entry = ready_acts[0][2]
                req = entry[1]
                if best_row is None or seq < best_row_seq:
                    best_row = req
                    best_row_seq = seq
                    best_row_kind = ACT
                    best_row_row = entry[3]
        if act_heap:
            t = act_heap[0][0]
            if rank_t < 0.0:
                rank_t = rank0._act_ready
                if rank_t < now:
                    rank_t = now
            if rank_t > t:
                t = rank_t
            if t < next_ready:
                next_ready = t

        # --- PRE deciders (no shared scalar) ---
        while pre_heap:
            item = pre_heap[0]
            if cache_get(item[2]) is not item[3]:
                heappop(pre_heap)
                continue
            if item[0] > now:
                break
            heappop(pre_heap)
            entry = item[3]
            heappush(ready_pres, (entry[1].queue_seq, item[2], entry))
        while ready_pres and cache_get(ready_pres[0][1]) is not ready_pres[0][2]:
            heappop(ready_pres)
        if ready_pres:
            seq = ready_pres[0][0]
            entry = ready_pres[0][2]
            req = entry[1]
            if best_row is None or seq < best_row_seq:
                best_row = req
                best_row_seq = seq
                best_row_kind = CommandKind.PRE
                best_row_row = entry[3]
        if pre_heap:
            t = pre_heap[0][0]
            if t < next_ready:
                next_ready = t

        # Column commands (row-buffer hits) always outrank row commands.
        if best_hit is not None:
            req = best_hit
            kind = CommandKind.WR if req.is_write else CommandKind.RD
            return Command(kind, req.rank, req.bank, req.row, req.col), req, now
        if best_row is not None:
            req = best_row
            return Command(best_row_kind, req.rank, req.bank, best_row_row), req, now
        return None, None, next_ready

    def make_fused(self, requests, device, mitigation):
        """Specialize the incremental :meth:`select_raw` path for one
        fixed (queue, device, mitigation) triple.

        Returns ``fused(now) -> (command, request, next_ready)`` with
        every stable object — the queue's cache/heap bundle, the flat
        bank table, the mitigation's gate — prebound as closure cells,
        or None when the fast path does not apply (plain-list queue,
        multi-rank device).  The controller calls it only with no
        refresh-draining ranks; mutable scalars (bus occupancy, verdict
        stability, heap sequence) are still read live each call.

        The body is :meth:`select_raw`'s incremental path verbatim —
        keep the two in lockstep — with one extra elision: mitigation
        stability state is only consulted when some bank actually needs
        re-examination (dirty, or an expiry has come due).
        """
        if not isinstance(requests, RequestQueue) or len(device.ranks) != 1:
            return None
        (
            cache,
            by_bank,
            dirty,
            expiry_heap,
            hit_heap,
            act_heap,
            pre_heap,
            ready_hits,
            ready_acts,
            ready_pres,
        ) = requests.hot
        cache_get = cache.get
        cache_pop = cache.pop
        by_bank_get = by_bank.get
        flat_banks, rank0, tCL, tCWL = device.select_hot
        never_blocks = mitigation.never_blocks
        act_allowed_at = mitigation.act_allowed_at
        examine = _examine_bank
        heap_push = heappush
        heap_pop = heappop
        NEVER = _NEVER
        HIT = _HIT
        IDLE = _IDLE
        ACT = CommandKind.ACT
        PRE = CommandKind.PRE
        RD = CommandKind.RD
        WR = CommandKind.WR
        make_command = Command

        def fused(now: float):
            bus_free = device._bus_free
            rd_bus_ready = bus_free - tCL
            wr_bus_ready = bus_free - tCWL
            next_ready = NEVER
            best_hit = None
            best_hit_seq = -1
            best_row = None
            best_row_seq = -1
            best_row_kind = None
            best_row_row = -1
            rank_t = -1.0  # lazy: rank ACT readiness at most once per step

            uncached = None
            if dirty or (expiry_heap and expiry_heap[0][0] <= now):
                stable = NEVER if never_blocks else mitigation.act_block_stable
                heap_seq = requests.heap_seq
                redirty = None
                if dirty:
                    for key in dirty:
                        bank_requests = by_bank_get(key)
                        if bank_requests is None:
                            cache_pop(key, None)
                            continue
                        entry = examine(
                            bank_requests, flat_banks[key], now,
                            act_allowed_at, stable, False,
                        )
                        if entry[4] > now:
                            cache[key] = entry
                            heap_seq += 1
                            item = (entry[6], heap_seq, key, entry)
                            tag = entry[0]
                            if tag == HIT:
                                heap_push(hit_heap, item)
                            elif entry[2] is ACT:
                                heap_push(act_heap, item)
                            else:
                                heap_push(pre_heap, item)
                            if entry[4] < NEVER:
                                heap_push(expiry_heap, (entry[4], heap_seq, key, entry))
                        else:
                            cache_pop(key, None)
                            if uncached is None:
                                uncached = []
                                redirty = []
                            uncached.append(entry)
                            redirty.append(key)
                    dirty.clear()
                    if redirty is not None:
                        dirty.update(redirty)
                while expiry_heap:
                    item = expiry_heap[0]
                    key = item[2]
                    if cache_get(key) is not item[3]:
                        heap_pop(expiry_heap)
                        continue
                    if item[0] > now:
                        break
                    heap_pop(expiry_heap)
                    entry = examine(
                        by_bank[key], flat_banks[key], now,
                        act_allowed_at, stable, False,
                    )
                    if entry[4] > now:
                        cache[key] = entry
                        heap_seq += 1
                        hitem = (entry[6], heap_seq, key, entry)
                        tag = entry[0]
                        if tag == HIT:
                            heap_push(hit_heap, hitem)
                        elif entry[2] is ACT:
                            heap_push(act_heap, hitem)
                        else:
                            heap_push(pre_heap, hitem)
                        if entry[4] < NEVER:
                            heap_push(expiry_heap, (entry[4], heap_seq, key, entry))
                    else:
                        del cache[key]
                        dirty.add(key)
                        if uncached is None:
                            uncached = []
                        uncached.append(entry)
                requests.heap_seq = heap_seq

            if uncached is not None:
                for entry in uncached:
                    tag = entry[0]
                    if tag == HIT:
                        req = entry[1]
                        t = entry[6]
                        bus = wr_bus_ready if req.is_write else rd_bus_ready
                        if bus > t:
                            t = bus
                        if t <= now:
                            seq = req.queue_seq
                            if best_hit is None or seq < best_hit_seq:
                                best_hit = req
                                best_hit_seq = seq
                        elif t < next_ready:
                            next_ready = t
                        continue
                    t = entry[6]
                    if entry[2] is ACT:
                        if rank_t < 0.0:
                            rank_t = rank0._act_ready
                            if rank_t < now:
                                rank_t = now
                        if rank_t > t:
                            t = rank_t
                    if tag == IDLE:
                        if t < next_ready:
                            next_ready = t
                        continue
                    if t > now:
                        if t < next_ready:
                            next_ready = t
                        continue
                    req = entry[1]
                    seq = req.queue_seq
                    if best_row is None or seq < best_row_seq:
                        best_row = req
                        best_row_seq = seq
                        best_row_kind = entry[2]
                        best_row_row = entry[3]

            # --- hits (shared scalar: data-bus occupancy) ---
            while hit_heap:
                item = hit_heap[0]
                if cache_get(item[2]) is not item[3]:
                    heap_pop(hit_heap)
                    continue
                if item[0] > now:
                    break
                heap_pop(hit_heap)
                entry = item[3]
                heap_push(ready_hits, (entry[1].queue_seq, item[2], entry))
            while ready_hits and cache_get(ready_hits[0][1]) is not ready_hits[0][2]:
                heap_pop(ready_hits)
            if ready_hits:
                req = ready_hits[0][2][1]
                bus = wr_bus_ready if req.is_write else rd_bus_ready
                if bus > now:
                    if bus < next_ready:
                        next_ready = bus
                else:
                    seq = ready_hits[0][0]
                    if best_hit is None or seq < best_hit_seq:
                        best_hit = req
                        best_hit_seq = seq
            if hit_heap:
                item = hit_heap[0]  # live: dead tops popped above
                t = item[0]
                bus = wr_bus_ready if item[3][1].is_write else rd_bus_ready
                if bus > t:
                    t = bus
                if t < next_ready:
                    next_ready = t

            # --- ACT deciders (shared scalar: rank tRRD/tFAW) ---
            while act_heap:
                item = act_heap[0]
                if cache_get(item[2]) is not item[3]:
                    heap_pop(act_heap)
                    continue
                if item[0] > now:
                    break
                heap_pop(act_heap)
                entry = item[3]
                heap_push(ready_acts, (entry[1].queue_seq, item[2], entry))
            while ready_acts and cache_get(ready_acts[0][1]) is not ready_acts[0][2]:
                heap_pop(ready_acts)
            if ready_acts:
                if rank_t < 0.0:
                    rank_t = rank0._act_ready
                    if rank_t < now:
                        rank_t = now
                if rank_t > now:
                    if rank_t < next_ready:
                        next_ready = rank_t
                else:
                    seq = ready_acts[0][0]
                    entry = ready_acts[0][2]
                    req = entry[1]
                    if best_row is None or seq < best_row_seq:
                        best_row = req
                        best_row_seq = seq
                        best_row_kind = ACT
                        best_row_row = entry[3]
            if act_heap:
                t = act_heap[0][0]
                if rank_t < 0.0:
                    rank_t = rank0._act_ready
                    if rank_t < now:
                        rank_t = now
                if rank_t > t:
                    t = rank_t
                if t < next_ready:
                    next_ready = t

            # --- PRE deciders (no shared scalar) ---
            while pre_heap:
                item = pre_heap[0]
                if cache_get(item[2]) is not item[3]:
                    heap_pop(pre_heap)
                    continue
                if item[0] > now:
                    break
                heap_pop(pre_heap)
                entry = item[3]
                heap_push(ready_pres, (entry[1].queue_seq, item[2], entry))
            while ready_pres and cache_get(ready_pres[0][1]) is not ready_pres[0][2]:
                heap_pop(ready_pres)
            if ready_pres:
                seq = ready_pres[0][0]
                entry = ready_pres[0][2]
                req = entry[1]
                if best_row is None or seq < best_row_seq:
                    best_row = req
                    best_row_seq = seq
                    best_row_kind = PRE
                    best_row_row = entry[3]
            if pre_heap:
                t = pre_heap[0][0]
                if t < next_ready:
                    next_ready = t

            if best_hit is not None:
                req = best_hit
                kind = WR if req.is_write else RD
                return make_command(kind, req.rank, req.bank, req.row, req.col), req, now
            if best_row is not None:
                req = best_row
                return make_command(best_row_kind, req.rank, req.bank, best_row_row), req, now
            return None, None, next_ready

        return fused

    def _scan_select(
        self,
        requests: RequestQueue,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        """Every-bank scan over the same cache (refresh windows and
        multi-rank devices).  Produces the identical Selection the
        incremental path would: same entries, same candidate rules,
        same Selection-contract wakes."""
        by_bank = requests.by_bank
        cache = requests.bank_cache
        cache_get = cache.get
        spec = device.spec
        ranks = device.ranks
        flat_banks = device.flat_banks
        bus_free = device.bus_free
        rd_bus_ready = bus_free - spec.tCL
        wr_bus_ready = bus_free - spec.tCWL
        stable = _NEVER if mitigation.never_blocks else mitigation.act_block_stable
        act_allowed_at = mitigation.act_allowed_at

        RD = CommandKind.RD
        WR = CommandKind.WR
        ACT = CommandKind.ACT
        next_ready = _NEVER
        best_hit: Request | None = None
        best_hit_seq = -1
        best_row: Request | None = None
        best_row_seq = -1
        best_row_kind = None
        best_row_row = -1
        # Rank-level ACT readiness (tRRD/tFAW) is constant within one
        # scheduling step; compute it at most once per rank.
        rank_act_ready: dict[int, float] = {}

        any_rank_blocked = bool(blocked_ranks)
        key_bits = BANK_KEY_BITS
        for key, bank_requests in by_bank.items():
            rank_blocked = any_rank_blocked and (key >> key_bits) in blocked_ranks
            entry = cache_get(key)
            if entry is None or now >= entry[4]:
                # Dirty or expired: re-walk the bank.  Refresh-draining
                # ranks accept no row commands and their requests are
                # not queried — but an open bank's hits still serve.
                fresh = _examine_bank(
                    bank_requests,
                    flat_banks[key],
                    now,
                    act_allowed_at,
                    stable,
                    rank_blocked,
                )
                if fresh is None:
                    # Undecidable while the rank drains; whatever entry
                    # existed is stale now.
                    if entry is not None:
                        del cache[key]
                        requests.dirty.add(key)
                    continue
                entry = fresh
                tag = entry[0]
                # Store for this scan's reuse but leave the bank dirty
                # and push NO heap items: the incremental path re-tracks
                # dirty banks (one re-examination + push) when it
                # resumes, and a permanently-scanning configuration
                # (multi-rank) must not grow the heaps it never drains.
                requests.dirty.add(key)
                if entry[4] > now:
                    cache[key] = entry
                else:
                    cache.pop(key, None)
            else:
                tag = entry[0]
                if tag != _HIT and rank_blocked:
                    continue
            if tag == _HIT:
                req = entry[1]
                t = entry[6]
                bus = wr_bus_ready if req.is_write else rd_bus_ready
                if bus > t:
                    t = bus
                if t <= now:
                    # Oldest ready hit across all banks wins (FR-FCFS
                    # arrival-order tie-break).
                    seq = req.queue_seq
                    if best_hit is None or seq < best_hit_seq:
                        best_hit = req
                        best_hit_seq = seq
                elif t < next_ready:
                    next_ready = t
                continue
            # _ROW/_IDLE: bank-local gate snapshotted at examination
            # time; ACT gates fold in the live rank constraint (the
            # Selection contract's wakes depend on it even when bank
            # timing is the later of the two).
            t = entry[6]
            kind = entry[2]
            if kind is ACT:
                rank_id = key >> key_bits
                rank_t = rank_act_ready.get(rank_id)
                if rank_t is None:
                    rank_t = ranks[rank_id].earliest_act(now)
                    rank_act_ready[rank_id] = rank_t
                if rank_t > t:
                    t = rank_t
            if tag == _IDLE:
                # All blocked: wake when the first request unblocks AND
                # its row command could issue (Selection contract).
                if t < next_ready:
                    next_ready = t
                continue
            if t > now:
                if t < next_ready:
                    next_ready = t
                continue
            req = entry[1]
            seq = req.queue_seq
            if best_row is None or seq < best_row_seq:
                best_row = req
                best_row_seq = seq
                best_row_kind = kind
                best_row_row = entry[3]

        # Column commands (row-buffer hits) always outrank row commands.
        if best_hit is not None:
            req = best_hit
            kind = WR if req.is_write else RD
            return Selection(
                Command(kind, req.rank, req.bank, req.row, req.col), req, now
            )
        if best_row is not None:
            req = best_row
            return Selection(
                Command(best_row_kind, req.rank, req.bank, best_row_row), req, now
            )
        return Selection(None, None, next_ready)


def _naive_select(
    requests,
    device: DramDevice,
    mitigation: MitigationMechanism,
    now: float,
    blocked_ranks: frozenset[int],
) -> Selection:
    """One obviously-correct FR-FCFS step: a fresh scan, no cross-step
    state.

    Every considered request is re-queried against the mitigation and
    every candidate's issue time comes from ``device.earliest_issue``.
    The scan walks each bank's requests in arrival order, derives the
    bank's decision exactly as the Selection contract states it (hit >
    hit protection > oldest-safe row decider > all-blocked wake), and
    breaks candidate ties toward the oldest request across banks.  This
    is the reference the differential harness holds the incremental
    policy to.
    """
    items = requests.items if isinstance(requests, RequestQueue) else requests
    if not items:
        return Selection(None, None, _NEVER)
    by_bank: dict[int, list[Request]] = {}
    for req in items:  # arrival order within each bank
        by_bank.setdefault(req.bank_key, []).append(req)

    best_hit: Request | None = None
    best_hit_pos = -1
    best_hit_kind = None
    best_row: Request | None = None
    best_row_pos = -1
    best_row_kind = None
    best_row_row = -1
    position = {id(req): pos for pos, req in enumerate(items)}
    next_ready = _NEVER
    for key, bank_requests in by_bank.items():
        first = bank_requests[0]
        bank = device.bank(first.rank, first.bank)
        open_row = bank.open_row

        # 1. Row-buffer hits: the oldest hit is the bank's candidate and
        #    protects the open row from any precharge decision.
        hit: Request | None = None
        if open_row is not None:
            for req in bank_requests:
                if req.row == open_row:
                    hit = req
                    break
        if hit is not None:
            kind = CommandKind.WR if hit.is_write else CommandKind.RD
            t = device.earliest_issue(
                Command(kind, hit.rank, hit.bank, hit.row, hit.col), now
            )
            if t <= now:
                pos = position[id(hit)]
                if best_hit is None or pos < best_hit_pos:
                    best_hit = hit
                    best_hit_pos = pos
                    best_hit_kind = kind
            elif t < next_ready:
                next_ready = t
            continue

        # 2. Refresh-draining ranks accept no row commands (and their
        #    requests are not queried).
        if first.rank in blocked_ranks:
            continue

        # 3. The oldest RowHammer-safe request decides the bank's row
        #    command; if every request is blocked, the bank wakes when
        #    the first unblocks and its row command could issue.
        decider: Request | None = None
        earliest_allowed = _NEVER
        for req in bank_requests:
            allowed = mitigation.act_allowed_at(
                req.rank, req.bank, req.row, req.thread, now
            )
            if allowed <= now:
                decider = req
                break
            if allowed < earliest_allowed:
                earliest_allowed = allowed
        if open_row is None:
            kind, row = CommandKind.ACT, first.row if decider is None else decider.row
        else:
            kind, row = CommandKind.PRE, open_row
        gate = device.earliest_issue(Command(kind, first.rank, first.bank, row), now)
        if decider is None:
            wake = gate if gate > earliest_allowed else earliest_allowed
            if wake < next_ready:
                next_ready = wake
            continue
        if gate <= now:
            pos = position[id(decider)]
            if best_row is None or pos < best_row_pos:
                best_row = decider
                best_row_pos = pos
                best_row_kind = kind
                best_row_row = row
        elif gate < next_ready:
            next_ready = gate

    if best_hit is not None:
        req = best_hit
        return Selection(
            Command(best_hit_kind, req.rank, req.bank, req.row, req.col), req, now
        )
    if best_row is not None:
        req = best_row
        return Selection(
            Command(best_row_kind, req.rank, req.bank, best_row_row), req, now
        )
    return Selection(None, None, next_ready)


class ReferenceFrFcfsPolicy(SchedulingPolicy):
    """Naive FR-FCFS: the differential-testing ground truth.

    Must stay boring.  Any optimization belongs in
    :class:`FrFcfsPolicy`; this class exists so that policy has an
    independent, obviously-correct implementation to be measured
    against.
    """

    name = "fr-fcfs-reference"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        return _naive_select(requests, device, mitigation, now, blocked_ranks)


class FcfsPolicy(SchedulingPolicy):
    """Strict arrival-order scheduling (ablation reference)."""

    name = "fcfs"

    def select(
        self,
        requests,
        device: DramDevice,
        mitigation: MitigationMechanism,
        now: float,
        blocked_ranks: frozenset[int],
    ) -> Selection:
        items = requests.items if isinstance(requests, RequestQueue) else requests
        if not items:
            return Selection(None, None, _NEVER)
        # Strict FCFS: only the head request is ever considered.
        req = items[0]
        a = req.address
        bank = device.bank(a.rank, a.bank)
        if bank.open_row == a.row:
            kind = CommandKind.WR if req.is_write else CommandKind.RD
            cmd = Command(kind, a.rank, a.bank, a.row, a.col)
        elif a.rank in blocked_ranks:
            return Selection(None, None, _NEVER)
        elif bank.open_row is None:
            allowed = mitigation.act_allowed_at(a.rank, a.bank, a.row, req.thread, now)
            if allowed > now:
                return Selection(None, None, allowed)
            cmd = Command(CommandKind.ACT, a.rank, a.bank, a.row)
        else:
            cmd = Command(CommandKind.PRE, a.rank, a.bank, bank.open_row)
        t = device.earliest_issue(cmd, now)
        if t <= now:
            return Selection(cmd, req, now)
        return Selection(None, None, t)
