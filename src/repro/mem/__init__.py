"""Memory controller substrate: requests, queues, FR-FCFS scheduling,
refresh management, and the controller itself."""

from repro.mem.request import Request, RequestKind
from repro.mem.queues import RequestQueue
from repro.mem.scheduler import SchedulingPolicy, FrFcfsPolicy, FcfsPolicy
from repro.mem.refresh import RefreshManager
from repro.mem.controller import MemoryController, ControllerConfig, ThreadMemStats

__all__ = [
    "Request",
    "RequestKind",
    "RequestQueue",
    "SchedulingPolicy",
    "FrFcfsPolicy",
    "FcfsPolicy",
    "RefreshManager",
    "MemoryController",
    "ControllerConfig",
    "ThreadMemStats",
]
