"""Declarative governor configuration for the experiment harness.

A :class:`GovernorSpec` is the picklable, hashable description of a
governor — what a :class:`~repro.harness.parallel.SimJob` can carry
across a process boundary and what the persistent result cache can key
on (its ``repr`` is stable and covers every field).  The spec names a
policy by registry string and carries that policy's knobs;
:func:`build_governor` turns it into a live
:class:`~repro.os.governor.Governor` inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.os.governor import Governor
from repro.os.policies import KillPolicy, MigratePolicy, QuotaScalePolicy
from repro.utils.validation import ConfigError, require

#: Policy registry names a spec may carry.
OS_POLICY_NAMES = ("kill", "quota", "migrate")


@dataclass(frozen=True)
class GovernorSpec:
    """One governor configuration (its policies + their knobs).

    ``policy`` is a registry name, or several joined with ``+``
    (``"quota+kill"``) for a multi-policy governor — policies review in
    the listed order each epoch.  ``threshold`` is the suspect
    threshold shared by every listed policy (``kill_rhli`` for kill,
    ``suspect_score`` for quota/migrate); ``None`` defers to each
    policy's own default.  ``epoch_ns`` of ``None`` defers to the
    attach-time default (the mechanism's RHLI epoch).
    """

    policy: str
    epoch_ns: float | None = None
    threshold: float | None = None
    patience_epochs: int = 1
    decay: float = 0.5
    recovery: float = 2.0
    min_scale: float = 1.0 / 64.0
    quarantine_channel: int | None = None

    @property
    def policy_names(self) -> tuple[str, ...]:
        return tuple(self.policy.split("+"))

    def __post_init__(self) -> None:
        require(len(self.policy_names) >= 1, "governor spec needs a policy")
        for name in self.policy_names:
            require(
                name in OS_POLICY_NAMES,
                f"unknown governor policy {name!r}; "
                f"known: {', '.join(OS_POLICY_NAMES)}",
            )


def _build_policy(spec: GovernorSpec, name: str):
    if name == "kill":
        return KillPolicy(
            patience_epochs=spec.patience_epochs,
            **({"kill_rhli": spec.threshold} if spec.threshold is not None else {}),
        )
    if name == "quota":
        return QuotaScalePolicy(
            decay=spec.decay,
            recovery=spec.recovery,
            min_scale=spec.min_scale,
            **(
                {"suspect_score": spec.threshold}
                if spec.threshold is not None
                else {}
            ),
        )
    if name == "migrate":
        return MigratePolicy(
            patience_epochs=spec.patience_epochs,
            quarantine_channel=spec.quarantine_channel,
            **(
                {"suspect_score": spec.threshold}
                if spec.threshold is not None
                else {}
            ),
        )
    # pragma: no cover - __post_init__ rejects unknown names
    raise ConfigError(f"unknown governor policy {name!r}")


def build_governor(spec: GovernorSpec | None) -> Governor | None:
    """Instantiate the governor a spec describes (``None`` passes
    through, meaning "no governor")."""
    if spec is None:
        return None
    policies = [_build_policy(spec, name) for name in spec.policy_names]
    return Governor(policies, epoch_ns=spec.epoch_ns)
