"""The epoch-driven OS governor.

A :class:`Governor` closes the loop between mitigation telemetry and
scheduling decisions: once per epoch it samples a
:class:`~repro.os.telemetry.TelemetrySample` and hands it to its
policies, which act back through the governor (it is its own action
sink).  Two deployments share this one class:

* **system-level** — :meth:`attach` binds the governor to a
  :class:`~repro.sim.system.System`; the event loop drives reviews
  (``System._fire_governor``) and actions land on cores: kill
  deschedules the thread (zero requests after the kill timestamp),
  quota scales the core's memory-level-parallelism limit, migrate
  re-pins the core's future requests to a quarantine channel.
  Telemetry aggregates across every channel (counters sum, RHLI maxes
  — ``MemorySystem.os_telemetry``).
* **mechanism-coupled** — :meth:`bind_mechanism` embeds the governor in
  one mechanism instance (``BlockHammerWithOsPolicy``), reviews are
  driven from the mechanism's ``on_time_advance``, and actions are
  *recorded only*: the mechanism enforces kills itself through its
  in-flight quotas, preserving the original per-channel ``blockhammer-
  os`` semantics bit-exactly.

Review cadence is normalized in both modes: the first review happens
one epoch after the governor first observes time (``advance``), not one
epoch after attach — the old OS policy initialized its review clock at
attach time, silently assuming attach happened at t=0.
"""

from __future__ import annotations

from repro.os.policies import OsPolicy
from repro.os.telemetry import TelemetrySample, sample_telemetry
from repro.utils.validation import require


class Governor:
    """Epoch-driven policy host and action sink."""

    #: Trace probe (``os`` category), bound by the System when a
    #: telemetry bus is attached; actions and reviews emit through it.
    probe = None

    def __init__(self, policies: list[OsPolicy], epoch_ns: float | None = None) -> None:
        if epoch_ns is not None:
            require(epoch_ns > 0.0, "governor epoch must be positive")
        self.policies = list(policies)
        #: Review cadence; ``None`` defers to the attach-time default
        #: (the mechanism's RHLI counter epoch where it has one).
        self.epoch_ns = epoch_ns
        self._next_review: float | None = None
        self._system = None
        self._mechanism = None
        self._now = 0.0
        #: Reviews performed so far.
        self.epochs = 0
        #: Threads descheduled by a kill action.
        self.killed: set[int] = set()
        self.kill_log: list[tuple[int, float]] = []
        #: thread -> quarantine channel, for migrated threads.
        self.migrations: dict[int, int] = {}
        self.migration_log: list[tuple[int, int, float]] = []
        #: thread -> current MLP quota scale (threads at 1.0 are absent).
        self.quota_scale: dict[int, float] = {}
        self.quota_updates = 0

    # ------------------------------------------------------------------
    # Deployment binding.
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Bind to a :class:`~repro.sim.system.System` (system-level
        mode): telemetry spans every channel, actions land on cores."""
        require(self._mechanism is None, "governor already bound to a mechanism")
        self._system = system
        if self.epoch_ns is None:
            self.epoch_ns = self._default_epoch(system)

    def bind_mechanism(self, mechanism, epoch_ns: float | None = None) -> None:
        """Bind to one mechanism instance (mechanism-coupled mode):
        telemetry comes from that instance alone and actions are
        recorded for the mechanism to enforce.  Only policies whose
        actions a mechanism *can* enforce are accepted — quota/migrate
        act on cores, so logging them here would fabricate an action
        record nothing ever applied."""
        require(self._system is None, "governor already attached to a system")
        for policy in self.policies:
            require(
                not policy.requires_system,
                f"{policy.name} policy acts on cores and needs a "
                "system-level governor, not a mechanism-coupled one",
            )
        self._mechanism = mechanism
        if epoch_ns is not None:
            require(epoch_ns > 0.0, "governor epoch must be positive")
            self.epoch_ns = epoch_ns
        require(self.epoch_ns is not None, "mechanism-coupled governor needs an epoch")

    def _default_epoch(self, system) -> float:
        """Default review cadence: the channel-0 mechanism's epoch (the
        RHLI counter cadence, per Section 3.2.3 — an OS could poll
        faster at the cost of more scheduler work), else half the
        refresh window (the CBF-lifetime convention)."""
        mechanism = system.memsys.mitigations[0]
        epoch = getattr(getattr(mechanism, "config", None), "epoch_ns", None)
        if epoch is not None:
            return epoch
        return system.memsys.spec.tREFW / 2.0

    # ------------------------------------------------------------------
    # Review cadence.
    # ------------------------------------------------------------------
    def start(self, now: float) -> float:
        """Anchor the review clock: first review one epoch after ``now``."""
        self._next_review = now + self.epoch_ns
        return self._next_review

    def advance(self, now: float) -> float:
        """Perform every review due at or before ``now``; returns the
        next review time.  Safe to call at any cadence (each controller
        step in mechanism-coupled mode, exact epoch events in
        system-level mode)."""
        if self._next_review is None:
            return self.start(now)
        while now >= self._next_review:
            self._review(now)
            self._next_review += self.epoch_ns
        return self._next_review

    def _review(self, now: float) -> None:
        self.epochs += 1
        self._now = now
        if self.probe is not None:
            self.probe(now, "review", 0, epoch=self.epochs)
        sample = self.sample(now)
        for policy in self.policies:
            policy.review(sample, self)

    def sample(self, now: float) -> TelemetrySample:
        """The telemetry this governor's policies see at ``now``."""
        if self._mechanism is not None:
            mechanism = self._mechanism
            return sample_telemetry(
                [mechanism], mechanism.context.num_threads, now, self.epochs
            )
        return self._system.memsys.os_telemetry(now, self.epochs)

    # ------------------------------------------------------------------
    # The action sink (policies call these).
    # ------------------------------------------------------------------
    def is_killed(self, thread: int) -> bool:
        return thread in self.killed

    def is_migrated(self, thread: int) -> bool:
        return thread in self.migrations

    def kill(self, thread: int) -> None:
        """Deschedule ``thread`` permanently at the current review time."""
        if thread in self.killed:
            return
        self.killed.add(thread)
        self.kill_log.append((thread, self._now))
        if self.probe is not None:
            self.probe(self._now, "kill", 0, thread=thread)
        if self._system is not None:
            self._system.deschedule_thread(thread, self._now)

    def set_quota_scale(self, thread: int, scale: float) -> None:
        """Scale ``thread``'s MLP quota (1.0 = unthrottled)."""
        self.quota_scale[thread] = scale
        self.quota_updates += 1
        if self.probe is not None:
            self.probe(self._now, "quota_scale", 0, thread=thread, scale=scale)
        if self._system is not None:
            self._system.cores[thread].set_mlp_scale(scale)

    def migrate(self, thread: int, channel: int) -> None:
        """Re-pin ``thread``'s future requests to ``channel``."""
        if thread in self.migrations:
            return
        if self._system is not None:
            require(
                0 <= channel < self._system.memsys.num_channels,
                f"quarantine channel {channel} outside the system's "
                f"{self._system.memsys.num_channels} channels",
            )
            self._system.cores[thread].repin_channel(channel)
        self.migrations[thread] = channel
        self.migration_log.append((thread, channel, self._now))
        if self.probe is not None:
            self.probe(self._now, "migrate", 0, thread=thread, channel=channel)

    # ------------------------------------------------------------------
    # Reporting (the ``governor_actions`` extractor; JSON-safe).
    # ------------------------------------------------------------------
    def actions_summary(self) -> dict:
        """Plain-data action record: lists of scalars only, so the
        persistent result cache round-trips it exactly."""
        return {
            "epochs": self.epochs,
            "kills": [[thread, time] for thread, time in self.kill_log],
            "migrations": [
                [thread, channel, time]
                for thread, channel, time in self.migration_log
            ],
            "quota_updates": self.quota_updates,
            "quota_scale": [
                [thread, scale] for thread, scale in sorted(self.quota_scale.items())
            ],
        }
