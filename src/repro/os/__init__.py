"""The OS governor subsystem: closed-loop scheduling above the memory
system.

BlockHammer Section 3.2.3 exposes per-thread RHLI to system software
and leaves OS policy design to future work; this package is that layer.
An epoch-driven :class:`~repro.os.governor.Governor` samples the
per-thread/per-channel telemetry every mitigation mechanism exposes
(:meth:`~repro.mitigations.base.MitigationMechanism.os_telemetry` —
RHLI, blacklist/delay counters — plus the controllers' blocked-
injection counts) and drives pluggable scheduling policies:

* :class:`~repro.os.policies.KillPolicy` — deschedule a thread after N
  consecutive suspect epochs (the paper's "kill or deschedule");
* :class:`~repro.os.policies.QuotaScalePolicy` — BreakHammer-style
  multiplicative MLP-quota decay on suspect threads with multiplicative
  recovery once they behave;
* :class:`~repro.os.policies.MigratePolicy` — re-pin a suspect thread's
  future requests to a quarantine channel, isolating its interference.

The governor runs in two deployments: **system-level** (attached to a
:class:`~repro.sim.system.System`, reviewed from the event loop, acting
on cores) and **mechanism-coupled** (embedded in
:class:`~repro.core.os_policy.BlockHammerWithOsPolicy`, reviewed from
the mechanism's ``on_time_advance``, one instance per channel — the
original ``blockhammer-os`` semantics, bit-identical).  Disabled (the
default) it costs nothing: no events are scheduled and no hooks fire.
"""

from repro.os.governor import Governor
from repro.os.policies import KillPolicy, MigratePolicy, OsPolicy, QuotaScalePolicy
from repro.os.spec import GovernorSpec, build_governor
from repro.os.telemetry import TelemetrySample, ThreadTelemetry, sample_telemetry

__all__ = [
    "Governor",
    "GovernorSpec",
    "KillPolicy",
    "MigratePolicy",
    "OsPolicy",
    "QuotaScalePolicy",
    "TelemetrySample",
    "ThreadTelemetry",
    "build_governor",
    "sample_telemetry",
]
