"""Pluggable governor policies: kill, quota-scale, migrate.

Each policy is reviewed once per governor epoch with a fresh
:class:`~repro.os.telemetry.TelemetrySample` and an action sink (the
:class:`~repro.os.governor.Governor` itself).  Policies keep their own
per-thread state (strike counters, quota scales) and act through the
sink only — they never touch cores or mechanisms directly, so the same
policy object works in both governor deployments (system-level and
mechanism-coupled).

All thresholds compare against
:attr:`~repro.os.telemetry.ThreadTelemetry.suspect_score`: RHLI where
the mechanism tracks it (the paper's Section 3.2.3 signal), else the
blocked-injection fraction, else 0 — so a policy above a reactive
baseline simply never fires rather than crashing.
"""

from __future__ import annotations

from repro.os.telemetry import TelemetrySample
from repro.utils.validation import require


class OsPolicy:
    """Base policy: reviewed every governor epoch, acts via the sink."""

    name = "base"
    #: Policies whose actions land on cores (quota scaling, channel
    #: re-pinning) only work in a system-level governor; a
    #: mechanism-coupled governor rejects them at bind time rather than
    #: silently logging actions that were never enforced.
    requires_system = False

    def review(self, sample: TelemetrySample, actions) -> None:
        """Inspect ``sample`` and apply decisions through ``actions``
        (``kill``/``set_quota_scale``/``migrate`` plus the
        ``is_killed``/``is_migrated`` predicates)."""


class StrikePolicy(OsPolicy):
    """Shared strike bookkeeping: one strike per review epoch while a
    thread's suspect score sits at or above ``threshold``, reset the
    moment it drops, firing :meth:`_fire` after ``patience_epochs``
    consecutive strikes.  Ports the original ``BlockHammerWithOsPolicy``
    strike logic bit-exactly, with the review-cadence fixes: strike
    entries are dropped (not retained) once a thread fires, and the
    review clock anchors to the time the governor first observes (see
    ``Governor.advance``)."""

    def __init__(self, threshold: float, patience_epochs: int) -> None:
        require(threshold > 0.0, f"{self.name} threshold must be positive")
        require(patience_epochs >= 1, "patience must be >= 1 epoch")
        self.threshold = threshold
        self.patience_epochs = patience_epochs
        self._strikes: dict[int, int] = {}

    def _skip(self, actions, thread: int) -> bool:
        """Threads this policy no longer reviews."""
        return actions.is_killed(thread)

    def _fire(self, sample: TelemetrySample, actions, thread: int) -> None:
        raise NotImplementedError

    def review(self, sample: TelemetrySample, actions) -> None:
        for row in sample.threads:
            thread = row.thread
            if self._skip(actions, thread):
                continue
            if row.suspect_score >= self.threshold:
                strikes = self._strikes.get(thread, 0) + 1
                if strikes >= self.patience_epochs:
                    # Fired threads carry no stale strike state.
                    self._strikes.pop(thread, None)
                    self._fire(sample, actions, thread)
                else:
                    self._strikes[thread] = strikes
            else:
                self._strikes.pop(thread, None)

    def strikes(self, thread: int) -> int:
        """Current consecutive-suspect-epoch count (0 after firing)."""
        return self._strikes.get(thread, 0)


class KillPolicy(StrikePolicy):
    """Deschedule a thread after ``patience_epochs`` consecutive suspect
    epochs (the paper's "might kill or deschedule an attacking
    thread").  Works in both governor deployments: a system-level
    governor deschedules the core, a mechanism-coupled one records the
    kill for the mechanism to enforce as a zero in-flight quota.
    """

    name = "kill"

    def __init__(self, kill_rhli: float = 0.8, patience_epochs: int = 1) -> None:
        super().__init__(kill_rhli, patience_epochs)

    @property
    def kill_rhli(self) -> float:
        return self.threshold

    def _fire(self, sample: TelemetrySample, actions, thread: int) -> None:
        actions.kill(thread)


class QuotaScalePolicy(OsPolicy):
    """BreakHammer-style multiplicative quota decay and recovery.

    While a thread's suspect score is at or above ``suspect_score`` its
    memory-level-parallelism quota scale is multiplied by ``decay``
    (floored at ``min_scale``); once the score drops below the
    threshold the scale recovers by ``recovery`` per epoch (capped at
    1.0).  Between threshold crossings the scale is therefore monotone
    — strictly non-increasing under suspicion, strictly non-decreasing
    during recovery — which the governor invariant tests assert.
    """

    name = "quota"
    requires_system = True  # acts on cores (MLP limits)

    def __init__(
        self,
        suspect_score: float = 0.2,
        decay: float = 0.5,
        recovery: float = 2.0,
        min_scale: float = 1.0 / 64.0,
    ) -> None:
        require(suspect_score > 0.0, "suspect threshold must be positive")
        require(0.0 < decay < 1.0, "decay must be in (0, 1)")
        require(recovery > 1.0, "recovery must be > 1")
        require(0.0 < min_scale <= 1.0, "min_scale must be in (0, 1]")
        self.suspect_score = suspect_score
        self.decay = decay
        self.recovery = recovery
        self.min_scale = min_scale
        self._scale: dict[int, float] = {}

    def scale(self, thread: int) -> float:
        """The thread's current quota scale (1.0 = unthrottled)."""
        return self._scale.get(thread, 1.0)

    def review(self, sample: TelemetrySample, actions) -> None:
        for row in sample.threads:
            thread = row.thread
            if actions.is_killed(thread):
                continue
            old = self.scale(thread)
            if row.suspect_score >= self.suspect_score:
                new = max(self.min_scale, old * self.decay)
            else:
                new = min(1.0, old * self.recovery)
            if new != old:
                self._scale[thread] = new
                actions.set_quota_scale(thread, new)


class MigratePolicy(StrikePolicy):
    """Re-pin a persistent suspect's future requests to a quarantine
    channel, confining its interference (and its RHLI accrual) to one
    shard of the channel-sharded memory system.

    ``quarantine_channel`` defaults to the system's last channel; on a
    single-channel system that default is channel 0, so migration is a
    no-op by construction and the policy degrades gracefully rather
    than failing (an *explicit* out-of-range channel is rejected by the
    governor).  A thread migrates at most once.
    """

    name = "migrate"
    requires_system = True  # acts on cores (channel re-pinning)

    def __init__(
        self,
        suspect_score: float = 0.5,
        patience_epochs: int = 1,
        quarantine_channel: int | None = None,
    ) -> None:
        super().__init__(suspect_score, patience_epochs)
        if quarantine_channel is not None:
            require(quarantine_channel >= 0, "quarantine channel must be >= 0")
        self.quarantine_channel = quarantine_channel

    @property
    def suspect_score(self) -> float:
        return self.threshold

    def _skip(self, actions, thread: int) -> bool:
        return actions.is_killed(thread) or actions.is_migrated(thread)

    def _fire(self, sample: TelemetrySample, actions, thread: int) -> None:
        target = (
            self.quarantine_channel
            if self.quarantine_channel is not None
            else sample.num_channels - 1
        )
        actions.migrate(thread, target)
