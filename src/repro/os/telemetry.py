"""Telemetry sampling: what an OS governor sees each epoch.

A :class:`TelemetrySample` is a point-in-time view of the signals the
memory system exposes upward, aggregated across channels under the
standing contract (counters sum, RHLI maxes — the same rule the
harness's ``channel_attribution`` extractor asserts):

* per-thread rows (:class:`ThreadTelemetry`): maximum RHLI across
  channels plus the per-channel split, controller-side blocked
  injections (throttle events), and accepted request counts;
* sample-wide mechanism counters: blacklisted ACTs and RowBlocker
  delay events, summed over the per-channel mechanism instances.

Mechanisms without RHLI tracking report ``None``
(:meth:`~repro.mitigations.base.MitigationMechanism.os_telemetry`
duck-types), and :attr:`ThreadTelemetry.suspect_score` then falls back
to the thread's *quota-rejection* fraction — injections the mitigation
itself refused.  Plain queue-full backpressure is deliberately
excluded: it hits benign threads on any busy system and must never
read as attack suspicion, so mechanisms that neither track RHLI nor
enforce quotas (the reactive baselines) score every thread 0 and the
governor never fires above them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mitigations.base import MechanismTelemetry


@dataclass
class ThreadTelemetry:
    """One thread's OS-facing signals, aggregated across channels."""

    thread: int
    #: Maximum RHLI over channels (None = no channel tracks RHLI).
    rhli: float | None
    #: Per-channel RHLI split (None entries for untracked channels).
    rhli_per_channel: list[float | None] = field(default_factory=list)
    #: Requests the controllers refused at injection time (queue-full
    #: plus mitigation quotas), summed over channels.
    blocked_injections: int = 0
    #: The quota-rejected subset of ``blocked_injections`` (mitigation
    #: throttling only, never queue capacity), summed over channels.
    quota_blocked: int = 0
    #: Requests the controllers accepted (reads + writes), summed.
    requests: int = 0

    @property
    def suspect_score(self) -> float:
        """The policy-facing "how suspicious is this thread" scalar.

        RHLI where tracked (benign threads sit at 0, attackers race
        toward 1 — Section 3.2.1); otherwise the thread's *quota*-
        rejection fraction, the throttle-pressure signal a quota-
        enforcing mechanism produces.  Queue-full backpressure is
        excluded — it is load, not suspicion — so mechanisms with
        neither RHLI nor quotas score every thread 0 and the governor
        never acts above them.
        """
        if self.rhli is not None:
            return self.rhli
        denominator = self.requests + self.quota_blocked
        if denominator == 0:
            return 0.0
        return self.quota_blocked / denominator


@dataclass
class TelemetrySample:
    """Everything the governor's policies see at one review epoch."""

    now: float
    epoch: int
    num_channels: int
    threads: list[ThreadTelemetry]
    #: Mechanism-side event counters, summed over channels (cumulative
    #: over the run, like the hardware counters they model).
    blacklisted_acts: int = 0
    total_acts: int = 0
    delayed_acts: int = 0


def sample_telemetry(
    mechanisms,
    num_threads: int,
    now: float,
    epoch: int = 0,
    thread_stats=None,
) -> TelemetrySample:
    """Build a :class:`TelemetrySample` from per-channel mechanism
    instances plus (optionally) per-thread controller statistics.

    ``mechanisms`` is one instance per channel; ``thread_stats`` is the
    cross-channel :class:`~repro.mem.controller.ThreadMemStats` list
    (``MemorySystem.merged_thread_stats``) or ``None`` in mechanism-
    coupled deployments, where the governor lives inside one mechanism
    and controller counters are out of scope.
    """
    snapshots: list[MechanismTelemetry] = [
        mechanism.os_telemetry() for mechanism in mechanisms
    ]
    threads: list[ThreadTelemetry] = []
    for thread in range(num_threads):
        per_channel = [
            snap.thread_rhli[thread] if snap.thread_rhli is not None else None
            for snap in snapshots
        ]
        tracked = [value for value in per_channel if value is not None]
        stats = thread_stats[thread] if thread_stats is not None else None
        threads.append(
            ThreadTelemetry(
                thread=thread,
                rhli=max(tracked) if tracked else None,
                rhli_per_channel=per_channel,
                blocked_injections=(
                    stats.blocked_injections if stats is not None else 0
                ),
                quota_blocked=(
                    stats.quota_blocked_injections if stats is not None else 0
                ),
                requests=(stats.reads + stats.writes) if stats is not None else 0,
            )
        )
    return TelemetrySample(
        now=now,
        epoch=epoch,
        num_channels=len(snapshots),
        threads=threads,
        blacklisted_acts=sum(snap.blacklisted_acts for snap in snapshots),
        total_acts=sum(snap.total_acts for snap in snapshots),
        delayed_acts=sum(snap.delayed_acts for snap in snapshots),
    )
