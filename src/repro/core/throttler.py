"""AttackThrottler: RHLI tracking and source throttling (Section 3.2).

AttackThrottler maintains, per <thread, bank>, two saturating counters
of activations to *blacklisted* rows, time-interleaved exactly like the
D-CBF (one active, one passive; both increment; the active one is
cleared and roles swap at every epoch boundary).  The RowHammer
Likelihood Index (Eq. 2) normalizes the active count by the maximum
number of blacklisted-row activations a BlockHammer-protected system
permits per CBF lifetime; benign threads sit at exactly 0, attack
threads race toward (and past, in observe-only mode) 1.

Any thread with nonzero RHLI gets an in-flight request quota that
shrinks as RHLI grows and reaches zero at RHLI ≥ 1 (a complete block).
"""

from __future__ import annotations

import math

from repro.core.config import BlockHammerConfig
from repro.utils.validation import require


class AttackThrottler:
    """Per-<thread, bank> RHLI counters and in-flight quotas."""

    def __init__(
        self,
        config: BlockHammerConfig,
        num_threads: int,
        num_banks: int,
        counter_cap: int | None = None,
    ) -> None:
        require(num_threads >= 1, "need at least one thread")
        require(num_banks >= 1, "need at least one bank")
        self.config = config
        self.num_threads = num_threads
        self.num_banks = num_banks
        # Full-functional mode saturates at NRH*·(tCBF/tREFW) — RHLI
        # cannot exceed 1 in a protected system.  Observe-only mode uses
        # unsaturated counters so the un-throttled attack RHLI (>> 1,
        # Section 3.2.1) is measurable.
        self.counter_cap = (
            counter_cap if counter_cap is not None else config.throttler_counter_max
        )
        # counters[which][thread][bank]
        self._counters = [
            [[0] * num_banks for _ in range(num_threads)] for _ in range(2)
        ]
        # Running per-thread max counter per filter: counters only grow
        # between rotations, so the max never needs a rescan.  Queried
        # on every injection (max_inflight_total), so this is hot.
        self._thread_max = [[0] * num_threads for _ in range(2)]
        self._active = 0
        self._next_clear = config.epoch_ns
        self._rhli_denominator = config.rhli_denominator
        self.blacklisted_acts_total = 0

    # ------------------------------------------------------------------
    @property
    def next_clear(self) -> float:
        """Next epoch boundary (counter clear-and-swap instant): until
        then RHLI counters only change through blacklisted ACTs the
        controller itself issues, so quotas are stable in between."""
        return self._next_clear

    def maybe_rotate(self, now: float) -> None:
        """Clear-and-swap in lockstep with the D-CBF epochs."""
        while now >= self._next_clear:
            active = self._counters[self._active]
            for thread_row in active:
                for bank in range(self.num_banks):
                    thread_row[bank] = 0
            self._thread_max[self._active] = [0] * self.num_threads
            self._active = 1 - self._active
            self._next_clear += self.config.epoch_ns

    def record_blacklisted_act(self, thread: int, bank: int) -> None:
        """A thread activated a blacklisted row in ``bank``."""
        cap = self.counter_cap
        for which in range(2):
            value = self._counters[which][thread][bank]
            if value < cap:
                value += 1
                self._counters[which][thread][bank] = value
            maxes = self._thread_max[which]
            if value > maxes[thread]:
                maxes[thread] = value
        self.blacklisted_acts_total += 1

    # ------------------------------------------------------------------
    def rhli(self, thread: int, bank: int) -> float:
        """RowHammer likelihood index of the <thread, bank> pair (Eq. 2)."""
        count = self._counters[self._active][thread][bank]
        return count / self._rhli_denominator

    def thread_max_rhli(self, thread: int) -> float:
        """The thread's largest RHLI across banks (OS-facing summary)."""
        return self._thread_max[self._active][thread] / self._rhli_denominator

    def rhli_snapshot(self) -> dict[tuple[int, int], float]:
        """All nonzero <thread, bank> RHLI values (Section 3.2.3: the
        interface BlockHammer can expose to the operating system)."""
        out = {}
        for thread in range(self.num_threads):
            for bank in range(self.num_banks):
                value = self.rhli(thread, bank)
                if value > 0.0:
                    out[(thread, bank)] = value
        return out

    # ------------------------------------------------------------------
    def max_inflight(self, thread: int, bank: int) -> int | None:
        """In-flight request quota (None = unlimited, 0 = fully blocked).

        The quota shrinks with RHLI — the paper describes it as
        inversely proportional — and hits a hard zero at RHLI ≥ 1,
        where continued access could approach the RowHammer threshold.
        """
        value = self.rhli(thread, bank)
        if value <= 0.0:
            return None
        if value >= 1.0:
            return 0
        return max(1, math.floor(self.config.base_quota * (1.0 - value)))

    def max_inflight_total(self, thread: int) -> int | None:
        """Quota on the thread's total in-flight requests (Section 3.2:
        "applying a quota to the thread's total number of in-flight
        memory requests").  Keyed to the thread's worst per-bank RHLI so
        a thread hammering many banks cannot monopolize the shared
        request queues with delayed (RowHammer-unsafe) requests."""
        value = self.thread_max_rhli(thread)
        if value <= 0.0:
            return None
        if value >= 1.0:
            return 0
        return max(1, math.floor(2 * self.config.base_quota * (1.0 - value)))
