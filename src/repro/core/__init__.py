"""BlockHammer: the paper's primary contribution.

RowBlocker (Section 3.1) tracks per-row activation rates with dual
counting Bloom filters and delays activations to blacklisted,
recently-activated rows; AttackThrottler (Section 3.2) identifies attack
threads via the RowHammer Likelihood Index and throttles their in-flight
requests.  :class:`BlockHammer` packages both behind the standard
mitigation interface.
"""

from repro.core.hashing import H3HashFamily, MixHashFamily, HashFamily
from repro.core.bloom import BloomFilter, CountingBloomFilter
from repro.core.dcbf import DualCountingBloomFilter
from repro.core.history import ActivationHistoryBuffer
from repro.core.config import BlockHammerConfig
from repro.core.rowblocker import RowBlocker, RowBlockerBL, DelayStats
from repro.core.throttler import AttackThrottler
from repro.core.blockhammer import BlockHammer
from repro.core.os_policy import BlockHammerWithOsPolicy

__all__ = [
    "HashFamily",
    "H3HashFamily",
    "MixHashFamily",
    "BloomFilter",
    "CountingBloomFilter",
    "DualCountingBloomFilter",
    "ActivationHistoryBuffer",
    "BlockHammerConfig",
    "RowBlocker",
    "RowBlockerBL",
    "DelayStats",
    "AttackThrottler",
    "BlockHammer",
    "BlockHammerWithOsPolicy",
]
