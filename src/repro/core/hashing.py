"""Hash families for the Bloom filters.

The paper uses four H3-class hash functions [17] built from hardwired
shifts and a seed XOR-mask; the seed is re-randomized whenever a filter
is cleared so an aggressor row aliases with a different set of rows each
epoch (Section 3.1.1).

Two implementations are provided:

* :class:`H3HashFamily` — the textbook Carter–Wegman H3: each function
  XORs together random rows of a binary matrix selected by the set bits
  of the key.  Exact, pairwise independent, and the hardware-faithful
  reference.
* :class:`MixHashFamily` — a SplitMix64 finalizer over ``key ^ seed_i``.
  Statistically comparable for our purposes and several times faster in
  Python; the simulator uses it by default.

Both families honor ``reseed()`` to model the epoch-boundary seed swap.
"""

from __future__ import annotations

from repro.utils.rng import DeterministicRng, splitmix64
from repro.utils.validation import require

_MASK64 = (1 << 64) - 1


class HashFamily:
    """k hash functions mapping integer keys into [0, size)."""

    def __init__(self, k: int, size: int, rng: DeterministicRng) -> None:
        require(k >= 1, "need at least one hash function")
        require(size >= 2, "hash range must be >= 2")
        self.k = k
        self.size = size
        self._rng = rng
        self.reseed()

    def reseed(self) -> None:
        """Draw fresh per-function seeds (called on every filter clear)."""
        raise NotImplementedError

    def indices(self, key: int) -> list[int]:
        """The k array indices for ``key``."""
        raise NotImplementedError


class MixHashFamily(HashFamily):
    """Fast 64-bit-mixer hash family (default).

    ``indices`` results are memoized per seed epoch: row keys repeat
    heavily between reseeds (a hammered row is hashed on every ACT and
    on every blacklist re-query), and the memo is invalidated wholesale
    when :meth:`reseed` swaps the seeds at an epoch boundary.  The memo
    is bounded by the number of distinct keys seen per epoch (at most
    the rows touched per bank per epoch).  Callers must not mutate the
    returned list.
    """

    def reseed(self) -> None:
        self._seeds = [self._rng.next_seed() for _ in range(self.k)]
        self._memo: dict[int, list[int]] = {}

    def indices(self, key: int) -> list[int]:
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        out = []
        size = self.size
        for seed in self._seeds:
            z = (key ^ seed) & _MASK64
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
            z ^= z >> 31
            out.append(z % size)
        self._memo[key] = out
        return out


class H3HashFamily(HashFamily):
    """Carter–Wegman H3: XOR of seed-matrix rows selected by key bits.

    ``key_bits`` bounds the supported key width (row addresses fit in 17
    bits for 64K-row banks; we default to 32 for generality).
    """

    def __init__(
        self, k: int, size: int, rng: DeterministicRng, key_bits: int = 32
    ) -> None:
        require(key_bits >= 1, "key_bits must be >= 1")
        self.key_bits = key_bits
        super().__init__(k, size, rng)

    def reseed(self) -> None:
        self._matrices = []
        for _ in range(self.k):
            matrix = [self._rng.next_seed() % self.size for _ in range(self.key_bits)]
            self._matrices.append(matrix)

    def indices(self, key: int) -> list[int]:
        require(0 <= key < (1 << self.key_bits), "key exceeds configured width")
        out = []
        for matrix in self._matrices:
            h = 0
            remaining = key
            bit = 0
            while remaining:
                if remaining & 1:
                    h ^= matrix[bit]
                remaining >>= 1
                bit += 1
            out.append(h % self.size)
        return out
