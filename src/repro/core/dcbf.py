"""The dual counting Bloom filter (D-CBF, Section 3.1.1, Figure 3).

Combines the Unified Bloom Filter's time-interleaving [86] with counting
Bloom filters [33]: two CBFs both receive every insertion, only the
*active* one answers queries, and at every epoch boundary (half a CBF
lifetime, tCBF/2) the active filter is cleared — with fresh hash seeds —
and the roles swap.  Each filter therefore accumulates exactly two
epochs of insertions before it is cleared, so the active filter's
estimate always covers a rolling window of at least one and at most two
epochs, and a row whose activation count exceeds NBL within an epoch can
never escape blacklisting (no false negatives).
"""

from __future__ import annotations

from repro.core.bloom import CountingBloomFilter
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


class DualCountingBloomFilter:
    """Two time-interleaved CBFs with epoch-based clear-and-swap."""

    def __init__(
        self,
        size: int,
        epoch_ns: float,
        hash_count: int = 4,
        counter_max: int = (1 << 12) - 1,
        rng: DeterministicRng | None = None,
        track_exact: bool = False,
    ) -> None:
        require(epoch_ns > 0.0, "epoch length must be positive")
        rng = rng or DeterministicRng(0)
        self.epoch_ns = epoch_ns
        self.filters = [
            CountingBloomFilter(size, hash_count, counter_max, rng.fork("cbf-a")),
            CountingBloomFilter(size, hash_count, counter_max, rng.fork("cbf-b")),
        ]
        self._active = 0
        self._next_clear = epoch_ns
        self.epoch_index = 0
        self.track_exact = track_exact
        # Optional shadow of exact per-key insertion counts per filter,
        # used to measure Bloom-aliasing false positives (Section 8.4).
        self._exact: list[dict[int, int]] = [{}, {}]

    # ------------------------------------------------------------------
    @property
    def active(self) -> CountingBloomFilter:
        """The filter currently answering queries."""
        return self.filters[self._active]

    @property
    def passive(self) -> CountingBloomFilter:
        return self.filters[1 - self._active]

    def maybe_rotate(self, now: float) -> int:
        """Clear-and-swap for every epoch boundary passed by ``now``.

        Returns the number of rotations performed (usually 0 or 1).
        """
        rotations = 0
        while now >= self._next_clear:
            self.active.clear(reseed=True)
            if self.track_exact:
                self._exact[self._active] = {}
            self._active = 1 - self._active
            self._next_clear += self.epoch_ns
            self.epoch_index += 1
            rotations += 1
        return rotations

    def insert(self, key: int) -> int:
        """Insert into both filters; returns the active estimate."""
        self.passive.insert(key)
        estimate = self.active.insert(key)
        if self.track_exact:
            for shadow in self._exact:
                shadow[key] = shadow.get(key, 0) + 1
        return estimate

    def count(self, key: int) -> int:
        """Active filter's (upper-bound) count for ``key``."""
        return self.active.test(key)

    def exact_count(self, key: int) -> int:
        """True insertion count of ``key`` in the active filter's window
        (requires ``track_exact``)."""
        return self._exact[self._active].get(key, 0)

    def exact_over(self, threshold: int) -> int:
        """Keys whose true count in the active window has reached
        ``threshold`` (requires ``track_exact``) — the exact blacklist
        occupancy when ``threshold`` is NBL."""
        return sum(
            1 for count in self._exact[self._active].values() if count >= threshold
        )

    def next_clear_at(self) -> float:
        """Time of the next epoch boundary."""
        return self._next_clear
