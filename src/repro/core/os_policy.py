"""OS-level RHLI policies (Section 3.2.3).

The paper proposes exposing per-<thread, bank> RHLI to the operating
system, which "might kill or deschedule an attacking thread", and leaves
the study of such policies to future work.  This module implements the
simplest such policy as an extension: :class:`BlockHammerWithOsPolicy`
watches each thread's maximum RHLI and, once it stays above a kill
threshold for a configurable number of consecutive epochs, deschedules
the thread permanently (modeled as a zero in-flight quota, which stops
all further memory requests at the source).

Compared to plain AttackThrottler quotas, descheduling removes even the
attacker's tDelay-paced trickle of blacklisted activations.
"""

from __future__ import annotations

from repro.core.blockhammer import BlockHammer
from repro.core.config import BlockHammerConfig
from repro.mitigations.base import MitigationContext
from repro.utils.validation import require


class BlockHammerWithOsPolicy(BlockHammer):
    """BlockHammer plus an OS governor that kills persistent attackers."""

    name = "blockhammer-os"

    def __init__(
        self,
        config: BlockHammerConfig | None = None,
        kill_rhli: float = 0.8,
        patience_epochs: int = 1,
        review_interval_ns: float | None = None,
    ) -> None:
        require(kill_rhli > 0.0, "kill threshold must be positive")
        require(patience_epochs >= 1, "patience must be >= 1 epoch")
        super().__init__(config=config, observe_only=False)
        self.kill_rhli = kill_rhli
        self.patience_epochs = patience_epochs
        # Default: review once per epoch (the RHLI counter cadence); an
        # OS could poll faster at the cost of more scheduler work.
        self.review_interval_ns = review_interval_ns
        self._strikes: dict[int, int] = {}
        self.killed_threads: set[int] = set()
        self._next_review = 0.0

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        if self.review_interval_ns is None:
            self.review_interval_ns = self.config.epoch_ns
        self._next_review = self.review_interval_ns

    def on_time_advance(self, now: float) -> None:
        super().on_time_advance(now)
        while now >= self._next_review:
            for thread in range(self.context.num_threads):
                if thread in self.killed_threads:
                    continue
                if self.thread_max_rhli(thread) >= self.kill_rhli:
                    strikes = self._strikes.get(thread, 0) + 1
                    self._strikes[thread] = strikes
                    if strikes >= self.patience_epochs:
                        self.killed_threads.add(thread)
                else:
                    self._strikes[thread] = 0
            self._next_review += self.review_interval_ns

    def max_inflight_total(self, thread: int) -> int | None:
        if thread in self.killed_threads:
            return 0  # descheduled: no further memory requests
        return super().max_inflight_total(thread)
