"""OS-level RHLI policies (Section 3.2.3).

The paper proposes exposing per-<thread, bank> RHLI to the operating
system, which "might kill or deschedule an attacking thread", and leaves
the study of such policies to future work.  This module keeps the
original ``blockhammer-os`` mechanism name but is now a thin adapter
over the first-class governor subsystem (:mod:`repro.os`):
:class:`BlockHammerWithOsPolicy` embeds one mechanism-coupled
:class:`~repro.os.governor.Governor` running a
:class:`~repro.os.policies.KillPolicy`, reviewed from
``on_time_advance`` so kill timing is bit-identical to the original
hardwired implementation (one instance per channel, each watching its
own channel's RHLI).

The governor port also normalizes two review-cadence edges of the old
code: the review clock anchors to the first observed time instead of
assuming attach happens at t=0, and strike state is dropped for killed
threads instead of retained forever.

Compared to plain AttackThrottler quotas, descheduling removes even the
attacker's tDelay-paced trickle of blacklisted activations.  For
system-level deployments — telemetry aggregated across channels,
actions on cores (kill / quota / migrate) — attach a governor to the
:class:`~repro.sim.system.System` instead (the harness's
``GovernorSpec`` plumbing; see the ``ossweep`` experiment).
"""

from __future__ import annotations

from repro.core.blockhammer import BlockHammer
from repro.core.config import BlockHammerConfig
from repro.mitigations.base import MitigationContext
from repro.os.governor import Governor
from repro.os.policies import KillPolicy


class BlockHammerWithOsPolicy(BlockHammer):
    """BlockHammer plus an OS governor that kills persistent attackers."""

    name = "blockhammer-os"

    def __init__(
        self,
        config: BlockHammerConfig | None = None,
        kill_rhli: float = 0.8,
        patience_epochs: int = 1,
        review_interval_ns: float | None = None,
    ) -> None:
        super().__init__(config=config, observe_only=False)
        self.kill_rhli = kill_rhli
        self.patience_epochs = patience_epochs
        # Default: review once per epoch (the RHLI counter cadence); an
        # OS could poll faster at the cost of more scheduler work.
        self.review_interval_ns = review_interval_ns
        # Parameter validation lives in the policy (ConfigError on bad
        # thresholds/patience, same contract as the original).
        self.governor = Governor(
            [KillPolicy(kill_rhli=kill_rhli, patience_epochs=patience_epochs)],
            epoch_ns=review_interval_ns,
        )

    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        if self.review_interval_ns is None:
            self.review_interval_ns = self.config.epoch_ns
        self.governor.bind_mechanism(self, epoch_ns=self.review_interval_ns)

    def on_time_advance(self, now: float) -> None:
        super().on_time_advance(now)
        self.governor.advance(now)

    def advance_to(self, now: float) -> float:
        # Fold the governor's next review deadline into the quiescence
        # horizon so mechanism-coupled reviews keep their exact timing
        # (the first controller step at or past the deadline) even when
        # the controller leaps across review boundaries.
        horizon = super().advance_to(now)
        next_review = self.governor.advance(now)
        return horizon if horizon < next_review else next_review

    @property
    def killed_threads(self) -> set[int]:
        """Threads the governor has descheduled (read-only view)."""
        return self.governor.killed

    def max_inflight_total(self, thread: int) -> int | None:
        if thread in self.governor.killed:
            return 0  # descheduled: no further memory requests
        return super().max_inflight_total(thread)
