"""The BlockHammer mitigation mechanism (RowBlocker + AttackThrottler).

Implements the standard :class:`MitigationMechanism` interface so it
plugs into the memory controller exactly like every baseline.  Two modes
(Section 3.2.1):

* **full-functional** (default) — delays RowHammer-unsafe activations
  and applies AttackThrottler quotas.
* **observe-only** — computes blacklists and RHLI but never interferes,
  which is how the paper measures un-throttled attack RHLI (≈10.9).

BlockHammer needs no adjacency oracle and issues no victim refreshes: it
is implemented entirely controller-side from publicly-available chip
parameters, which is what makes it commodity-DRAM compatible (Table 6).
"""

from __future__ import annotations

from repro.core.config import BlockHammerConfig
from repro.core.rowblocker import RowBlocker
from repro.core.throttler import AttackThrottler
from repro.mitigations.base import MitigationContext, MitigationMechanism


class BlockHammer(MitigationMechanism):
    """BlockHammer, configured per Table 1/Table 7."""

    name = "blockhammer"
    comprehensive_protection = True
    commodity_compatible = True
    scales_with_vulnerability = True
    deterministic_protection = True

    def __init__(
        self,
        config: BlockHammerConfig | None = None,
        observe_only: bool = False,
    ) -> None:
        super().__init__()
        self._explicit_config = config
        self.observe_only = observe_only
        if observe_only:
            self.name = "blockhammer-observe"
        self.config: BlockHammerConfig | None = config
        self.rowblocker: RowBlocker | None = None
        self.throttler: AttackThrottler | None = None

    # ------------------------------------------------------------------
    def attach(self, context: MitigationContext) -> None:
        super().attach(context)
        if self._explicit_config is not None:
            self.config = self._explicit_config
        else:
            # Derive a Table 7-style configuration from the public chip
            # parameters carried by the context.
            self.config = BlockHammerConfig.for_nrh(
                context.nrh,
                context.spec,
                blast_radius=context.blast_radius,
                blast_decay=context.blast_decay,
            )
        spec = context.spec
        self.rowblocker = RowBlocker(
            self.config,
            num_ranks=spec.ranks,
            banks_per_rank=spec.banks_per_rank,
            rows_per_bank=spec.rows_per_bank,
            rng=context.rng.fork("rowblocker"),
        )
        self.throttler = AttackThrottler(
            self.config,
            num_threads=context.num_threads,
            num_banks=spec.ranks * spec.banks_per_rank,
            counter_cap=(1 << 30) if self.observe_only else None,
        )
        if not self.observe_only:
            # The ACT gate runs once per scheduler candidate per step —
            # bind it straight to the RowBlocker method so the hot path
            # skips this wrapper's dispatch (signatures are identical).
            self.act_allowed_at = self.rowblocker.allowed_at

    # ------------------------------------------------------------------
    def on_time_advance(self, now: float) -> None:
        self.rowblocker.maybe_rotate(now)
        self.throttler.maybe_rotate(now)

    def advance_to(self, now: float) -> float:
        # Between CBF rotations and throttler epoch clears, BlockHammer
        # state only changes through ACTs the controller itself issues.
        self.rowblocker.maybe_rotate(now)
        self.throttler.maybe_rotate(now)
        return min(self.rowblocker.next_rotate, self.throttler.next_clear)

    def act_allowed_at(self, rank: int, bank: int, row: int, thread: int, now: float) -> float:
        if self.observe_only:
            return now
        return self.rowblocker.allowed_at(rank, bank, row, thread, now)

    @property
    def act_block_stable(self) -> float:
        """Verdicts hold until the next CBF epoch rotation: the
        blacklist only loses entries at rotation, a blocked row's
        history entry cannot be re-stamped while its ACTs are delayed,
        and a safe row can only become unsafe through an ACT on its own
        bank (per-bank Bloom inserts), which dirties that bank anyway.
        Observe-only mode never blocks, so its verdicts are stable
        forever."""
        if self.observe_only:
            return float("inf")
        return self.rowblocker.next_rotate

    def bind_probe(self, probe) -> None:
        """Forward the probe into the RowBlocker (rotations can trigger
        from inside its own query paths, so it emits them itself) with
        this instance's channel as the Perfetto track."""
        super().bind_probe(probe)
        if self.rowblocker is not None:
            self.rowblocker.probe = probe
            self.rowblocker.obs_track = self.obs_track

    def blacklist_occupancy(self) -> int:
        """Exact rows currently at/above NBL across this channel's
        banks (epoch-metrics sampling hook)."""
        return self.rowblocker.blacklist_occupancy()

    def on_activate(self, rank: int, bank: int, row: int, thread: int, now: float) -> None:
        was_blacklisted = self.rowblocker.on_activate(rank, bank, row, now)
        if was_blacklisted:
            bank_index = rank * self.context.spec.banks_per_rank + bank
            self.throttler.record_blacklisted_act(thread, bank_index)
            if self.probe is not None:
                self.probe(
                    now,
                    "blacklist_act",
                    self.obs_track,
                    thread=thread,
                    rank=rank,
                    bank=bank,
                    row=row,
                )

    def max_inflight(self, thread: int, rank: int, bank: int) -> int | None:
        if self.observe_only:
            return None
        bank_index = rank * self.context.spec.banks_per_rank + bank
        return self.throttler.max_inflight(thread, bank_index)

    def max_inflight_total(self, thread: int) -> int | None:
        if self.observe_only:
            return None
        return self.throttler.max_inflight_total(thread)

    # ------------------------------------------------------------------
    # Introspection used by experiments and the OS-exposure example.
    # ------------------------------------------------------------------
    def rhli(self, thread: int, rank: int, bank: int) -> float:
        bank_index = rank * self.context.spec.banks_per_rank + bank
        return self.throttler.rhli(thread, bank_index)

    def thread_max_rhli(self, thread: int) -> float:
        return self.throttler.thread_max_rhli(thread)

    def delay_stats(self):
        """Section 8.4 statistics (false positives, delay percentiles)."""
        return self.rowblocker.stats
