"""BlockHammer configuration and the paper's parameter derivations.

Implements the three governing equations:

* **Eq. 3 (many-sided attacks, Section 4)** — the effective threshold
  ``NRH* = NRH / (2 · Σ_{k=1..r_blast} c_k)`` with ``c_k = decay^(k-1)``;
  double-sided evaluation uses r_blast = 1 so NRH* = NRH / 2, and the
  paper's worst case (r_blast = 6, decay = 0.5) gives NRH* ≈ 0.2539·NRH.
* **Eq. 1 (Section 3.1.2)** — the blacklisted-row delay
  ``tDelay = (tCBF − NBL·tRC) / ((tCBF/tREFW)·NRH* − NBL)``,
  which evenly spreads the activations remaining after an NBL burst over
  the rest of a CBF lifetime (7.7 µs for the Table 1 configuration).
* **Eq. 2 (Section 3.2.1)** — the RHLI denominator
  ``NRH*·(tCBF/tREFW) − NBL``: the most additional activations a
  blacklisted row could receive in a CBF lifetime.

:meth:`BlockHammerConfig.for_nrh` reproduces Table 7's CBF-size/NBL
scaling rule (NBL = NRH/4; CBF grows as NRH shrinks to keep the false
positive rate low at reduced blacklisting thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.dram.spec import DramSpec
from repro.utils.units import MS
from repro.utils.validation import require


@dataclass(frozen=True)
class BlockHammerConfig:
    """All BlockHammer tunables plus the chip parameters they derive from.

    The six chip parameters BlockHammer needs are all publicly available
    (Section 9 property 2): tREFW, tRC, tFAW from datasheets; NRH, blast
    radius, and blast impact factors from characterization studies.
    """

    nrh: int = 32768
    blast_radius: int = 1
    blast_decay: float = 0.5
    t_refw_ns: float = 64.0 * MS
    t_rc_ns: float = 46.25
    t_faw_ns: float = 35.0
    t_cbf_ns: float = 64.0 * MS
    cbf_size: int = 1024
    nbl: int = 8192
    hash_count: int = 4
    base_quota: int = 16

    def __post_init__(self) -> None:
        require(self.nrh >= 2, "NRH must be >= 2")
        require(self.nbl >= 1, "NBL must be >= 1")
        require(self.cbf_size >= 2, "CBF size must be >= 2")
        require(self.hash_count >= 1, "need at least one hash function")
        require(self.t_cbf_ns > 0 and self.t_refw_ns > 0, "windows must be positive")
        require(self.nbl < self.nrh_star, "NBL must be below NRH*")
        budget = (self.t_cbf_ns / self.t_refw_ns) * self.nrh_star
        require(budget > self.nbl, "CBF lifetime activation budget must exceed NBL")

    # ------------------------------------------------------------------
    # Eq. 3: many-sided effective threshold.
    # ------------------------------------------------------------------
    @cached_property
    def impact_sum(self) -> float:
        """Σ c_k over the blast radius (one side of the victim)."""
        return sum(self.blast_decay ** (k - 1) for k in range(1, self.blast_radius + 1))

    @cached_property
    def nrh_star(self) -> float:
        """Effective per-row threshold after the many-sided correction."""
        return self.nrh / (2.0 * self.impact_sum)

    # ------------------------------------------------------------------
    # Eq. 1: blacklisted-row delay.
    # ------------------------------------------------------------------
    @cached_property
    def t_delay_ns(self) -> float:
        """Minimum spacing enforced between ACTs to a blacklisted row."""
        budget = (self.t_cbf_ns / self.t_refw_ns) * self.nrh_star - self.nbl
        return (self.t_cbf_ns - self.nbl * self.t_rc_ns) / budget

    @cached_property
    def epoch_ns(self) -> float:
        """Epoch length: half a CBF lifetime (each filter lives 2 epochs)."""
        return self.t_cbf_ns / 2.0

    # ------------------------------------------------------------------
    # Derived sizing.
    # ------------------------------------------------------------------
    @cached_property
    def history_entries(self) -> int:
        """RowBlocker-HB size: worst-case ACTs within tDelay (via tFAW)."""
        return max(1, math.ceil(4.0 * self.t_delay_ns / self.t_faw_ns))

    @cached_property
    def counter_bits(self) -> int:
        """CBF counter width: enough to count to NBL plus one spare bit."""
        return max(1, math.ceil(math.log2(self.nbl + 1))) + 1

    @cached_property
    def counter_max(self) -> int:
        """Saturation value of a CBF counter."""
        return (1 << self.counter_bits) - 1

    # ------------------------------------------------------------------
    # Eq. 2: RHLI normalization.
    # ------------------------------------------------------------------
    @cached_property
    def rhli_denominator(self) -> float:
        """Max blacklisted-row ACTs per CBF lifetime (Eq. 2 denominator)."""
        return self.nrh_star * (self.t_cbf_ns / self.t_refw_ns) - self.nbl

    @cached_property
    def throttler_counter_max(self) -> int:
        """AttackThrottler counters saturate at NRH*·(tCBF/tREFW)."""
        return max(1, int(self.nrh_star * (self.t_cbf_ns / self.t_refw_ns)))

    # ------------------------------------------------------------------
    # Table 7 presets and scaling.
    # ------------------------------------------------------------------
    @classmethod
    def for_nrh(
        cls,
        nrh: int,
        spec: DramSpec | None = None,
        blast_radius: int = 1,
        blast_decay: float = 0.5,
        base_quota: int = 16,
        max_cbf_size: int = 8192,
    ) -> "BlockHammerConfig":
        """Configuration for a given RowHammer threshold (Table 7 rule).

        ``NBL = NRH / 4`` and ``CBF size = max(1K, 8M / NRH)`` reproduce
        every row of Table 7: (32K → 1K/8K), (16K → 1K/4K), (8K → 1K/2K),
        (4K → 2K/1K), (2K → 4K/512), (1K → 8K/256).  ``max_cbf_size``
        caps the growth at the paper's largest configuration (relevant
        only to scaled-window simulations, whose per-epoch insert counts
        shrink with the window).
        """
        require(nrh >= 8, "NRH too small to configure BlockHammer")
        spec = spec or DramSpec()
        nbl = max(2, nrh // 4)
        cbf_size = min(max_cbf_size, max(1024, (8 * 1024 * 1024) // nrh))
        return cls(
            nrh=nrh,
            blast_radius=blast_radius,
            blast_decay=blast_decay,
            t_refw_ns=spec.tREFW,
            t_rc_ns=spec.tRC,
            t_faw_ns=spec.tFAW,
            t_cbf_ns=spec.tREFW,
            cbf_size=cbf_size,
            nbl=nbl,
            base_quota=base_quota,
        )

    def summary(self) -> dict[str, float]:
        """Table 1-style summary of configured and derived parameters."""
        return {
            "NRH": self.nrh,
            "NRH*": self.nrh_star,
            "NBL": self.nbl,
            "tCBF_ms": self.t_cbf_ns / MS,
            "tDelay_us": self.t_delay_ns / 1000.0,
            "CBF_size": self.cbf_size,
            "hash_count": self.hash_count,
            "history_entries": self.history_entries,
            "counter_bits": self.counter_bits,
        }
