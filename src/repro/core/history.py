"""RowBlocker-HB: the per-rank row activation history buffer
(Section 3.1.2).

A FIFO of the last tDelay-worth of row activations, implemented in
hardware as a circular CAM.  RowBlocker uses it to answer "was this row
activated within the last tDelay?"; if yes *and* the row is blacklisted,
the activation is delayed until the last activation ages past tDelay.

The buffer is sized ``ceil(4 * tDelay / tFAW)`` entries: tFAW bounds the
rank to four activations per tFAW window, so that is the worst-case
number of records a tDelay window can hold (887 entries for the Table 1
configuration).
"""

from __future__ import annotations

import math
from collections import deque

from repro.utils.validation import require


class ActivationHistoryBuffer:
    """Sliding-window record of (row, timestamp) activations for a rank."""

    def __init__(self, t_delay_ns: float, t_faw_ns: float) -> None:
        require(t_delay_ns > 0.0, "tDelay must be positive")
        require(t_faw_ns > 0.0, "tFAW must be positive")
        self.t_delay_ns = t_delay_ns
        self.capacity = max(1, math.ceil(4.0 * t_delay_ns / t_faw_ns))
        self._fifo: deque[tuple[int, float]] = deque()
        self._last_seen: dict[int, float] = {}
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def _evict_expired(self, now: float) -> None:
        horizon = now - self.t_delay_ns
        fifo = self._fifo
        last = self._last_seen
        while fifo and fifo[0][1] <= horizon:
            row, ts = fifo.popleft()
            if last.get(row) == ts:
                del last[row]

    def record(self, row: int, now: float) -> None:
        """Insert an activation record (called when an ACT issues)."""
        self._evict_expired(now)
        if len(self._fifo) >= self.capacity:
            # The tFAW sizing argument makes this unreachable in a
            # correctly-configured system; count it defensively.
            self.overflows += 1
            row_old, ts_old = self._fifo.popleft()
            if self._last_seen.get(row_old) == ts_old:
                del self._last_seen[row_old]
        self._fifo.append((row, now))
        self._last_seen[row] = now

    def last_activation(self, row: int, now: float) -> float | None:
        """Timestamp of ``row``'s most recent in-window activation."""
        self._evict_expired(now)
        return self._last_seen.get(row)

    def recently_activated(self, row: int, now: float) -> bool:
        """CAM lookup: was ``row`` activated within the last tDelay?"""
        return self.last_activation(row, now) is not None

    def allowed_at(self, row: int, now: float) -> float:
        """Earliest time an ACT to a *blacklisted* ``row`` may issue."""
        last = self.last_activation(row, now)
        if last is None:
            return now
        return last + self.t_delay_ns
