"""RowBlocker: blacklisting (RowBlocker-BL) plus recent-activation
gating (RowBlocker-HB), Section 3.1 and Figure 2.

An ACT is RowHammer-unsafe iff its row is *both* blacklisted (active CBF
estimate ≥ NBL) *and* recently activated (within tDelay, per the history
buffer).  Unsafe ACTs are delayed until the row's last activation ages
past tDelay, bounding every row's long-run activation rate below
NRH*/tREFW.

The class also measures what Section 8.4 reports: the false-positive
rate (activations delayed only because of Bloom aliasing) and the delay
distribution experienced by delayed activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BlockHammerConfig
from repro.core.dcbf import DualCountingBloomFilter
from repro.core.history import ActivationHistoryBuffer
from repro.utils.rng import DeterministicRng


@dataclass
class DelayStats:
    """Delay accounting for Section 8.4."""

    total_acts: int = 0
    delayed_acts: int = 0
    false_positive_acts: int = 0
    delays_ns: list[float] = field(default_factory=list)
    false_positive_delays_ns: list[float] = field(default_factory=list)

    @property
    def delayed_fraction(self) -> float:
        return self.delayed_acts / self.total_acts if self.total_acts else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Mistakenly-delayed activations as a fraction of all ACTs."""
        return self.false_positive_acts / self.total_acts if self.total_acts else 0.0

    @staticmethod
    def _percentile(values: list[float], p: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]

    def delay_percentile(self, p: float, false_positives_only: bool = False) -> float:
        """P-th percentile of imposed delays, in nanoseconds."""
        values = self.false_positive_delays_ns if false_positives_only else self.delays_ns
        return self._percentile(values, p)


class RowBlockerBL:
    """Per-bank blacklisting via a dual counting Bloom filter.

    Blacklist queries are memoized against a version counter that
    advances on every insertion and rotation: the scheduler re-queries
    the same head-of-queue row many times between activations of a bank,
    and the answer cannot change while the bank's filter is untouched.
    """

    def __init__(self, config: BlockHammerConfig, rng: DeterministicRng) -> None:
        self.config = config
        self.dcbf = DualCountingBloomFilter(
            size=config.cbf_size,
            epoch_ns=config.epoch_ns,
            hash_count=config.hash_count,
            counter_max=config.counter_max,
            rng=rng,
            track_exact=True,
        )
        self._version = 0
        self._memo: dict[int, tuple[int, bool]] = {}

    def maybe_rotate(self, now: float) -> None:
        if self.dcbf.maybe_rotate(now):
            self._version += 1
            self._memo.clear()

    def insert(self, row: int) -> None:
        self.dcbf.insert(row)
        self._version += 1

    def blacklisted(self, row: int) -> bool:
        """Active-filter estimate reached the blacklisting threshold."""
        cached = self._memo.get(row)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        result = self.dcbf.count(row) >= self.config.nbl
        self._memo[row] = (self._version, result)
        return result

    def truly_over_threshold(self, row: int) -> bool:
        """Exact (aliasing-free) count reached NBL — used to classify
        false positives for the Section 8.4 statistics."""
        return self.dcbf.exact_count(row) >= self.config.nbl


class RowBlocker:
    """The full RowBlocker: per-bank BLs plus per-rank history buffers."""

    #: Trace probe + Perfetto track (the channel), forwarded by
    #: BlockHammer.bind_probe when a telemetry bus is attached.  The
    #: rotation event is emitted here, not in the mechanism wrapper,
    #: because rotations also trigger inside ``allowed_at`` and
    #: ``on_activate`` — not only from the controller's time advance.
    probe = None
    obs_track = 0

    def __init__(
        self,
        config: BlockHammerConfig,
        num_ranks: int,
        banks_per_rank: int,
        rows_per_bank: int,
        rng: DeterministicRng | None = None,
    ) -> None:
        rng = rng or DeterministicRng(0)
        self.config = config
        self.rows_per_bank = rows_per_bank
        self.bls = [
            [
                RowBlockerBL(config, rng.fork(f"bl-{r}-{b}"))
                for b in range(banks_per_rank)
            ]
            for r in range(num_ranks)
        ]
        # Flat view indexed by rank * banks_per_rank + bank: allowed_at
        # runs once per scheduler candidate, where the double list hop
        # is measurable.
        self._banks_per_rank = banks_per_rank
        self._flat_bls = [bl for rank_bls in self.bls for bl in rank_bls]
        self.hbs = [
            ActivationHistoryBuffer(config.t_delay_ns, config.t_faw_ns)
            for _ in range(num_ranks)
        ]
        self.stats = DelayStats()
        # (rank, bank, row) -> (first-unsafe-query time, was-false-positive)
        self._blocked_since: dict[tuple[int, int, int], tuple[float, bool]] = {}
        self._next_rotate = config.epoch_ns
        #: Blocked-verdict epoch: advances on every D-CBF rotation, the
        #: only event that can invalidate verdicts en masse (blacklist
        #: entries expire; everything else is per-bank and reported
        #: through the controller's dirty-bank tracking).  The
        #: incremental scheduler's bank caches expire at the rotation
        #: *time* (``next_rotate`` via ``act_block_stable``); this
        #: counter exists so tests can observe rotations directly.
        self.verdict_epoch = 0

    # ------------------------------------------------------------------
    @property
    def next_rotate(self) -> float:
        """Next epoch-rotation deadline: until then, a blacklisted row
        stays blacklisted and its history entry cannot age out early, so
        blocked verdicts from :meth:`allowed_at` are stable — and a safe
        row can only turn unsafe through an ACT on its own bank (the
        per-bank Bloom filter is the only path to blacklisting)."""
        return self._next_rotate

    def _rank_row_id(self, bank: int, row: int) -> int:
        """Rank-unique row ID stored in the history buffer."""
        return bank * self.rows_per_bank + row

    def maybe_rotate(self, now: float) -> None:
        """Advance every bank's D-CBF epoch clock to ``now``.

        A single shared deadline gates the per-bank loop: all D-CBFs
        follow the same epoch schedule, so this is O(1) off-boundary.
        """
        if now < self._next_rotate:
            return
        for rank_bls in self.bls:
            for bl in rank_bls:
                bl.maybe_rotate(now)
        self._next_rotate = self.bls[0][0].dcbf.next_clear_at()
        self.verdict_epoch += 1
        if self.probe is not None:
            self.probe(
                now,
                "dcbf_rotate",
                self.obs_track,
                epoch=self.verdict_epoch,
                next_rotate=self._next_rotate,
            )

    # ------------------------------------------------------------------
    def allowed_at(self, rank: int, bank: int, row: int, thread: int, now: float) -> float:
        """Earliest RowHammer-safe issue time for this ACT (Figure 2).

        Safe immediately unless the row is blacklisted *and* recently
        activated; then safe once the last activation ages past tDelay.
        """
        if now >= self._next_rotate:
            self.maybe_rotate(now)
        bl = self._flat_bls[rank * self._banks_per_rank + bank]
        if not bl.blacklisted(row):
            return now
        allowed = self.hbs[rank].allowed_at(self._rank_row_id(bank, row), now)
        if allowed > now:
            key = (rank, bank, row)
            if key not in self._blocked_since:
                # Classify the block as a Bloom-aliasing false positive
                # at first-block time (Section 8.4 methodology).
                false_positive = not bl.truly_over_threshold(row)
                self._blocked_since[key] = (now, false_positive)
        return allowed

    def is_safe(self, rank: int, bank: int, row: int, thread: int, now: float) -> bool:
        """Convenience wrapper over :meth:`allowed_at`."""
        return self.allowed_at(rank, bank, row, thread, now) <= now

    def blacklist_occupancy(self) -> int:
        """Rows at/above the blacklisting threshold in the active D-CBF
        window, summed over banks (exact shadow counts, no aliasing)."""
        nbl = self.config.nbl
        return sum(bl.dcbf.exact_over(nbl) for bl in self._flat_bls)

    # ------------------------------------------------------------------
    def on_activate(self, rank: int, bank: int, row: int, now: float) -> bool:
        """Record an issued ACT; returns True if the row was blacklisted
        at issue time (feeds AttackThrottler's RHLI counters)."""
        if now >= self._next_rotate:
            self.maybe_rotate(now)
        bl = self._flat_bls[rank * self._banks_per_rank + bank]
        was_blacklisted = bl.blacklisted(row)
        bl.insert(row)
        self.hbs[rank].record(self._rank_row_id(bank, row), now)
        self.stats.total_acts += 1

        key = (rank, bank, row)
        blocked = self._blocked_since.pop(key, None)
        if blocked is not None:
            first_blocked, false_positive = blocked
            delay = now - first_blocked
            self.stats.delayed_acts += 1
            self.stats.delays_ns.append(delay)
            if false_positive:
                self.stats.false_positive_acts += 1
                self.stats.false_positive_delays_ns.append(delay)
        return was_blacklisted
