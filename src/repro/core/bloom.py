"""Bloom filter and counting Bloom filter (Section 3.1.1).

A Bloom filter answers set-membership with possible false positives but
*no false negatives*; a counting Bloom filter (CBF) replaces the bit
array with counters, so testing a key returns an upper bound on its true
insertion count.  Both properties are load-bearing for BlockHammer's
security argument: a row's CBF estimate can only over-state its
activation count, so no aggressor can evade blacklisting.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import HashFamily, MixHashFamily
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


class BloomFilter:
    """Plain bit-array Bloom filter."""

    def __init__(
        self, size: int, hash_count: int = 4, rng: DeterministicRng | None = None,
        hashes: HashFamily | None = None,
    ) -> None:
        require(size >= 2, "filter size must be >= 2")
        self.size = size
        self.hashes = hashes or MixHashFamily(
            hash_count, size, rng or DeterministicRng(0)
        )
        self._bits = np.zeros(size, dtype=bool)
        self.insertions = 0

    def insert(self, key: int) -> None:
        """Add ``key`` to the set."""
        for index in self.hashes.indices(key):
            self._bits[index] = True
        self.insertions += 1

    def test(self, key: int) -> bool:
        """Membership test; may return a false positive, never a false
        negative for inserted keys since the last clear."""
        return all(self._bits[index] for index in self.hashes.indices(key))

    def clear(self, reseed: bool = True) -> None:
        """Zero the array and (by default) re-randomize the hash seeds."""
        self._bits[:] = False
        self.insertions = 0
        if reseed:
            self.hashes.reseed()

    def fill_ratio(self) -> float:
        """Fraction of set bits (saturation indicator)."""
        return float(self._bits.mean())


class CountingBloomFilter:
    """Counting Bloom filter with saturating counters.

    ``counter_max`` models the hardware counter width (the paper uses
    12-bit counters at NRH=32K, just wide enough to reach NBL); counting
    saturates rather than wraps, preserving the no-false-negative
    property.
    """

    def __init__(
        self,
        size: int,
        hash_count: int = 4,
        counter_max: int = (1 << 12) - 1,
        rng: DeterministicRng | None = None,
        hashes: HashFamily | None = None,
    ) -> None:
        require(size >= 2, "filter size must be >= 2")
        require(counter_max >= 1, "counter_max must be >= 1")
        self.size = size
        self.counter_max = counter_max
        self.hashes = hashes or MixHashFamily(
            hash_count, size, rng or DeterministicRng(0)
        )
        # A plain list outperforms a numpy array for the single-element
        # reads/writes this hot path performs.
        self._counters = [0] * size
        self._saturated = 0
        self.insertions = 0

    def insert(self, key: int) -> int:
        """Increment ``key``'s counters; returns the new estimate."""
        counters = self._counters
        cap = self.counter_max
        estimate = cap
        for index in self.hashes.indices(key):
            value = counters[index]
            if value < cap:
                value += 1
                counters[index] = value
                if value == cap:
                    self._saturated += 1
            if value < estimate:
                estimate = value
        self.insertions += 1
        return estimate

    def test(self, key: int) -> int:
        """Upper-bound estimate of ``key``'s insertion count."""
        counters = self._counters
        return min(counters[index] for index in self.hashes.indices(key))

    def clear(self, reseed: bool = True) -> None:
        """Zero all counters and (by default) re-randomize hash seeds."""
        self._counters = [0] * self.size
        self._saturated = 0
        self.insertions = 0
        if reseed:
            self.hashes.reseed()

    def saturated_fraction(self) -> float:
        """Fraction of counters at ``counter_max``.

        Tracked incrementally in :meth:`insert` (counters saturate and
        never decrease between clears), so this is O(1) instead of a
        full scan of the counter array.
        """
        return self._saturated / self.size
