"""Validation helpers shared by configuration dataclasses."""

from __future__ import annotations


class ConfigError(ValueError):
    """Raised when a configuration value is inconsistent or out of range."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigError(message)
