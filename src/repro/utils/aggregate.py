"""Field-wise dataclass aggregation.

Multi-channel statistics merge the same way everywhere: numeric fields
sum, list fields concatenate.  Iterating the dataclass fields (instead
of naming them) means a future statistic cannot be silently dropped
from an aggregate — it either merges, or the addition fails loudly for
an unsupported field type.
"""

from __future__ import annotations

from dataclasses import fields


def merge_fields(target, source):
    """Merge ``source`` into ``target`` (same dataclass type) in place:
    list fields extend, every other field accumulates with ``+``.
    Returns ``target`` for chaining."""
    for f in fields(target):
        value = getattr(source, f.name)
        if isinstance(value, list):
            getattr(target, f.name).extend(value)
        else:
            setattr(target, f.name, getattr(target, f.name) + value)
    return target
