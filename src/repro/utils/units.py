"""Time units for the simulator.

The simulator's base time unit is the nanosecond, stored as a float.
A full 64 ms refresh window is 6.4e7 ns, far below the 2^53 threshold
where float64 loses integer precision, so accumulation is exact for the
granularities we use (hundredths of a nanosecond).
"""

NS = 1.0
US = 1_000.0 * NS
MS = 1_000.0 * US
SEC = 1_000.0 * MS


def ns_to_us(t_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return t_ns / US


def ns_to_ms(t_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return t_ns / MS
