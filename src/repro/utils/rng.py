"""Deterministic random number generation.

All stochastic components (trace generators, probabilistic mitigation
mechanisms, Bloom filter reseeding) draw from explicitly-seeded RNGs so
that every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import random

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> tuple[int, int]:
    """Advance a SplitMix64 state and return ``(new_state, output)``.

    SplitMix64 is a tiny, statistically solid 64-bit mixer.  We use it to
    derive independent hash seeds (e.g. for H3 hash functions) from a
    single experiment seed without correlation between consecutive seeds.
    """
    state = (state + _SPLITMIX_GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


class DeterministicRng:
    """A seeded RNG facade used throughout the simulator.

    Wraps :class:`random.Random` (Mersenne Twister) for distribution
    sampling and exposes a SplitMix64 stream for deriving hash seeds.
    Components should never use the global ``random`` module.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        self._splitmix_state = seed & _MASK64

    def next_seed(self) -> int:
        """Return the next 64-bit seed from the SplitMix64 stream."""
        self._splitmix_state, out = splitmix64(self._splitmix_state)
        return out

    def uniform(self) -> float:
        """Return a float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Return an integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items):
        """Return a uniformly random element of ``items``."""
        return self._random.choice(items)

    def shuffle(self, items) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def geometric(self, mean: float) -> int:
        """Sample a geometric-ish gap with the given mean (>= 0).

        Used by trace generators for inter-request instruction gaps.
        """
        if mean <= 0.0:
            return 0
        # Inverse-CDF sampling of a geometric distribution with the
        # requested mean; p = 1 / (mean + 1).
        u = self._random.random()
        import math

        p = 1.0 / (mean + 1.0)
        return int(math.log(max(u, 1e-12)) / math.log(1.0 - p))

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child RNG from this one.

        The child seed mixes the parent seed with a stable hash of
        ``label`` so that adding a new consumer does not perturb the
        streams of existing consumers.
        """
        label_hash = 0
        for ch in label:
            label_hash = (label_hash * 131 + ord(ch)) & _MASK64
        _, derived = splitmix64((self.seed ^ label_hash) & _MASK64)
        return DeterministicRng(derived)
