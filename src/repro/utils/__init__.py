"""Shared utilities: time units, deterministic RNG, validation helpers."""

from repro.utils.units import NS, US, MS, SEC, ns_to_us, ns_to_ms
from repro.utils.rng import DeterministicRng, splitmix64
from repro.utils.validation import ConfigError, require

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "ns_to_us",
    "ns_to_ms",
    "DeterministicRng",
    "splitmix64",
    "ConfigError",
    "require",
]
