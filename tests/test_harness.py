"""Tests for the experiment harness (runner + drivers).

These use aggressively-scaled configurations so the whole file runs in
tens of seconds; the benchmarks use larger settings.
"""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import HarnessConfig, Runner
from repro.workloads.mixes import attack_mixes, benign_mixes


@pytest.fixture(scope="module")
def hcfg():
    return HarnessConfig(scale=256, instructions_per_thread=20_000, warmup_ns=20_000.0)


@pytest.fixture(scope="module")
def runner(hcfg):
    return Runner(hcfg)


def test_scaled_nrh_consistency(hcfg):
    assert hcfg.sim_nrh == 128
    assert hcfg.spec().tREFW == pytest.approx(64e6 / 256)
    assert hcfg.disturbance().nrh == 128


def test_mechanism_kwargs_paper_scale_para(hcfg):
    kwargs = hcfg.mechanism_kwargs("para")
    # Tuned at paper NRH (16K effective), not the scaled 64.
    assert kwargs["probability"] == pytest.approx(0.0042, rel=0.05)
    assert hcfg.mechanism_kwargs("blockhammer") == {}


def test_run_single_produces_result(runner):
    outcome = runner.run_single("403.gcc", "none")
    assert outcome.result.threads[0].instructions >= 20_000
    assert outcome.energy.total_j > 0.0


def test_run_mix_benign(runner):
    outcome = runner.run_mix(benign_mixes(1)[0], "none")
    assert len(outcome.result.threads) == 8
    assert all(t.instructions >= 20_000 for t in outcome.result.threads)


def test_run_mix_attack_thread_untargeted(runner):
    outcome = runner.run_mix(attack_mixes(1)[0], "none")
    benign = outcome.result.threads[1:]
    assert all(t.instructions >= 20_000 for t in benign)
    # The attacker keeps running but never gates completion.
    assert outcome.result.threads[0].mem.activations > 0


def test_alone_ipc_cached(runner):
    mix = benign_mixes(1)[0]
    first = runner.alone_ipc(mix, 1)
    second = runner.alone_ipc(mix, 1)
    assert first == second
    assert first > 0.0


def test_benign_ipc_maps_exclude_attacker(runner):
    mix = attack_mixes(1)[0]
    outcome = runner.run_mix(mix, "none")
    shared, alone = runner.benign_ipc_maps(mix, outcome)
    assert 0 not in shared
    assert set(shared) == set(alone) == set(range(1, 8))


def test_alone_trace_mirrors_mix_width(runner, hcfg):
    """The alone-IPC trace must replay the mix slot's trace bit-exactly
    for any mix width (the row-stripe stride follows the width)."""
    from repro.workloads.mixes import WorkloadMix
    from repro.workloads.profiles import profile_by_name

    mix = WorkloadMix(
        name="w4",
        app_names=("403.gcc", "429.mcf", "473.astar", "450.soplex"),
        has_attack=False,
    )
    traces = mix.build_traces(hcfg.spec(), hcfg.mapping(), seed=hcfg.seed)
    alone = runner._benign_trace(profile_by_name("429.mcf"), slot=1, threads=4)
    for _ in range(100):
        ra, rb = traces[1].next_record(), alone.next_record()
        assert (ra.gap, ra.address, ra.is_write) == (rb.gap, rb.address, rb.is_write)


def test_with_nrh_rebuilds_config(hcfg):
    smaller = hcfg.with_nrh(1024)
    assert smaller.sim_nrh == 4
    assert smaller.scale == hcfg.scale


def test_format_table_aligns():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
