"""Unit tests for time-unit helpers."""

from repro.utils.units import MS, NS, SEC, US, ns_to_ms, ns_to_us


def test_unit_ratios():
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert SEC == 1000 * MS


def test_conversions():
    assert ns_to_us(2500.0) == 2.5
    assert ns_to_ms(64_000_000.0) == 64.0


def test_refresh_window_is_exact_in_float():
    # 64 ms in ns is far below float64's integer-precision limit.
    assert 64 * MS + 1.0 != 64 * MS
