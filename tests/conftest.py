"""Shared fixtures: small, fast configurations for unit/integration tests."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.dram.spec import DDR4_2400, DramSpec
from repro.utils.rng import DeterministicRng


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234)


@pytest.fixture
def spec() -> DramSpec:
    """Full-scale DDR4 spec (for timing math tests)."""
    return DDR4_2400


@pytest.fixture
def small_spec() -> DramSpec:
    """A shrunken device for fast simulation tests: 4 banks x 4K rows,
    1 ms refresh window."""
    return replace(
        DDR4_2400.scaled(64),
        banks_per_rank=4,
        rows_per_bank=4096,
    )


@pytest.fixture
def tiny_spec() -> DramSpec:
    """An even smaller device for microtests: 2 banks x 64 rows."""
    return replace(
        DDR4_2400.scaled(256),
        banks_per_rank=2,
        rows_per_bank=64,
        columns_per_row=8,
    )
