"""Unit and property tests for address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address import AddressMapping, DecodedAddress, MappingScheme
from repro.dram.spec import DDR4_2400


@pytest.fixture(params=[MappingScheme.MOP, MappingScheme.ROW_BANK_COL])
def mapping(request):
    return AddressMapping(DDR4_2400, request.param)


_CAPACITY = DDR4_2400.capacity_bytes


@given(st.integers(min_value=0, max_value=_CAPACITY - 1))
def test_decode_encode_roundtrip_mop(address):
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    line_address = (address // 64) * 64
    assert mapping.encode(mapping.decode(line_address)) == line_address


@given(st.integers(min_value=0, max_value=_CAPACITY - 1))
def test_decode_encode_roundtrip_rbc(address):
    mapping = AddressMapping(DDR4_2400, MappingScheme.ROW_BANK_COL)
    line_address = (address // 64) * 64
    assert mapping.encode(mapping.decode(line_address)) == line_address


def test_addresses_beyond_capacity_wrap():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    assert mapping.decode(_CAPACITY) == mapping.decode(0)


def test_decode_fields_in_range(mapping):
    spec = DDR4_2400
    for address in range(0, 1 << 20, 4096 + 64):
        d = mapping.decode(address)
        assert 0 <= d.rank < spec.ranks
        assert 0 <= d.bank < spec.banks_per_rank
        assert 0 <= d.row < spec.rows_per_bank
        assert 0 <= d.col < spec.columns_per_row


def test_mop_interleaves_runs_across_banks():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP, mop_run=4)
    decoded = [mapping.decode(i * 64) for i in range(16)]
    # First 4 lines in bank 0, next 4 in bank 1, ...
    assert [d.bank for d in decoded[:8]] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert all(d.row == decoded[0].row for d in decoded)


def test_row_bank_col_keeps_row_contiguous():
    mapping = AddressMapping(DDR4_2400, MappingScheme.ROW_BANK_COL)
    spec = DDR4_2400
    lines_per_row = spec.columns_per_row
    decoded = [mapping.decode(i * 64) for i in range(lines_per_row)]
    assert all(d.bank == 0 and d.row == 0 for d in decoded)
    assert [d.col for d in decoded] == list(range(lines_per_row))


def test_encode_specific_coordinate():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    target = DecodedAddress(rank=0, bank=5, row=1234, col=17)
    assert mapping.decode(mapping.encode(target)) == target


def test_mop_run_must_divide_columns():
    import pytest as _pytest
    from repro.utils.validation import ConfigError

    with _pytest.raises(ConfigError):
        AddressMapping(DDR4_2400, MappingScheme.MOP, mop_run=7)
