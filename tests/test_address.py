"""Unit and property tests for address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address import AddressMapping, DecodedAddress, MappingScheme
from repro.dram.spec import DDR4_2400


@pytest.fixture(params=[MappingScheme.MOP, MappingScheme.ROW_BANK_COL])
def mapping(request):
    return AddressMapping(DDR4_2400, request.param)


_CAPACITY = DDR4_2400.capacity_bytes


@given(st.integers(min_value=0, max_value=_CAPACITY - 1))
def test_decode_encode_roundtrip_mop(address):
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    line_address = (address // 64) * 64
    assert mapping.encode(mapping.decode(line_address)) == line_address


@given(st.integers(min_value=0, max_value=_CAPACITY - 1))
def test_decode_encode_roundtrip_rbc(address):
    mapping = AddressMapping(DDR4_2400, MappingScheme.ROW_BANK_COL)
    line_address = (address // 64) * 64
    assert mapping.encode(mapping.decode(line_address)) == line_address


def test_addresses_beyond_capacity_wrap():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    assert mapping.decode(_CAPACITY) == mapping.decode(0)


def test_decode_fields_in_range(mapping):
    spec = DDR4_2400
    for address in range(0, 1 << 20, 4096 + 64):
        d = mapping.decode(address)
        assert 0 <= d.rank < spec.ranks
        assert 0 <= d.bank < spec.banks_per_rank
        assert 0 <= d.row < spec.rows_per_bank
        assert 0 <= d.col < spec.columns_per_row


def test_mop_interleaves_runs_across_banks():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP, mop_run=4)
    decoded = [mapping.decode(i * 64) for i in range(16)]
    # First 4 lines in bank 0, next 4 in bank 1, ...
    assert [d.bank for d in decoded[:8]] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert all(d.row == decoded[0].row for d in decoded)


def test_row_bank_col_keeps_row_contiguous():
    mapping = AddressMapping(DDR4_2400, MappingScheme.ROW_BANK_COL)
    spec = DDR4_2400
    lines_per_row = spec.columns_per_row
    decoded = [mapping.decode(i * 64) for i in range(lines_per_row)]
    assert all(d.bank == 0 and d.row == 0 for d in decoded)
    assert [d.col for d in decoded] == list(range(lines_per_row))


def test_encode_specific_coordinate():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    target = DecodedAddress(rank=0, bank=5, row=1234, col=17)
    assert mapping.decode(mapping.encode(target)) == target


def test_mop_run_must_divide_columns():
    import pytest as _pytest
    from repro.utils.validation import ConfigError

    with _pytest.raises(ConfigError):
        AddressMapping(DDR4_2400, MappingScheme.MOP, mop_run=7)


# ----------------------------------------------------------------------
# Channel bits.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", list(MappingScheme))
@pytest.mark.parametrize("channels", [1, 2, 4])
def test_channel_bit_roundtrip_all_schemes(scheme, channels):
    """encode -> decode round-trips every (channel, rank, bank, row, col)
    coordinate for every mapping scheme and channel count."""
    spec = DDR4_2400.with_channels(channels)
    mapping = AddressMapping(spec, scheme)
    for channel in range(channels):
        for bank in (0, 3, spec.banks_per_rank - 1):
            for row in (0, 1234, spec.rows_per_bank - 1):
                for col in (0, 17, spec.columns_per_row - 1):
                    target = DecodedAddress(0, bank, row, col, channel)
                    assert mapping.decode(mapping.encode(target)) == target


@pytest.mark.parametrize("scheme", list(MappingScheme))
@given(st.integers(min_value=0, max_value=4 * _CAPACITY - 1))
def test_channel_decode_encode_roundtrip(scheme, address):
    spec = DDR4_2400.with_channels(4)
    mapping = AddressMapping(spec, scheme)
    line_address = (address // 64) * 64
    assert mapping.encode(mapping.decode(line_address)) == line_address


@pytest.mark.parametrize("scheme", list(MappingScheme))
def test_single_channel_decode_matches_channel_free_layout(scheme):
    """channels=1 decodes bit-identically to the pre-channel mapping
    (the channel digit is the identity), so every existing figure and
    golden value stays valid."""
    base = AddressMapping(DDR4_2400, scheme)
    one = AddressMapping(DDR4_2400.with_channels(1), scheme)
    for address in range(0, 1 << 22, 64 * 997):
        d_base, d_one = base.decode(address), one.decode(address)
        assert d_one == d_base
        assert d_one.channel == 0


def test_mop_channel_interleaves_at_run_granularity():
    spec = DDR4_2400.with_channels(2)
    mapping = AddressMapping(spec, MappingScheme.MOP, mop_run=4)
    decoded = [mapping.decode(i * 64) for i in range(16)]
    # One MOP run stays in one channel, the next run moves channels,
    # and the bank advances only after all channels were visited.
    assert [d.channel for d in decoded] == [0] * 4 + [1] * 4 + [0] * 4 + [1] * 4
    assert [d.bank for d in decoded[:8]] == [0] * 8
    assert [d.bank for d in decoded[8:16]] == [1] * 8


def test_decode_is_memoized():
    mapping = AddressMapping(DDR4_2400, MappingScheme.MOP)
    first = mapping.decode(4096)
    assert mapping.decode(4096) is first
