"""Unit tests for RowBlocker (blacklisting + history gating)."""

import pytest

from repro.core.config import BlockHammerConfig
from repro.core.rowblocker import RowBlocker
from repro.dram.spec import DDR4_2400
from repro.utils.rng import DeterministicRng


def make_rowblocker(nbl=16, t_cbf=10_000.0):
    config = BlockHammerConfig(
        nrh=16 * nbl,
        t_refw_ns=t_cbf,
        t_cbf_ns=t_cbf,
        nbl=nbl,
        cbf_size=1024,
        t_rc_ns=46.25,
        t_faw_ns=35.0,
    )
    return (
        RowBlocker(config, num_ranks=1, banks_per_rank=2, rows_per_bank=4096,
                   rng=DeterministicRng(3)),
        config,
    )


def test_unblacklisted_row_always_safe():
    rb, config = make_rowblocker()
    for i in range(10):
        assert rb.is_safe(0, 0, 5, 0, now=float(i))
        rb.on_activate(0, 0, 5, now=float(i))


def test_blacklisted_and_recent_row_delayed():
    rb, config = make_rowblocker(nbl=16)
    now = 0.0
    for _ in range(16):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    # Row 5 crossed NBL and was just activated: unsafe until tDelay.
    allowed = rb.allowed_at(0, 0, 5, 0, now)
    assert allowed > now
    assert allowed == pytest.approx((now - config.t_rc_ns) + config.t_delay_ns)


def test_blacklisted_but_stale_row_safe():
    rb, config = make_rowblocker(nbl=16)
    now = 0.0
    for _ in range(16):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    later = now + config.t_delay_ns + 1.0
    assert rb.is_safe(0, 0, 5, 0, later)


def test_blacklist_is_per_bank():
    rb, config = make_rowblocker(nbl=16)
    now = 0.0
    for _ in range(16):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    # Same row number in the other bank is unaffected.
    assert rb.is_safe(0, 1, 5, 0, now)


def test_history_buffer_is_per_rank():
    """The HB stores rank-unique row IDs: bank 0 row 5 and bank 1 row 5
    are distinct entries."""
    rb, config = make_rowblocker(nbl=4)
    now = 0.0
    for _ in range(4):
        rb.on_activate(0, 0, 5, now)
        rb.on_activate(0, 1, 5, now)
        now += config.t_rc_ns
    assert rb.hbs[0].last_activation(0 * 4096 + 5, now) is not None
    assert rb.hbs[0].last_activation(1 * 4096 + 5, now) is not None


def test_on_activate_reports_blacklisted_state():
    rb, config = make_rowblocker(nbl=4)
    now = 0.0
    results = []
    for _ in range(6):
        results.append(rb.on_activate(0, 0, 5, now))
        now += config.t_delay_ns  # stay HB-safe
    assert results[:3] == [False, False, False]
    assert results[4] is True and results[5] is True


def test_epoch_rotation_unblacklists_idle_row():
    rb, config = make_rowblocker(nbl=8, t_cbf=10_000.0)
    now = 0.0
    for _ in range(8):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    # After two full epochs with no activity the row is clean.
    later = now + config.t_cbf_ns + config.epoch_ns
    rb.maybe_rotate(later)
    assert rb.is_safe(0, 0, 5, 0, later)


def test_delay_stats_accumulate():
    rb, config = make_rowblocker(nbl=8)
    now = 0.0
    for _ in range(8):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    blocked_at = rb.allowed_at(0, 0, 5, 0, now)
    assert blocked_at > now
    rb.on_activate(0, 0, 5, blocked_at)
    stats = rb.stats
    assert stats.delayed_acts == 1
    assert stats.total_acts == 9
    assert stats.delays_ns[0] == pytest.approx(blocked_at - now)


def test_true_positive_not_counted_as_false_positive():
    rb, config = make_rowblocker(nbl=8)
    now = 0.0
    for _ in range(8):
        rb.on_activate(0, 0, 5, now)
        now += config.t_rc_ns
    blocked_at = rb.allowed_at(0, 0, 5, 0, now)
    rb.on_activate(0, 0, 5, blocked_at)
    assert rb.stats.false_positive_acts == 0
    assert rb.stats.false_positive_rate == 0.0


def test_delay_percentiles():
    from repro.core.rowblocker import DelayStats

    stats = DelayStats()
    stats.delays_ns.extend(float(i) for i in range(1, 101))
    assert stats.delay_percentile(50) == pytest.approx(51.0)
    assert stats.delay_percentile(100) == 100.0
    assert stats.delay_percentile(50, false_positives_only=True) == 0.0
