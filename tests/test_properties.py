"""Cross-module property tests (hypothesis).

These pin the invariants the security argument rests on, across random
configurations and access patterns.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import BlockHammerConfig
from repro.core.dcbf import DualCountingBloomFilter
from repro.core.rowblocker import RowBlocker
from repro.dram.rowhammer import DisturbanceModel, DisturbanceProfile
from repro.security.adversary import max_acts_in_any_window
from repro.security.solver import fast_delayed_bound, prove_safety
from repro.utils.rng import DeterministicRng


@given(
    nbl_exp=st.integers(min_value=3, max_value=8),
    cbf_exp=st.integers(min_value=8, max_value=12),
)
@settings(max_examples=20, deadline=None)
def test_proof_holds_for_table7_style_configs(nbl_exp, cbf_exp):
    """Any config following the Table 7 rule (NBL = NRH/4, tCBF = tREFW)
    is provably safe."""
    nbl = 1 << nbl_exp
    config = BlockHammerConfig(
        nrh=4 * nbl,
        t_refw_ns=1_000_000.0,
        t_cbf_ns=1_000_000.0,
        nbl=nbl,
        cbf_size=1 << cbf_exp,
    )
    proof = prove_safety(config)
    assert proof.safe


@given(st.integers(min_value=3, max_value=9))
@settings(max_examples=10, deadline=None)
def test_fast_delayed_bound_equals_budget(nbl_exp):
    """Eq. 1 makes the fast/delayed worst case land exactly on the
    per-window activation budget (up to burst-time rounding)."""
    nbl = 1 << nbl_exp
    config = BlockHammerConfig(
        nrh=4 * nbl,
        t_refw_ns=1_000_000.0,
        t_cbf_ns=1_000_000.0,
        nbl=nbl,
        cbf_size=1024,
    )
    bound = fast_delayed_bound(config)
    assert bound <= config.nrh_star + 1e-6
    assert bound > 0.95 * config.nrh_star


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=30, deadline=None)
def test_rowblocker_never_lets_any_pattern_exceed_budget(moves):
    """Arbitrary interleavings of activations over six rows, always
    issued at the earliest RowBlocker-permitted time, never put any row
    above the NRH* budget in any sliding window."""
    config = BlockHammerConfig(
        nrh=64, t_refw_ns=20_000.0, t_cbf_ns=20_000.0, nbl=16, cbf_size=512
    )
    rb = RowBlocker(config, 1, 1, 4096, rng=DeterministicRng(5))
    now = 0.0
    times: dict[int, list[float]] = {}
    for row, _ in moves:
        allowed = rb.allowed_at(0, 0, row, 0, now)
        now = max(now, allowed)
        rb.on_activate(0, 0, row, now)
        times.setdefault(row, []).append(now)
        now += config.t_rc_ns
    for row, acts in times.items():
        assert max_acts_in_any_window(acts, config.t_refw_ns) <= config.nrh_star


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_dcbf_active_estimate_dominates_current_epoch_truth(keys):
    """At any point, the active filter's estimate of a key is at least
    the key's insertions since the older of the two filters was cleared
    — the no-false-negative window property."""
    dcbf = DualCountingBloomFilter(size=256, epoch_ns=1e9, rng=DeterministicRng(4))
    truth: dict[int, int] = {}
    for key in keys:
        dcbf.insert(key)
        truth[key] = truth.get(key, 0) + 1
    for key, count in truth.items():
        assert dcbf.count(key) >= count


@given(
    aggressor=st.integers(min_value=3, max_value=96),
    acts=st.integers(min_value=1, max_value=200),
    radius=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_disturbance_symmetry_and_conservation(aggressor, acts, radius):
    """Hammering distributes identical disturbance to both sides, and a
    victim's accumulated disturbance equals acts x c_k."""
    profile = DisturbanceProfile(nrh=10**9, blast_radius=radius, decay=0.5)
    model = DisturbanceModel(profile, rows=100, rank=0, bank=0)
    for _ in range(acts):
        model.on_activate(aggressor, now=0.0)
    for k in range(1, radius + 1):
        left = model.disturbance_of(aggressor - k)
        right = model.disturbance_of(aggressor + k)
        assert left == right
        assert left == acts * profile.impact(k)
