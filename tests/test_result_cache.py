"""The persistent cross-sweep result cache.

The acceptance property: a warm-cache re-run of an unchanged sweep
performs **zero** simulations (asserted via the job-execution counter)
and returns rows identical to both the serial and the parallel
execution of the same sweep — including on multi-channel
configurations, whose results carry per-channel rows through the JSON
round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import parallel
from repro.harness.cache import (
    CACHE_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    resolve_cache,
    source_fingerprint,
)
from repro.harness.experiments import fig5_multicore
from repro.harness.parallel import (
    execute_job,
    job_executions,
    mix_job,
    run_jobs,
    single_job,
)
from repro.harness.runner import HarnessConfig
from repro.workloads.mixes import attack_mixes


@pytest.fixture(scope="module")
def hcfg2() -> HarnessConfig:
    """2-channel, tier-1 sized."""
    return HarnessConfig(
        scale=128.0, instructions_per_thread=4_000, warmup_ns=5_000.0, num_channels=2
    )


# ----------------------------------------------------------------------
# Round-trip fidelity.
# ----------------------------------------------------------------------
def test_job_result_json_roundtrip_exact(tmp_path, hcfg2):
    cache = ResultCache(tmp_path)
    job = mix_job(
        hcfg2, attack_mixes(1)[0], "blockhammer", extract=("thread_rhli", "delay_stats")
    )
    fresh = execute_job(job)
    cache.put(job, fresh)
    cached = cache.get(job)
    assert cached is not None
    # Dataclass equality is recursive and float-exact: threads, memory
    # stats, per-channel rows, bit-flips, energy, extras.
    assert cached.result == fresh.result
    assert cached.energy == fresh.energy
    assert cached.mechanism_name == fresh.mechanism_name
    assert cached.extras["thread_rhli"] == fresh.extras["thread_rhli"]
    assert cached.extras["delay_stats"] == fresh.extras["delay_stats"]
    assert cached.key == job.key


def test_serial_parallel_and_cache_hit_rows_identical(tmp_path, hcfg2):
    """serial == parallel == cache-hit for a multi-channel sweep."""
    cache = ResultCache(tmp_path)
    serial = fig5_multicore(hcfg2, 1, ["blockhammer"], workers=1)
    parallel_rows = fig5_multicore(hcfg2, 1, ["blockhammer"], workers=2)
    cold = fig5_multicore(hcfg2, 1, ["blockhammer"], workers=1, cache=cache)
    before = job_executions()
    warm = fig5_multicore(hcfg2, 1, ["blockhammer"], workers=1, cache=cache)
    assert job_executions() == before  # zero simulations on the warm run
    assert serial == parallel_rows == cold == warm
    assert cache.hits >= cache.stores > 0


def test_warm_run_serves_every_job_from_disk(tmp_path, hcfg2):
    cache = ResultCache(tmp_path)
    jobs = [
        single_job(hcfg2, "403.gcc", "none"),
        single_job(hcfg2, "403.gcc", "blockhammer"),
    ]
    run_jobs(jobs, workers=1, cache=cache)
    assert cache.stores == 2
    warm_cache = ResultCache(tmp_path)  # fresh instance, same directory
    before = job_executions()
    results = run_jobs(jobs, workers=1, cache=warm_cache)
    assert job_executions() == before
    assert warm_cache.hits == 2 and warm_cache.misses == 0
    assert set(results) == {job.key for job in jobs}


# ----------------------------------------------------------------------
# Invalidation and key hygiene.
# ----------------------------------------------------------------------
def test_source_fingerprint_invalidates(tmp_path, hcfg2):
    job = single_job(hcfg2, "403.gcc", "none")
    cache = ResultCache(tmp_path)
    cache.put(job, execute_job(job))
    assert ResultCache(tmp_path).get(job) is not None
    stale = ResultCache(tmp_path, fingerprint="deadbeef")
    assert stale.get(job) is None  # simulated source change: clean miss
    assert stale.misses == 1


def test_different_jobs_do_not_collide(tmp_path, hcfg2):
    cache = ResultCache(tmp_path)
    a = single_job(hcfg2, "403.gcc", "none")
    b = single_job(hcfg2, "403.gcc", "blockhammer")
    cache.put(a, execute_job(a))
    assert cache.get(b) is None


def test_extras_must_cover_request(tmp_path, hcfg2):
    mix = attack_mixes(1)[0]
    bare = mix_job(hcfg2, mix, "blockhammer")
    cache = ResultCache(tmp_path)
    cache.put(bare, execute_job(bare))
    # The cached entry has no extras: a job requesting them must miss
    # (and re-run), never silently return a result without them.
    wanting = mix_job(hcfg2, mix, "blockhammer", extract=("thread_rhli",))
    assert cache.get(wanting) is None
    cache.put(wanting, execute_job(wanting))
    hit = cache.get(bare)  # superset entries serve subset requests
    assert hit is not None


def test_corrupt_entry_is_a_miss(tmp_path, hcfg2):
    cache = ResultCache(tmp_path)
    job = single_job(hcfg2, "403.gcc", "none")
    cache.put(job, execute_job(job))
    path = cache._path(job)
    path.write_text("{ not json")
    assert cache.get(job) is None


def test_corrupt_entry_is_quarantined_and_counted(tmp_path, hcfg2):
    """Garbage JSON is renamed to *.corrupt (not re-parsed forever, not
    silently deleted) and tallied in the ``corrupt`` stat; a re-store
    then overwrites the slot cleanly."""
    cache = ResultCache(tmp_path)
    job = single_job(hcfg2, "403.gcc", "none")
    fresh = execute_job(job)
    cache.put(job, fresh)
    path = cache._path(job)
    path.write_text("\x00garbage\x00")
    assert cache.get(job) is None
    assert cache.corrupt == 1 and cache.misses == 1
    assert not path.exists()
    assert path.with_suffix(".corrupt").exists()
    cache.put(job, fresh)
    hit = cache.get(job)
    assert hit is not None and hit.result == fresh.result


def test_mangled_payload_is_quarantined(tmp_path, hcfg2):
    """A schema-valid envelope around a broken payload (e.g. a partial
    overwrite) quarantines like bad JSON instead of crashing decode."""
    cache = ResultCache(tmp_path)
    job = single_job(hcfg2, "403.gcc", "none")
    cache.put(job, execute_job(job))
    path = cache._path(job)
    data = json.loads(path.read_text())
    data["result"] = {"mangled": True}
    path.write_text(json.dumps(data))
    assert cache.get(job) is None
    assert cache.corrupt == 1
    assert path.with_suffix(".corrupt").exists()


def test_schema_mismatch_is_a_plain_miss_not_corruption(tmp_path, hcfg2):
    """Stale-but-well-formed entries (old fingerprint, missing extras)
    are ordinary misses: no quarantine, no corrupt tally."""
    job = single_job(hcfg2, "403.gcc", "none")
    cache = ResultCache(tmp_path)
    cache.put(job, execute_job(job))
    stale = ResultCache(tmp_path, fingerprint="deadbeef")
    assert stale.get(job) is None
    assert stale.corrupt == 0
    assert cache._path(job).exists()  # entry left in place


def test_quarantined_files_do_not_count_toward_eviction_cap(tmp_path, hcfg2):
    """*.corrupt files live outside the *.json lookup namespace, so the
    LRU cap neither deletes them nor counts them as entries."""
    cache = ResultCache(tmp_path, max_entries=2)
    jobs = [
        single_job(hcfg2, app, "none") for app in ("403.gcc", "401.bzip2")
    ]
    for job in jobs:
        cache.put(job, execute_job(job))
    cache._path(jobs[0]).write_text("junk")
    assert cache.get(jobs[0]) is None  # quarantined
    third = single_job(hcfg2, "445.gobmk", "none")
    cache.put(third, execute_job(third))
    assert cache.evictions == 0  # one .json slot was freed by quarantine
    assert cache._path(jobs[0]).with_suffix(".corrupt").exists()


def test_source_fingerprint_is_stable():
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 64


# ----------------------------------------------------------------------
# Activation plumbing.
# ----------------------------------------------------------------------
def test_resolve_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_ENV, raising=False)
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(True).root.name == DEFAULT_CACHE_DIR
    explicit = ResultCache(tmp_path)
    assert resolve_cache(explicit) is explicit
    monkeypatch.setenv(CACHE_ENV, "0")
    assert resolve_cache(None) is None
    monkeypatch.setenv(CACHE_ENV, "1")
    assert str(resolve_cache(None).root) == DEFAULT_CACHE_DIR
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "elsewhere"))
    assert resolve_cache(None).root == tmp_path / "elsewhere"
    # An explicit False always wins over the environment.
    assert resolve_cache(False) is None


def test_entries_are_json_files_under_root(tmp_path, hcfg2):
    cache = ResultCache(tmp_path)
    job = single_job(hcfg2, "403.gcc", "none")
    cache.put(job, execute_job(job))
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    data = json.loads(files[0].read_text())
    assert data["key"] == repr(job.key)
    assert data["fingerprint"] == cache.fingerprint


# ----------------------------------------------------------------------
# Tier-1 smoke: a 2-channel job through the pool + cache path.
# ----------------------------------------------------------------------
@pytest.mark.perf_smoke
def test_perf_smoke_two_channel_pool_and_cache(tmp_path, hcfg2):
    """Cold: one 2-channel sweep through the process-pool executor with
    the cache storing results.  Warm: the same sweep again, asserting
    zero simulations ran and the rows came back identical."""
    cache = ResultCache(tmp_path)
    jobs = [
        single_job(hcfg2, "403.gcc", "none"),
        single_job(hcfg2, "403.gcc", "blockhammer"),
    ]
    cold = run_jobs(jobs, workers=2, cache=cache)
    assert cache.stores == 2
    warm = run_jobs(jobs, workers=2, cache=cache)
    # Every warm job hit (and only the cold run missed): run_jobs only
    # dispatches misses, so zero simulations ran in *any* process —
    # the per-process job_executions counter cannot see pool workers.
    assert cache.hits == 2
    assert cache.misses == 2
    for key in cold:
        assert warm[key].result == cold[key].result
        assert warm[key].energy == cold[key].energy
        assert len(warm[key].result.channels) == 2


# ----------------------------------------------------------------------
# Eviction cap (LRU).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hcfg_tiny() -> HarnessConfig:
    """Single-channel, eviction-test sized (simulations in milliseconds)."""
    return HarnessConfig(
        scale=128.0, instructions_per_thread=1_500, warmup_ns=1_000.0, num_channels=1
    )


def _tiny_jobs(hcfg, apps):
    return [single_job(hcfg, app, "none") for app in apps]


def _set_mtimes(cache, jobs, start=1_000_000):
    """Deterministic, strictly-increasing mtimes in job order."""
    import os

    for index, job in enumerate(jobs):
        when = start + index
        os.utime(cache._path(job), times=(when, when))


def test_cap_evicts_oldest_entries_and_warm_hits_skip_simulation(tmp_path, hcfg_tiny):
    """Fill past the cap: the oldest entries are evicted, the survivors
    still serve warm runs with zero simulations."""
    apps = ["403.gcc", "401.bzip2", "445.gobmk", "458.sjeng", "444.namd"]
    jobs = _tiny_jobs(hcfg_tiny, apps)
    cache = ResultCache(tmp_path, max_entries=3)
    for job in jobs:
        cache.put(job, execute_job(job))
        _set_mtimes(cache, [j for j in jobs if cache._path(j).exists()])
    assert len(list(tmp_path.glob("*.json"))) == 3
    assert cache.evictions == 2
    # The two oldest are gone; the three newest survive.
    fresh = ResultCache(tmp_path, max_entries=3)
    assert fresh.get(jobs[0]) is None
    assert fresh.get(jobs[1]) is None
    for job in jobs[2:]:
        assert fresh.get(job) is not None
    # Warm hits on the survivors still skip simulation entirely.
    before = job_executions()
    results = run_jobs(jobs[2:], workers=1, cache=ResultCache(tmp_path, max_entries=3))
    assert job_executions() == before
    assert set(results) == {job.key for job in jobs[2:]}


def test_hits_refresh_recency_so_the_working_set_survives(tmp_path, hcfg_tiny):
    """A get() counts as a use: the least-recently-USED entry is the
    one evicted, not the least-recently-stored."""
    apps = ["403.gcc", "401.bzip2", "445.gobmk"]
    jobs = _tiny_jobs(hcfg_tiny, apps)
    cache = ResultCache(tmp_path, max_entries=3)
    for job in jobs:
        cache.put(job, execute_job(job))
    _set_mtimes(cache, jobs)
    # Touch the oldest-stored entry, then overflow the cap.
    assert cache.get(jobs[0]) is not None
    newcomer = single_job(hcfg_tiny, "458.sjeng", "none")
    cache.put(newcomer, execute_job(newcomer))
    assert cache.evictions == 1
    assert cache.get(jobs[0]) is not None  # recently used: survived
    assert cache.get(jobs[1]) is None  # least recently used: evicted
    assert cache.get(jobs[2]) is not None
    assert cache.get(newcomer) is not None


def test_cap_validation_and_unbounded_default(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path, max_entries=0)
    assert ResultCache(tmp_path).max_entries is None


def test_env_var_caps_resolved_caches(tmp_path, monkeypatch):
    from repro.harness.cache import CACHE_MAX_ENV

    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "capped"))
    monkeypatch.setenv(CACHE_MAX_ENV, "7")
    assert resolve_cache(None).max_entries == 7
    assert resolve_cache(True).max_entries == 7
    monkeypatch.setenv(CACHE_MAX_ENV, "not-a-number")
    with pytest.raises(ValueError):
        resolve_cache(None)
    monkeypatch.delenv(CACHE_MAX_ENV)
    assert resolve_cache(None).max_entries is None


def test_cli_flag_builds_a_capped_cache(tmp_path):
    from repro.harness.cli import _cache, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["fig5", "--cache-dir", str(tmp_path), "--cache-max-entries", "5"]
    )
    cache = _cache(args)
    assert isinstance(cache, ResultCache)
    assert cache.max_entries == 5
    assert cache.root == tmp_path
    # The cap alone implies --cache (default directory).
    implied = _cache(parser.parse_args(["fig5", "--cache-max-entries", "9"]))
    assert isinstance(implied, ResultCache)
    assert implied.max_entries == 9
    assert str(implied.root) == DEFAULT_CACHE_DIR


def test_cli_cap_respects_environment_cache_dir(tmp_path, monkeypatch):
    """--cache-max-entries must cap the environment-selected directory,
    not silently redirect to the default one."""
    from repro.harness.cli import _cache, build_parser

    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "warm"))
    cache = _cache(build_parser().parse_args(["fig5", "--cache-max-entries", "4"]))
    assert isinstance(cache, ResultCache)
    assert cache.root == tmp_path / "warm"
    assert cache.max_entries == 4
    # REPRO_CACHE=1 (default directory) and unset both fall back to the
    # default location.
    monkeypatch.setenv(CACHE_ENV, "1")
    assert str(_cache(build_parser().parse_args(["fig5", "--cache-max-entries", "4"])).root) == DEFAULT_CACHE_DIR


def test_cli_rejects_non_positive_cap(capsys):
    from repro.harness.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5", "--cache-max-entries", "0"])
    assert "must be >= 1" in capsys.readouterr().err
