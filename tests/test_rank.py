"""Unit tests for rank-level timing (tRRD, tFAW)."""

import pytest

from repro.dram.commands import CommandKind
from repro.dram.rank import Rank
from repro.dram.spec import DDR4_2400


@pytest.fixture
def rank():
    return Rank(DDR4_2400, rank_id=0)


def test_trrd_between_acts(rank):
    rank.record_act(100.0)
    assert rank.earliest_act(100.0) == pytest.approx(100.0 + DDR4_2400.tRRD)


def test_tfaw_limits_four_acts(rank):
    s = DDR4_2400
    times = [0.0, s.tRRD, 2 * s.tRRD, 3 * s.tRRD]
    for t in times:
        rank.record_act(t)
    # A 5th ACT must wait until the first ACT's tFAW window closes.
    fifth = rank.earliest_act(times[-1] + s.tRRD)
    assert fifth >= times[0] + s.tFAW


def test_tfaw_window_slides(rank):
    s = DDR4_2400
    for t in (0.0, 10.0, 20.0, 30.0):
        rank.record_act(t)
    rank.record_act(s.tFAW)  # 5th ACT after window
    # Now the constraint is relative to the 2nd ACT (t=10).
    assert rank.earliest_act(s.tFAW) >= 10.0 + s.tFAW


def test_all_banks_precharged(rank):
    assert rank.all_banks_precharged()
    rank.banks[2].issue(CommandKind.ACT, 5, now=0.0)
    assert not rank.all_banks_precharged()
    rank.banks[2].issue(CommandKind.PRE, 5, now=DDR4_2400.tRAS)
    assert rank.all_banks_precharged()


def test_earliest_all_precharged_accounts_for_open_banks(rank):
    s = DDR4_2400
    rank.banks[0].issue(CommandKind.ACT, 5, now=0.0)
    t = rank.earliest_all_precharged(1.0)
    assert t >= s.tRAS + s.tRP
