"""Integration tests for the full System."""

import pytest

from repro.cpu.trace import ListTrace, TraceRecord
from repro.dram.rowhammer import DisturbanceProfile
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.rng import DeterministicRng
from repro.utils.validation import ConfigError


def make_records(count=200, rows=50, seed=3, spec=None, write_frac=0.2):
    rng = DeterministicRng(seed)
    records = []
    for _ in range(count):
        records.append(
            TraceRecord(
                gap=rng.randint(5, 50),
                address=rng.randint(0, rows - 1) * 8192 * 64,
                is_write=rng.uniform() < write_frac,
            )
        )
    return records


def test_single_thread_completes(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records())])
    result = system.run(instructions_per_thread=20_000)
    thread = result.threads[0]
    assert thread.instructions >= 20_000
    assert thread.ipc > 0.0
    assert result.counts.act > 0
    assert result.counts.rd > 0


def test_deterministic_repeat(small_spec):
    def run_once():
        config = SystemConfig(spec=small_spec, seed=7)
        system = System(config, [ListTrace(make_records())])
        return system.run(instructions_per_thread=10_000)

    a, b = run_once(), run_once()
    assert a.threads[0].ipc == b.threads[0].ipc
    assert a.counts.act == b.counts.act
    assert a.elapsed_ns == b.elapsed_ns


def test_multi_thread_contention_slows_threads(small_spec):
    records = make_records(count=400, rows=100)
    solo = System(SystemConfig(spec=small_spec), [ListTrace(records)])
    solo_result = solo.run(instructions_per_thread=10_000)
    crowd = System(
        SystemConfig(spec=small_spec), [ListTrace(records) for _ in range(4)]
    )
    crowd_result = crowd.run(instructions_per_thread=10_000)
    assert crowd_result.threads[0].ipc <= solo_result.threads[0].ipc + 1e-9


def test_max_time_caps_run(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records())])
    result = system.run(instructions_per_thread=100_000_000, max_time_ns=5_000.0)
    assert result.elapsed_ns <= 5_000.0 + 1.0


def test_none_target_thread_does_not_gate(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records()), ListTrace(make_records())])
    result = system.run(instructions_per_thread=[5_000, None])
    assert result.threads[0].instructions >= 5_000


def test_warmup_resets_counters(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records())])
    result = system.run(instructions_per_thread=5_000, warmup_ns=2_000.0)
    thread = result.threads[0]
    # Measured instructions start after warmup.
    assert thread.instructions >= 5_000
    assert thread.instructions < 5_000 + 3_000  # warmup work not counted
    assert result.elapsed_ns > 0


def test_refreshes_happen(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records())])
    result = system.run(instructions_per_thread=40_000)
    if result.threads[0].finish_time_ns > small_spec.tREFI:
        assert result.refreshes >= 1


def test_rbcpki_mpki_derived(small_spec):
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(make_records())])
    result = system.run(instructions_per_thread=20_000)
    thread = result.threads[0]
    assert thread.mpki > 0
    assert 0 <= thread.rbcpki <= thread.mpki


def test_llc_configuration(small_spec):
    config = SystemConfig(spec=small_spec, use_llc=True, llc_bytes=64 * 1024)
    system = System(config, [ListTrace(make_records(rows=4))])
    result = system.run(instructions_per_thread=20_000)
    # A tiny working set fits in the LLC: far fewer memory accesses.
    assert result.threads[0].mem.accesses < 200


def test_invalid_rowmap_kind(small_spec):
    with pytest.raises(ConfigError):
        SystemConfig(spec=small_spec, rowmap_kind="bogus").build_rowmap()


def test_bitflips_with_unprotected_hammer(small_spec):
    profile = DisturbanceProfile(nrh=64, blast_radius=1)
    config = SystemConfig(spec=small_spec, disturbance=profile)
    # Hammer two rows of bank 0 (decoded rows 160 and 192) at full rate.
    records = []
    for i in range(200):
        row = 10 if i % 2 == 0 else 12
        records.append(TraceRecord(gap=0, address=row * 8192 * 64))
    system = System(config, [ListTrace(records)])
    result = system.run(instructions_per_thread=50_000)
    assert result.total_bitflips > 0
    victim_rows = {flip.physical_row for flip in result.bitflips}
    assert victim_rows <= {159, 161, 191, 193}
    assert 159 in victim_rows or 161 in victim_rows
