"""Differential testing harness: fast FR-FCFS vs the naive reference.

The incremental :class:`~repro.mem.scheduler.FrFcfsPolicy` caches
per-bank decisions across scheduling steps; a bug in its dirty-bank or
verdict-expiry protocol would silently warp every result this
repository produces.  This harness is the standing guard: it runs the
*same* workload twice — once under the fast policy, once under
:class:`~repro.mem.scheduler.ReferenceFrFcfsPolicy`, a deliberately
naive reimplementation with no cross-step state — and asserts that the
two simulations are indistinguishable:

* **bit-identical command streams** per channel: every DRAM command's
  (time, kind, rank, bank, row, col), in issue order, warmup included;
* **bit-identical results**: every field of :class:`SimResult` (thread
  IPCs, latency sums, command counts, refresh/victim-refresh counts,
  bit-flips, per-channel rows) and the derived energy breakdown.

``events_processed`` is the one field excluded from the comparison: it
counts event-loop iterations, and the two policies legitimately report
different *wake* times for the same schedule (the reference recomputes a
candidate's full issue time where the fast path may wake earlier on a
partial bound, select nothing, and sleep again).  Wake cadence is loop
mechanics, not memory-system behaviour — commands and results above pin
everything physical.

Scenarios are deterministic functions of (scenario, seed): ``benign``
is three Table 8 applications, ``attack`` is one double-sided hammer
plus one benign victim, ``mixed`` is one hammer plus three benign
threads, and ``governed`` is an attack mix running under an OS
governor (``blockhammer-os``'s mechanism-coupled kill governor on even
seeds, a system-level kill governor on odd seeds, plus a system-level
migrate/kill governor above both) — governor actions (deschedules,
channel re-pins) reshape the command stream mid-run and must do so
identically under both scheduler policies.  ``reactive`` rotates the
victim-refresh mechanisms MRLoc, CBT, and TWiCe (seed % 3) against an
attack mix, covering every registered mechanism in the time-advance
contract.  Seeds vary both the application selection and every RNG
stream in the simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.harness.runner import HarnessConfig, Runner
from repro.mem.scheduler import FrFcfsPolicy, ReferenceFrFcfsPolicy, SchedulingPolicy
from repro.os.spec import GovernorSpec
from repro.workloads.mixes import WorkloadMix, attack_mixes, benign_mixes

SCENARIOS = ("benign", "attack", "mixed", "governed", "reactive")

#: Mechanism exercised per scenario, rotated by seed so the sweep covers
#: proactive throttling (blockhammer — the mechanism whose verdicts the
#: scheduler caches), the unprotected baseline, reactive refreshers
#: (victim-refresh / PRE interleaving in the controller step), a
#: blocker that declares *no* verdict stability (naive-throttle,
#: ``act_block_stable = -inf``) — the scheduler's uncacheable per-step
#: re-examination path — and the governor-carrying ``blockhammer-os``.
#: The ``reactive`` scenario rotates the remaining registered
#: mechanisms (MRLoc, CBT, TWiCe): all three queue victim refreshes
#: through the controller's time-advance contract and must stay
#: bit-identical under quiescence-horizon batching.
_MECHANISMS = {
    "benign": ("blockhammer", "none"),
    "attack": ("blockhammer", "naive-throttle"),
    "mixed": ("graphene", "para"),
    "governed": ("blockhammer-os", "blockhammer"),
    "reactive": ("mrloc", "cbt", "twice"),
}

#: System-level governor per scenario (None = ungoverned), rotated by
#: seed: migrate exercises mid-run channel re-pinning; quota+kill
#: exercises mid-run MLP-quota rescaling (changed injection pacing
#: with no kill or re-pin — its own scheduler-perturbation class)
#: followed by descheduling.  Thresholds are any-RHLI (benign threads
#: sit at exactly 0), so actions fire within the short runs.
_GOVERNORS: dict[str, tuple[GovernorSpec | None, GovernorSpec | None]] = {
    "governed": (
        GovernorSpec(
            policy="migrate", epoch_ns=10_000.0, threshold=0.01, patience_epochs=1
        ),
        GovernorSpec(
            policy="quota+kill", epoch_ns=10_000.0, threshold=0.01, patience_epochs=2
        ),
    ),
}

#: Mechanism construction overrides per scenario (worker-side kwargs):
#: the governed scenario runs at scale 512 where ``blockhammer-os``'s
#: default review interval (half a CBF lifetime) exceeds the whole run,
#: so its embedded governor polls every 10 us like the system one.
_MECHANISM_KWARGS = {
    "governed": {
        "blockhammer-os": {"review_interval_ns": 10_000.0, "kill_rhli": 0.02},
    },
}

#: Per-scenario run-shape overrides.  The governed scenario needs the
#: attacker blacklisted *within* the run for governor actions to fire:
#: at scale 512 that happens inside a 30 us warmup (reviews keep
#: running during warmup, as a real OS would keep polling).
_SCENARIO_KWARGS = {
    "governed": {"scale": 512.0, "instructions": 2000, "warmup_ns": 30_000.0},
    # Reactive mechanisms must actually *fire* victim refreshes inside
    # the short differential runs (that is the path batching must not
    # reorder); at scale 1024 all three rotation members do.
    "reactive": {"scale": 1024.0},
}


def scenario_mix(scenario: str, seed: int) -> WorkloadMix:
    """The deterministic workload for (scenario, seed)."""
    if scenario == "benign":
        return benign_mixes(1, threads=3, master_seed=2021 + seed)[0]
    if scenario == "attack":
        return attack_mixes(1, threads=2, master_seed=2021 + seed)[0]
    if scenario == "mixed":
        return attack_mixes(1, threads=4, master_seed=7000 + seed)[0]
    if scenario == "governed":
        return attack_mixes(1, threads=3, master_seed=5000 + seed)[0]
    if scenario == "reactive":
        return attack_mixes(1, threads=2, master_seed=9000 + seed)[0]
    raise ValueError(f"unknown scenario {scenario!r}")


def scenario_mechanism(scenario: str, seed: int) -> str:
    options = _MECHANISMS[scenario]
    return options[seed % len(options)]


def scenario_governor(scenario: str, seed: int) -> GovernorSpec | None:
    """The system-level governor for (scenario, seed), if any."""
    governors = _GOVERNORS.get(scenario)
    return governors[seed % 2] if governors else None


@dataclass
class DifferentialRun:
    """One policy's observable behaviour for a scenario."""

    policy: str
    #: Per-channel command streams: (time, kind, rank, bank, row, col).
    commands: tuple[list, ...]
    #: Full SimResult as a dict, ``events_processed`` removed (see the
    #: module docstring for why that one field is loop mechanics).
    result: dict
    energy: dict
    #: The system-level governor's action record (None = ungoverned):
    #: kill/migration logs carry exact timestamps, so this pins the
    #: governor's behaviour bit-for-bit across policies.
    governor_actions: dict | None = None


def run_policy(
    scenario: str,
    seed: int,
    channels: int,
    policy: SchedulingPolicy,
    instructions: int = 2500,
    warmup_ns: float = 2000.0,
    scale: float = 128.0,
) -> DifferentialRun:
    """Simulate (scenario, seed, channels) under ``policy``."""
    hcfg = HarnessConfig(
        scale=scale,
        instructions_per_thread=instructions,
        warmup_ns=warmup_ns,
        num_channels=channels,
        seed=1 + seed,
    )
    runner = Runner(hcfg, policy=policy, capture_commands=True)
    mechanism = scenario_mechanism(scenario, seed)
    outcome = runner.run_mix(
        scenario_mix(scenario, seed),
        mechanism,
        governor=scenario_governor(scenario, seed),
        **_MECHANISM_KWARGS.get(scenario, {}).get(mechanism, {}),
    )
    result = dataclasses.asdict(outcome.result)
    result.pop("events_processed")
    return DifferentialRun(
        policy=policy.name,
        commands=outcome.command_logs,
        result=result,
        energy=dataclasses.asdict(outcome.energy),
        governor_actions=(
            outcome.governor.actions_summary()
            if outcome.governor is not None
            else None
        ),
    )


def run_pair(
    scenario: str, seed: int, channels: int, **kwargs
) -> tuple[DifferentialRun, DifferentialRun]:
    """(fast, reference) runs of the same simulation, with the
    scenario's run-shape defaults applied (explicit kwargs win)."""
    merged = {**_SCENARIO_KWARGS.get(scenario, {}), **kwargs}
    fast = run_policy(scenario, seed, channels, FrFcfsPolicy(), **merged)
    ref = run_policy(scenario, seed, channels, ReferenceFrFcfsPolicy(), **merged)
    return fast, ref


def _first_divergence(fast_cmds: list, ref_cmds: list) -> str:
    """Human-readable context around the first differing command."""
    for index, (a, b) in enumerate(zip(fast_cmds, ref_cmds)):
        if a != b:
            lo = max(0, index - 3)
            context = "\n".join(
                f"  [{i}] fast={fast_cmds[i]}  ref={ref_cmds[i]}"
                for i in range(lo, min(index + 3, len(fast_cmds), len(ref_cmds)))
            )
            return f"first divergence at command {index}:\n{context}"
    return (
        f"streams agree for {min(len(fast_cmds), len(ref_cmds))} commands, "
        f"then lengths differ: fast={len(fast_cmds)} ref={len(ref_cmds)}"
    )


def assert_equivalent(fast: DifferentialRun, ref: DifferentialRun) -> None:
    """Fail loudly (with the first diverging command) on any difference."""
    assert len(fast.commands) == len(ref.commands)
    for channel, (fast_cmds, ref_cmds) in enumerate(zip(fast.commands, ref.commands)):
        assert fast_cmds == ref_cmds, (
            f"channel {channel} command streams diverge "
            f"({fast.policy} vs {ref.policy}): "
            + _first_divergence(fast_cmds, ref_cmds)
        )
    assert fast.result == ref.result
    assert fast.energy == ref.energy
    assert fast.governor_actions == ref.governor_actions
