"""Unit tests for the DRAM energy model."""

import pytest

from repro.dram.device import CommandCounts
from repro.energy.drampower import EnergyModel, EnergyParams
from repro.sim.stats import SimResult


def make_result(act=0, rd=0, wr=0, ref=0, vref=0, active_ns=0.0, elapsed_ns=1000.0):
    counts = CommandCounts(act=act, pre=act, rd=rd, wr=wr, ref=ref, vref=vref)
    return SimResult(
        mitigation="none",
        threads=[],
        elapsed_ns=elapsed_ns,
        counts=counts,
        active_time_ns=[active_ns],
        bitflips=[],
        refreshes=ref,
        victim_refreshes=vref,
        commands_issued=act + rd + wr + ref,
    )


def test_pure_background_energy():
    model = EnergyModel(EnergyParams(p_precharge_standby_w=0.5, p_active_standby_w=1.0))
    breakdown = model.energy_of(make_result(elapsed_ns=1000.0))
    # 1000 ns of precharge standby at 0.5 W = 0.5 uJ.
    assert breakdown.background_j == pytest.approx(0.5e-6)
    assert breakdown.total_j == breakdown.background_j


def test_command_energies_accumulate():
    params = EnergyParams(act_pre_nj=10.0, rd_nj=5.0, wr_nj=6.0, ref_nj=100.0, vref_nj=10.0)
    model = EnergyModel(params)
    breakdown = model.energy_of(make_result(act=3, rd=4, wr=2, ref=1, vref=5))
    assert breakdown.act_pre_j == pytest.approx(30e-9)
    assert breakdown.read_j == pytest.approx(20e-9)
    assert breakdown.write_j == pytest.approx(12e-9)
    assert breakdown.refresh_j == pytest.approx(100e-9)
    assert breakdown.victim_refresh_j == pytest.approx(50e-9)


def test_active_standby_costs_more():
    model = EnergyModel()
    idle = model.energy_of(make_result(active_ns=0.0))
    busy = model.energy_of(make_result(active_ns=1000.0))
    assert busy.background_j > idle.background_j


def test_total_includes_all_components():
    model = EnergyModel()
    breakdown = model.energy_of(make_result(act=10, rd=10, wr=5, ref=2, vref=1, active_ns=500.0))
    parts = (
        breakdown.act_pre_j
        + breakdown.read_j
        + breakdown.write_j
        + breakdown.refresh_j
        + breakdown.victim_refresh_j
        + breakdown.background_j
    )
    assert breakdown.total_j == pytest.approx(parts)
    assert breakdown.total_mj == pytest.approx(parts * 1e3)


def test_default_params_plausible():
    params = EnergyParams()
    # REF is an order of magnitude above a single ACT+PRE.
    assert params.ref_nj > 5 * params.act_pre_nj
    assert params.p_active_standby_w > params.p_precharge_standby_w
