"""Tests for the OS-level RHLI governor (Section 3.2.3 extension)."""

import pytest

from repro.core.os_policy import BlockHammerWithOsPolicy
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.validation import ConfigError
from repro.workloads.attacks import double_sided_attack
from repro.workloads.generator import build_benign_trace
from repro.workloads.profiles import profile_by_name


def build_system(small_spec, mechanism):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    attack = double_sided_attack(small_spec, mapping, victim_row=64, banks=[0, 1])
    benign = build_benign_trace(
        profile_by_name("429.mcf"), small_spec, mapping, seed=4, row_offset=1024
    )
    config = SystemConfig(spec=small_spec, disturbance=DisturbanceProfile(nrh=128))
    return System(config, [attack, benign], mechanism)


def test_governor_kills_attacker_not_benign(small_spec):
    mechanism = BlockHammerWithOsPolicy(kill_rhli=0.03, patience_epochs=1, review_interval_ns=10_000.0)
    system = build_system(small_spec, mechanism)
    result = system.run(instructions_per_thread=[None, 40_000])
    assert 0 in mechanism.killed_threads  # the attacker
    assert 1 not in mechanism.killed_threads  # the benign thread
    assert result.total_bitflips == 0


def test_killed_thread_stops_issuing(small_spec):
    mechanism = BlockHammerWithOsPolicy(kill_rhli=0.03, patience_epochs=1, review_interval_ns=10_000.0)
    system = build_system(small_spec, mechanism)
    system.run(instructions_per_thread=[None, 40_000])
    assert mechanism.max_inflight_total(0) == 0
    assert mechanism.max_inflight_total(1) is None


def test_patience_delays_the_kill(small_spec):
    patient = BlockHammerWithOsPolicy(kill_rhli=0.03, patience_epochs=500, review_interval_ns=10_000.0)
    system = build_system(small_spec, patient)
    system.run(instructions_per_thread=[None, 20_000])
    # Not enough reviews elapse for 500 strikes: the attacker survives
    # (still throttled by the ordinary quotas, so still no bit-flips).
    assert 0 not in patient.killed_threads


def test_os_policy_beats_plain_quota_on_attacker_acts(small_spec):
    from repro.core.blockhammer import BlockHammer

    plain = BlockHammer()
    plain_system = build_system(small_spec, plain)
    plain_result = plain_system.run(instructions_per_thread=[None, 40_000])

    governed = BlockHammerWithOsPolicy(kill_rhli=0.03, patience_epochs=1, review_interval_ns=10_000.0)
    governed_system = build_system(small_spec, governed)
    governed_result = governed_system.run(instructions_per_thread=[None, 40_000])

    plain_acts = plain_result.threads[0].mem.activations
    governed_acts = governed_result.threads[0].mem.activations
    assert governed_acts <= plain_acts


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigError):
        BlockHammerWithOsPolicy(kill_rhli=0.0)
    with pytest.raises(ConfigError):
        BlockHammerWithOsPolicy(patience_epochs=0)
