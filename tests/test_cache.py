"""Unit tests for the set-associative LLC model."""

import pytest

from repro.cpu.cache import SetAssocCache
from repro.utils.validation import ConfigError


def make_cache(sets=4, ways=2, line=64):
    return SetAssocCache(size_bytes=sets * ways * line, ways=ways, line_bytes=line)


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.access(0, False).hit
    assert cache.access(0, False).hit
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_different_bytes_hit():
    cache = make_cache()
    cache.access(0, False)
    assert cache.access(63, False).hit
    assert not cache.access(64, False).hit


def test_lru_eviction():
    cache = make_cache(sets=1, ways=2)
    cache.access(0, False)  # A
    cache.access(64, False)  # B
    cache.access(0, False)  # touch A (B becomes LRU)
    cache.access(128, False)  # evicts B
    assert cache.contains(0)
    assert not cache.contains(64)
    assert cache.contains(128)


def test_dirty_eviction_produces_writeback():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, True)  # dirty
    result = cache.access(64, False)
    assert result.writeback_address == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, False)
    result = cache.access(64, False)
    assert result.writeback_address is None


def test_write_hit_marks_dirty():
    cache = make_cache(sets=1, ways=1)
    cache.access(0, False)
    cache.access(0, True)  # dirty via hit
    result = cache.access(64, False)
    assert result.writeback_address == 0


def test_sets_isolate_addresses():
    cache = make_cache(sets=2, ways=1)
    cache.access(0, False)  # set 0
    cache.access(64, False)  # set 1
    assert cache.contains(0) and cache.contains(64)


def test_miss_rate():
    cache = make_cache()
    cache.access(0, False)
    cache.access(0, False)
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_invalid_geometry():
    with pytest.raises(ConfigError):
        SetAssocCache(size_bytes=1000, ways=3, line_bytes=64)
