"""End-to-end protection integration tests: the repository's headline
claims, verified on the full simulator.

These are the slowest tests in the suite (a few seconds each); they use
a heavily-scaled configuration and reduced instruction targets.
"""

import pytest

from repro.harness.runner import HarnessConfig, Runner
from repro.workloads.mixes import attack_mixes


@pytest.fixture(scope="module")
def hcfg():
    return HarnessConfig(scale=256, instructions_per_thread=40_000, warmup_ns=30_000.0)


@pytest.fixture(scope="module")
def runner(hcfg):
    return Runner(hcfg)


@pytest.fixture(scope="module")
def mix():
    return attack_mixes(1)[0]


@pytest.fixture(scope="module")
def baseline(runner, mix):
    return runner.run_mix(mix, "none")


@pytest.fixture(scope="module")
def blockhammer(runner, mix):
    return runner.run_mix(mix, "blockhammer")


def test_unprotected_attack_flips_bits(baseline):
    assert baseline.bitflips > 0


def test_blockhammer_prevents_all_flips(blockhammer):
    assert blockhammer.bitflips == 0


def test_graphene_prevents_flips_with_refreshes(runner, mix):
    outcome = runner.run_mix(mix, "graphene")
    assert outcome.bitflips == 0
    assert outcome.result.victim_refreshes > 0


def test_blockhammer_improves_benign_performance(baseline, blockhammer):
    """The paper's headline: benign threads run *faster* under attack
    with BlockHammer than with no mitigation at all."""
    base_ipc = sum(t.ipc for t in baseline.result.threads[1:])
    bh_ipc = sum(t.ipc for t in blockhammer.result.threads[1:])
    assert bh_ipc > base_ipc * 1.05


def test_blockhammer_reduces_dram_energy(baseline, blockhammer):
    assert blockhammer.energy.total_j < baseline.energy.total_j


def test_blockhammer_throttles_attacker(baseline, blockhammer):
    base_acts = baseline.result.threads[0].mem.activations
    bh_acts = blockhammer.result.threads[0].mem.activations
    assert bh_acts < base_acts / 2


def test_attacker_identified_by_rhli(runner, mix):
    outcome = runner.run_mix(mix, "blockhammer-observe")
    mechanism = outcome.mechanism
    attacker = mechanism.thread_max_rhli(0)
    benign_max = max(mechanism.thread_max_rhli(t) for t in range(1, 8))
    assert attacker > 1.0  # paper: >> 1 distinguishes an attack
    assert benign_max == 0.0  # paper: benign threads stay at exactly 0


def test_naive_throttle_also_protects_but_needs_per_row_state(runner, mix):
    outcome = runner.run_mix(mix, "naive-throttle")
    assert outcome.bitflips == 0
