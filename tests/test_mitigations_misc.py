"""Unit tests for increased refresh rate, naive throttling, and the
mechanism registry."""

import pytest

from repro.dram.spec import DDR4_2400
from repro.mitigations.base import NoMitigation
from repro.mitigations.naive_throttle import NaiveThrottling
from repro.mitigations.refresh_rate import IncreasedRefreshRate
from repro.mitigations.registry import (
    PAPER_MECHANISMS,
    available_mitigations,
    build_mitigation,
)
from repro.utils.validation import ConfigError
from tests.test_mitigations_reactive import make_context


def test_refresh_rate_multiplier_from_nrh():
    mechanism = IncreasedRefreshRate()
    mechanism.attach(make_context(nrh=32768))
    # (tREFW / tRC) / NRH_eff = 1.38M / 16K -> 85x.
    assert mechanism.rate_multiplier == 85
    assert mechanism.refresh_interval_scale() < 1.0


def test_refresh_rate_interval_floor():
    mechanism = IncreasedRefreshRate()
    mechanism.attach(make_context(nrh=1024))
    interval = DDR4_2400.tREFI * mechanism.refresh_interval_scale()
    assert interval >= DDR4_2400.tRFC * 1.25 - 1e-9


def test_refresh_rate_override():
    mechanism = IncreasedRefreshRate(rate_multiplier=2)
    mechanism.attach(make_context())
    assert mechanism.refresh_interval_scale() == pytest.approx(0.5)


def test_naive_throttle_blocks_at_threshold():
    mechanism = NaiveThrottling()
    mechanism.attach(make_context(nrh=64))
    for _ in range(32):  # NRH_eff = 32
        mechanism.on_activate(0, 0, 9, 0, 0.0)
    allowed = mechanism.act_allowed_at(0, 0, 9, 0, 100.0)
    assert allowed == mechanism._window_end  # blocked until window end
    assert mechanism.act_allowed_at(0, 0, 10, 0, 100.0) == 100.0


def test_naive_throttle_window_rollover_unblocks():
    mechanism = NaiveThrottling()
    mechanism.attach(make_context(nrh=64))
    for _ in range(32):
        mechanism.on_activate(0, 0, 9, 0, 0.0)
    mechanism.on_time_advance(DDR4_2400.tREFW + 1.0)
    t = DDR4_2400.tREFW + 2.0
    assert mechanism.act_allowed_at(0, 0, 9, 0, t) == t


def test_naive_static_delay_spaces_activations():
    mechanism = NaiveThrottling(static_delay=True)
    mechanism.attach(make_context(nrh=64))
    mechanism.on_activate(0, 0, 9, 0, 0.0)
    gap = DDR4_2400.tREFW / 32
    assert mechanism.act_allowed_at(0, 0, 9, 0, 1.0) == pytest.approx(gap)


def test_registry_builds_all_mechanisms():
    for name in available_mitigations():
        mechanism = build_mitigation(name)
        mechanism.attach(make_context())
        assert mechanism.act_allowed_at(0, 0, 1, 0, 0.0) >= 0.0


def test_registry_rejects_unknown():
    with pytest.raises(ConfigError):
        build_mitigation("definitely-not-a-mechanism")


def test_paper_mechanism_list():
    assert PAPER_MECHANISMS == [
        "para", "prohit", "mrloc", "cbt", "twice", "graphene", "blockhammer",
    ]


def test_blockhammer_observe_factory():
    mechanism = build_mitigation("blockhammer-observe")
    assert mechanism.observe_only


def test_no_mitigation_is_inert():
    mechanism = NoMitigation()
    mechanism.attach(make_context())
    assert mechanism.act_allowed_at(0, 0, 1, 0, 5.0) == 5.0
    assert mechanism.max_inflight(0, 0, 0) is None
    assert mechanism.drain_victim_refreshes() == []
    assert mechanism.refresh_interval_scale() == 1.0


def test_table6_matrix_blockhammer_uniquely_complete():
    """Table 6: among the paper's mechanisms only BlockHammer satisfies
    all four properties."""
    names = PAPER_MECHANISMS + ["refresh-rate", "naive-throttle"]
    full = []
    for name in names:
        m = build_mitigation(name)
        if (
            m.comprehensive_protection
            and m.commodity_compatible
            and m.scales_with_vulnerability
            and m.deterministic_protection
        ):
            full.append(name)
    assert full == ["blockhammer"]
