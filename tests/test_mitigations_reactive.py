"""Unit tests for PARA, PRoHIT, and MRLoc (probabilistic reactive
mechanisms)."""

import pytest

from repro.dram.spec import DDR4_2400
from repro.mitigations.base import MitigationContext
from repro.mitigations.mrloc import MrLoc
from repro.mitigations.para import Para
from repro.mitigations.prohit import ProHit
from repro.utils.rng import DeterministicRng


def make_context(nrh=32768, spec=None):
    spec = spec or DDR4_2400

    def adjacency(rank, bank, row, distance):
        out = []
        for k in range(1, distance + 1):
            if row - k >= 0:
                out.append(row - k)
            if row + k < spec.rows_per_bank:
                out.append(row + k)
        return out

    return MitigationContext(
        spec=spec,
        num_threads=2,
        rng=DeterministicRng(5),
        adjacency=adjacency,
        nrh=nrh,
        blast_radius=1,
    )


# ----------------------------------------------------------------------
# PARA
# ----------------------------------------------------------------------
def test_para_probability_tuning():
    para = Para(failure_target=1e-15)
    para.attach(make_context(nrh=32768))
    # p = 2 (1 - 1e-15^(1/16384)) ~ 0.0042 for NRH_eff = 16K.
    assert para.probability == pytest.approx(0.00421, rel=0.02)


def test_para_probability_grows_as_nrh_shrinks():
    low, high = Para(), Para()
    low.attach(make_context(nrh=1024))
    high.attach(make_context(nrh=32768))
    assert low.probability > high.probability


def test_para_probability_override():
    para = Para(probability=0.125)
    para.attach(make_context())
    assert para.probability == 0.125


def test_para_injects_adjacent_refreshes_at_expected_rate():
    para = Para(probability=0.5)
    para.attach(make_context())
    for _ in range(2000):
        para.on_activate(0, 0, 100, 0, 0.0)
    vrefs = para.drain_victim_refreshes()
    assert 800 < len(vrefs) < 1200
    assert all(row in (99, 101) for (_, _, row) in vrefs)


def test_para_escape_probability_math():
    """The analytical protection guarantee: with tuned p, the chance an
    aggressor escapes NRH_eff activations is below the target."""
    target = 1e-15
    nrh_eff = 16384
    p = Para.tuned_probability(nrh_eff, target)
    escape = (1.0 - p / 2.0) ** nrh_eff
    assert escape <= target * 1.001


def test_para_is_stateless_probabilistic():
    para = Para()
    assert not para.deterministic_protection
    assert not para.commodity_compatible  # needs adjacency knowledge


# ----------------------------------------------------------------------
# PRoHIT
# ----------------------------------------------------------------------
def test_prohit_promotes_and_refreshes_hot_rows():
    prohit = ProHit(insert_probability=1.0)
    prohit.attach(make_context())
    for _ in range(10):
        prohit.on_activate(0, 0, 500, 0, 0.0)
    # Advance past one tREFI tick: hottest entry's neighbors refreshed.
    prohit.on_time_advance(DDR4_2400.tREFI + 1.0)
    vrefs = prohit.drain_victim_refreshes()
    assert (0, 0, 499) in vrefs and (0, 0, 501) in vrefs


def test_prohit_insert_probability_filters():
    prohit = ProHit(insert_probability=0.0)
    prohit.attach(make_context())
    for _ in range(100):
        prohit.on_activate(0, 0, 500, 0, 0.0)
    prohit.on_time_advance(DDR4_2400.tREFI + 1.0)
    assert prohit.drain_victim_refreshes() == []


def test_prohit_tables_bounded():
    prohit = ProHit(hot_entries=4, cold_entries=16, insert_probability=1.0)
    prohit.attach(make_context())
    for row in range(200):
        prohit.on_activate(0, 0, row, 0, 0.0)
        prohit.on_activate(0, 0, row, 0, 0.0)  # promote
    hot = prohit._hot[(0, 0)]
    cold = prohit._cold[(0, 0)]
    assert len(hot) <= 4
    assert len(cold) <= 16


# ----------------------------------------------------------------------
# MRLoc
# ----------------------------------------------------------------------
def test_mrloc_boosts_probability_on_locality():
    """Hammering one aggressor (high victim locality) triggers far more
    refreshes under the locality boost than without it."""

    def refreshes_with_boost(boost):
        mrloc = MrLoc(base_probability=0.02, locality_boost=boost, queue_depth=16)
        mrloc.attach(make_context())
        for _ in range(3000):
            mrloc.on_activate(0, 0, 100, 0, 0.0)
        return len(mrloc.drain_victim_refreshes())

    assert refreshes_with_boost(8.0) > 2.0 * refreshes_with_boost(1.0)


def test_mrloc_cold_victims_use_base_probability():
    mrloc = MrLoc(base_probability=0.0, locality_boost=8.0)
    mrloc.attach(make_context())
    for row in range(0, 4000, 2):
        mrloc.on_activate(0, 0, row + 1, 0, 0.0)
    assert mrloc.drain_victim_refreshes() == []


def test_mrloc_base_probability_derived_from_para():
    mrloc = MrLoc()
    mrloc.attach(make_context(nrh=32768))
    para_p = Para.tuned_probability(16384)
    assert mrloc.probability == pytest.approx(para_p / 2.0, rel=1e-6)
