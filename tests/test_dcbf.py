"""Unit and property tests for the dual counting Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dcbf import DualCountingBloomFilter
from repro.utils.rng import DeterministicRng


def make_dcbf(epoch=100.0, size=256, track_exact=False):
    return DualCountingBloomFilter(
        size=size, epoch_ns=epoch, rng=DeterministicRng(11), track_exact=track_exact
    )


def test_insert_counts_in_active(rng):
    dcbf = make_dcbf()
    for _ in range(5):
        dcbf.insert(42)
    assert dcbf.count(42) >= 5


def test_rotation_swaps_and_clears():
    dcbf = make_dcbf(epoch=100.0)
    for _ in range(5):
        dcbf.insert(42)
    assert dcbf.maybe_rotate(100.0) == 1
    # The passive filter (now active) still holds the 5 insertions: the
    # rolling window never forgets the last epoch.
    assert dcbf.count(42) >= 5
    assert dcbf.maybe_rotate(200.0) == 1
    # Two rotations with no new insertions: the count finally drops.
    assert dcbf.count(42) == 0


def test_no_rotation_before_epoch():
    dcbf = make_dcbf(epoch=100.0)
    assert dcbf.maybe_rotate(99.9) == 0
    assert dcbf.epoch_index == 0


def test_multiple_missed_epochs_catch_up():
    dcbf = make_dcbf(epoch=100.0)
    assert dcbf.maybe_rotate(350.0) == 3
    assert dcbf.epoch_index == 3
    assert dcbf.next_clear_at() == pytest.approx(400.0)


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_no_false_negative_within_epoch(count):
    """A row inserted N times within the current epoch always tests >= N
    in the active filter — the property that makes blacklisting sound."""
    dcbf = make_dcbf(epoch=1000.0)
    dcbf.maybe_rotate(500.0)  # mid-stream epoch boundary
    for _ in range(count):
        dcbf.insert(7)
    assert dcbf.count(7) >= count


def test_rolling_window_spans_two_epochs():
    dcbf = make_dcbf(epoch=100.0)
    for _ in range(3):
        dcbf.insert(5)  # epoch 0
    dcbf.maybe_rotate(100.0)
    for _ in range(4):
        dcbf.insert(5)  # epoch 1
    # Active filter (cleared at t=0... lived through epochs 0 and 1).
    assert dcbf.count(5) >= 7


def test_exact_shadow_tracks_truth():
    dcbf = make_dcbf(track_exact=True)
    for _ in range(6):
        dcbf.insert(9)
    assert dcbf.exact_count(9) == 6
    assert dcbf.count(9) >= dcbf.exact_count(9)


def test_exact_shadow_cleared_on_rotation():
    dcbf = make_dcbf(epoch=100.0, track_exact=True)
    for _ in range(6):
        dcbf.insert(9)
    dcbf.maybe_rotate(100.0)
    dcbf.maybe_rotate(200.0)
    assert dcbf.exact_count(9) == 0


def test_filters_reseed_independently():
    dcbf = make_dcbf(epoch=100.0)
    seeds_a = dcbf.filters[0].hashes.indices(1)
    seeds_b = dcbf.filters[1].hashes.indices(1)
    dcbf.maybe_rotate(100.0)  # clears filter 0
    assert dcbf.filters[0].hashes.indices(1) != seeds_a
    assert dcbf.filters[1].hashes.indices(1) == seeds_b
