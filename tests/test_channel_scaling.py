"""The channel-scaling study and per-channel attribution.

Four load-bearing properties:

1. **Single-channel bit-identity** — the ``channel_scaling`` driver's
   ``channels=1`` interleaved rows are the exact ``fig5_multicore``
   rows pinned by ``tests/golden_fig5.json``.
2. **Attribution consistency** — per-channel attribution rows aggregate
   back to the whole-system values: counters (blocked injections,
   blacklist/delay events) sum across channels, RHLI maxes.
3. **Localization** — a channel-pinned attacker accrues RHLI and
   blacklist events only on its own channel.
4. **Cache-backed sweeps** — a warm re-run of the {1, 2, 4} sweep
   performs zero simulations (``parallel.job_executions``) and returns
   identical rows (the perf_smoke entry for ``scripts/perf_smoke.sh``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.harness.experiments import channel_scaling
from repro.harness.parallel import mix_job, mix_key, run_jobs
from repro.harness.runner import HarnessConfig
from repro.workloads.mixes import ATTACKER_THREAD, attack_mixes

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_fig5.json").read_text()
)


@pytest.fixture(scope="module")
def golden_hcfg() -> HarnessConfig:
    cfg = GOLDEN["config"]
    return HarnessConfig(
        scale=cfg["scale"],
        paper_nrh=cfg["paper_nrh"],
        instructions_per_thread=cfg["instructions_per_thread"],
        warmup_ns=cfg["warmup_ns"],
    )


@pytest.fixture(scope="module")
def tiny_hcfg() -> HarnessConfig:
    """Sweep-sized configuration (simulations in tens of milliseconds)."""
    return HarnessConfig(scale=512.0, instructions_per_thread=2_000, warmup_ns=2_000.0)


@pytest.fixture(scope="module")
def rhli_hcfg() -> HarnessConfig:
    """2-channel configuration long enough for the attacker to be
    blacklisted, so RHLI/blacklist attribution is nonzero."""
    return HarnessConfig(
        scale=128.0,
        instructions_per_thread=4_000,
        warmup_ns=50_000.0,
        num_channels=2,
    )


# ----------------------------------------------------------------------
# 1. Single-channel sweep point == golden fig5 rows, bit-exact.
# ----------------------------------------------------------------------
def test_single_channel_point_bit_identical_to_golden_fig5(golden_hcfg):
    data = channel_scaling(
        golden_hcfg,
        channel_counts=(1,),
        num_mixes=GOLDEN["num_mixes"],
        mechanisms=GOLDEN["mechanisms"],
        workers=1,
    )
    got = [
        {
            "mix": e["row"].mix,
            "scenario": e["row"].scenario,
            "mechanism": e["row"].mechanism,
            "metrics": dataclasses.asdict(e["row"].metrics),
            "norm": dataclasses.asdict(e["row"].norm),
            "norm_energy": e["row"].norm_energy,
            "bitflips": e["row"].bitflips,
            "victim_refreshes": e["row"].victim_refreshes,
        }
        for e in data["mix_rows"]
    ]
    assert all(e["channels"] == 1 and e["layout"] == "interleaved" for e in data["mix_rows"])
    assert got == GOLDEN["rows"]
    # Every mechanism row carries one attribution row per channel.
    assert len(data["attribution"]) == 2 * len(GOLDEN["mechanisms"]) * GOLDEN["num_mixes"]


# ----------------------------------------------------------------------
# 2. Attribution rows aggregate back to the whole-system values.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def attributed(rhli_hcfg):
    """One 2-channel attack mix in observe mode (RHLI-rich) with every
    attribution-relevant extractor requested."""
    mix = attack_mixes(1)[0]
    job = mix_job(
        rhli_hcfg,
        mix,
        "blockhammer-observe",
        extract=("channel_attribution", "thread_rhli", "delay_stats"),
    )
    results = run_jobs([job], workers=1)
    return mix, results[mix_key(rhli_hcfg, mix, "blockhammer-observe")]


def test_per_channel_rhli_maxes_to_aggregate(attributed):
    mix, outcome = attributed
    rows = outcome.extras["channel_attribution"]
    aggregate = outcome.extras["thread_rhli"]
    assert len(rows) == 2
    for thread in range(len(mix.app_names)):
        assert aggregate[thread] == max(r["thread_rhli"][thread] for r in rows)
    # The observe-mode attacker accrued RHLI on both channels (the
    # channel-aware attack hammers every shard).
    assert all(r["thread_rhli"][ATTACKER_THREAD] > 0 for r in rows)


def test_per_channel_counters_sum_to_aggregate(attributed):
    _, outcome = attributed
    res = outcome.result
    # Controller-side throttle events: the per-channel ChannelResult
    # rows sum to the per-thread aggregates.
    total_blocked = sum(t.mem.blocked_injections for t in res.threads)
    assert sum(c.blocked_injections for c in res.channels) == total_blocked
    for channel in range(2):
        per_thread = sum(
            t.mem_per_channel[channel].blocked_injections for t in res.threads
        )
        assert res.channels[channel].blocked_injections == per_thread
    # Mechanism-side counters: per-channel blacklist/delay events sum to
    # the channel-merged delay statistics (counters sum, RHLI maxes).
    rows = outcome.extras["channel_attribution"]
    merged = outcome.extras["delay_stats"]
    assert sum(r["total_acts"] for r in rows) == merged.total_acts
    assert sum(r["delayed_acts"] for r in rows) == merged.delayed_acts
    assert sum(r["false_positive_acts"] for r in rows) == merged.false_positive_acts
    assert sum(r["blacklisted_acts"] for r in rows) > 0


def test_single_channel_attribution_row_is_the_aggregate(tiny_hcfg):
    mix = attack_mixes(1)[0]
    job = mix_job(
        tiny_hcfg, mix, "blockhammer", extract=("channel_attribution", "thread_rhli")
    )
    outcome = run_jobs([job], workers=1)[mix_key(tiny_hcfg, mix, "blockhammer")]
    rows = outcome.extras["channel_attribution"]
    assert len(rows) == 1
    assert rows[0]["thread_rhli"] == outcome.extras["thread_rhli"]
    assert rows[0]["channel"] == 0
    assert (
        outcome.result.channels[0].blocked_injections
        == sum(t.mem.blocked_injections for t in outcome.result.threads)
    )


def test_attribution_tolerates_mechanisms_without_rhli(tiny_hcfg):
    """Reactive baselines have no RHLI tracking: attribution rows must
    degrade to None/zero, not raise."""
    mix = attack_mixes(1)[0]
    job = mix_job(tiny_hcfg, mix, "graphene", extract=("channel_attribution",))
    outcome = run_jobs([job], workers=1)[mix_key(tiny_hcfg, mix, "graphene")]
    rows = outcome.extras["channel_attribution"]
    assert len(rows) == 1
    assert rows[0]["thread_rhli"] is None
    assert rows[0]["blacklisted_acts"] == 0
    assert rows[0]["total_acts"] == 0


# ----------------------------------------------------------------------
# 3. A channel-pinned attacker accrues RHLI only on its channel.
# ----------------------------------------------------------------------
def test_pinned_attacker_accrues_rhli_only_on_its_channel(rhli_hcfg):
    mix = attack_mixes(1)[0].pinned()
    assert mix.pinned_channel(ATTACKER_THREAD) == 0
    job = mix_job(
        rhli_hcfg, mix, "blockhammer-observe", extract=("channel_attribution",)
    )
    outcome = run_jobs([job], workers=1)[
        mix_key(rhli_hcfg, mix, "blockhammer-observe")
    ]
    rows = outcome.extras["channel_attribution"]
    assert len(rows) == 2
    pinned_row = rows[0]
    other_row = rows[1]
    assert pinned_row["thread_rhli"][ATTACKER_THREAD] > 0
    assert other_row["thread_rhli"][ATTACKER_THREAD] == 0.0
    assert pinned_row["blacklisted_acts"] > 0
    assert other_row["blacklisted_acts"] == 0
    # The attacker's memory traffic itself stayed on channel 0.
    attacker = outcome.result.threads[ATTACKER_THREAD]
    assert attacker.mem_per_channel[0].activations > 0
    assert attacker.mem_per_channel[1].activations == 0


def test_pinned_layout_skipped_at_single_channel_point(tiny_hcfg):
    """On one channel every pinned slot mods to channel 0 and the traces
    degenerate to the interleaved ones; the driver must not re-simulate
    that duplicate layout."""
    data = channel_scaling(
        tiny_hcfg,
        channel_counts=(1, 2),
        num_mixes=1,
        mechanisms=["blockhammer"],
        workers=1,
        include_pinned=True,
    )
    points = {(s["channels"], s["layout"]) for s in data["summary"]}
    assert (1, "pinned") not in points
    assert {(1, "interleaved"), (2, "interleaved"), (2, "pinned")} <= points
    assert not any(
        a["channels"] == 1 and a["layout"] == "pinned" for a in data["attribution"]
    )


# ----------------------------------------------------------------------
# 4. The {1, 2, 4} sweep through the persistent cache: warm re-runs do
#    zero simulations (perf smoke, wired into scripts/perf_smoke.sh).
# ----------------------------------------------------------------------
@pytest.mark.perf_smoke
def test_perf_smoke_channel_sweep_warm_cache_zero_sims(tmp_path, tiny_hcfg):
    cache = ResultCache(tmp_path)
    kwargs = dict(
        channel_counts=(1, 2, 4),
        num_mixes=1,
        mechanisms=["blockhammer"],
        workers=1,
        cache=cache,
    )
    before = parallel.job_executions()
    cold = channel_scaling(tiny_hcfg, **kwargs)
    cold_sims = parallel.job_executions() - before
    assert cold_sims > 0
    assert cache.stores == cold_sims

    before = parallel.job_executions()
    warm = channel_scaling(tiny_hcfg, **kwargs)
    assert parallel.job_executions() - before == 0  # fully cache-served
    assert warm == cold

    # Per-channel attribution rows exist for every sweep point: one row
    # per (mix, mechanism) per channel.
    for channels in (1, 2, 4):
        rows = [a for a in cold["attribution"] if a["channels"] == channels]
        assert len(rows) == 2 * channels  # benign + attack mix, 1 mechanism
        assert sorted({r["channel"] for r in rows}) == list(range(channels))
    # Summary covers every (channels, scenario) point.
    points = {(s["channels"], s["scenario"]) for s in cold["summary"]}
    assert points == {(c, s) for c in (1, 2, 4) for s in ("no-attack", "attack")}
