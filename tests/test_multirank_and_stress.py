"""Multi-rank configurations and stress/failure-injection tests."""

from dataclasses import replace

import pytest

from repro.core.blockhammer import BlockHammer
from repro.cpu.trace import ListTrace, TraceRecord
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.spec import DDR4_2400
from repro.mem.controller import ControllerConfig
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.rng import DeterministicRng
from repro.workloads.attacks import double_sided_attack


@pytest.fixture
def two_rank_spec():
    return replace(
        DDR4_2400.scaled(64), ranks=2, banks_per_rank=4, rows_per_bank=4096
    )


def _random_trace(spec, seed=3, count=300):
    rng = DeterministicRng(seed)
    records = [
        TraceRecord(
            gap=rng.randint(5, 40),
            address=rng.randint(0, spec.capacity_bytes - 64),
            is_write=rng.uniform() < 0.2,
        )
        for _ in range(count)
    ]
    return ListTrace(records)


def test_two_rank_system_runs(two_rank_spec):
    config = SystemConfig(spec=two_rank_spec)
    system = System(config, [_random_trace(two_rank_spec)])
    result = system.run(instructions_per_thread=10_000)
    assert result.threads[0].instructions >= 10_000
    # Both ranks see refreshes over a long enough run.
    assert result.counts.act > 0


def test_two_rank_attack_blocked(two_rank_spec):
    mapping = AddressMapping(two_rank_spec, MappingScheme.MOP)
    trace = double_sided_attack(two_rank_spec, mapping, victim_row=64, banks=[0, 1])
    config = SystemConfig(
        spec=two_rank_spec, disturbance=DisturbanceProfile(nrh=128)
    )
    result = System(config, [trace], BlockHammer()).run(instructions_per_thread=30_000)
    assert result.total_bitflips == 0


def test_tiny_queues_still_make_progress(small_spec):
    config = SystemConfig(
        spec=small_spec,
        controller=ControllerConfig(
            read_queue_depth=2,
            write_queue_depth=2,
            write_drain_high=2,
            write_drain_low=1,
        ),
    )
    system = System(config, [_random_trace(small_spec)])
    result = system.run(instructions_per_thread=5_000)
    assert result.threads[0].instructions >= 5_000


def test_write_heavy_workload_drains(small_spec):
    rng = DeterministicRng(9)
    records = [
        TraceRecord(gap=2, address=rng.randint(0, 1 << 22), is_write=True)
        for _ in range(500)
    ]
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(records)])
    result = system.run(instructions_per_thread=3_000)
    assert result.counts.wr > 0
    assert result.threads[0].instructions >= 3_000


def test_eight_threads_heavy_contention_completes(small_spec):
    config = SystemConfig(spec=small_spec)
    traces = [_random_trace(small_spec, seed=i, count=200) for i in range(8)]
    system = System(config, traces)
    result = system.run(instructions_per_thread=4_000)
    assert all(t.instructions >= 4_000 for t in result.threads)


def test_refresh_storm_under_increased_rate(small_spec):
    """The increased-refresh-rate mechanism floods REFs yet the system
    still progresses (the interval floor prevents livelock)."""
    from repro.mitigations.refresh_rate import IncreasedRefreshRate

    config = SystemConfig(spec=small_spec, disturbance=DisturbanceProfile(nrh=64))
    system = System(config, [_random_trace(small_spec)], IncreasedRefreshRate())
    result = system.run(instructions_per_thread=5_000)
    assert result.threads[0].instructions >= 5_000
    assert result.refreshes > 0


def test_zero_memory_thread(small_spec):
    """A compute-only thread (one access, huge gaps) finishes cleanly."""
    records = [TraceRecord(gap=1000, address=0)]
    config = SystemConfig(spec=small_spec)
    system = System(config, [ListTrace(records)])
    result = system.run(instructions_per_thread=50_000)
    assert result.threads[0].instructions >= 50_000
