"""The ossweep experiment driver and CLI (OS governor policy study).

Covers the acceptance properties of the governor sweep: the table
spans ≥ 3 policies × ≥ 2 mechanisms over an attack mix with benign-
slowdown and attacker-RHLI columns, rows assemble identically from a
warm cache with **zero** simulations (the perf_smoke entry for
``scripts/perf_smoke.sh``), and governed jobs are keyed apart from
ungoverned ones (a governor must never poison the ungoverned cache).
"""

from __future__ import annotations

import pytest

from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.harness.cli import main
from repro.harness.experiments import (
    OS_SWEEP_POLICIES,
    os_policy_sweep,
    os_sweep_jobs,
)
from repro.harness.parallel import mix_key
from repro.harness.reporting import format_os_policy
from repro.harness.runner import HarnessConfig
from repro.os.spec import GovernorSpec
from repro.utils.validation import ConfigError
from repro.workloads.mixes import attack_mixes


@pytest.fixture(scope="module")
def tiny_hcfg() -> HarnessConfig:
    """Sweep-sized 2-channel configuration — two channels so the
    migrate policy has a quarantine target, and enough warmup for the
    attacker to cross the governor thresholds (reviews run during
    warmup, like a real OS would keep polling)."""
    return HarnessConfig(
        scale=512.0,
        instructions_per_thread=2_000,
        warmup_ns=30_000.0,
        num_channels=2,
    )


def test_governed_jobs_keyed_apart(tiny_hcfg):
    mix = attack_mixes(1)[0]
    spec = OS_SWEEP_POLICIES["kill"]
    governed = mix_key(tiny_hcfg, mix, "blockhammer", governor=spec)
    ungoverned = mix_key(tiny_hcfg, mix, "blockhammer", governor=None)
    assert governed != ungoverned
    # The spec is hashable and repr-stable (cache key requirements).
    assert hash(spec) == hash(GovernorSpec(**{
        field: getattr(spec, field) for field in spec.__dataclass_fields__
    }))


def test_os_sweep_jobs_always_declare_the_baseline(tiny_hcfg):
    mixes = attack_mixes(1)
    jobs = os_sweep_jobs(tiny_hcfg, mixes, ["blockhammer"], ["kill"])
    governors = {job.governor for job in jobs}
    assert None in governors  # the slowdown-normalization control
    assert OS_SWEEP_POLICIES["kill"] in governors


def test_os_policy_sweep_rejects_unknown_policy(tiny_hcfg):
    with pytest.raises(ConfigError):
        os_policy_sweep(tiny_hcfg, policies=["reboot"])


@pytest.mark.perf_smoke
def test_perf_smoke_ossweep_warm_cache_zero_sims(tmp_path, tiny_hcfg):
    cache = ResultCache(tmp_path / "cache")
    cold = os_policy_sweep(tiny_hcfg, num_mixes=1, workers=1, cache=cache)

    # Acceptance shape: >= 3 policies x >= 2 mechanisms on an attack
    # mix, with benign-slowdown and attacker-RHLI columns present.
    assert len({row["policy"] for row in cold}) >= 4  # none + 3 policies
    assert len({row["mechanism"] for row in cold}) >= 2
    for row in cold:
        assert "benign_slowdown_mean" in row and "attacker_rhli" in row
    # The no-governor control normalizes to itself.
    for row in cold:
        if row["policy"] == "none":
            assert row["benign_slowdown_mean"] == pytest.approx(1.0)
            assert row["governor_epochs"] == 0
    # At least one policy actually acted on the attack mix.
    assert any(
        row["kills"] + row["migrations"] + row["quota_updates"] > 0 for row in cold
    )
    # The table renders with the required columns.
    table = format_os_policy(cold)
    assert "ben slow" in table and "atk RHLI" in table

    # Warm re-run: identical rows, zero simulations.
    before = parallel.job_executions()
    warm = os_policy_sweep(tiny_hcfg, num_mixes=1, workers=1, cache=cache)
    assert parallel.job_executions() - before == 0
    assert warm == cold


def test_cli_ossweep_smoke(tmp_path, capsys):
    code = main(
        [
            "ossweep",
            "--scale",
            "512",
            "--instructions",
            "1500",
            "--warmup-us",
            "2",
            "--mixes",
            "1",
            "--mechanisms",
            "blockhammer-observe",
            "--policies",
            "kill",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "policy" in out and "kill" in out and "atk RHLI" in out
