"""Unit tests for the refresh manager."""

import pytest

from repro.dram.spec import DDR4_2400
from repro.mem.refresh import RefreshManager
from repro.utils.validation import ConfigError


def test_first_deadline_is_one_interval():
    manager = RefreshManager(DDR4_2400)
    assert not manager.pending(0, DDR4_2400.tREFI - 1.0)
    assert manager.pending(0, DDR4_2400.tREFI)


def test_deadline_advances_by_fixed_interval():
    manager = RefreshManager(DDR4_2400)
    due = manager.next_due[0]
    manager.on_ref_issued(0, due + 5.0)
    assert manager.next_due[0] == pytest.approx(due + DDR4_2400.tREFI)
    assert manager.refreshes_issued[0] == 1


def test_deadline_catchup_bounded():
    manager = RefreshManager(DDR4_2400)
    far_future = 100 * DDR4_2400.tREFI
    manager.on_ref_issued(0, far_future)
    # The deadline never falls unrecoverably behind the clock.
    assert manager.next_due[0] >= far_future - 8 * DDR4_2400.tREFI


def test_interval_scale_shrinks_interval():
    manager = RefreshManager(DDR4_2400, interval_scale=0.5)
    assert manager.interval == pytest.approx(DDR4_2400.tREFI / 2)


def test_invalid_scale_rejected():
    with pytest.raises(ConfigError):
        RefreshManager(DDR4_2400, interval_scale=0.0)


def test_multi_rank_deadlines_staggered():
    from dataclasses import replace

    spec = replace(DDR4_2400, ranks=2)
    manager = RefreshManager(spec)
    assert manager.next_due[0] != manager.next_due[1]
    assert manager.earliest_due() == min(manager.next_due)
