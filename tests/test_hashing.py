"""Unit tests for the hash families."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hashing import H3HashFamily, MixHashFamily
from repro.utils.rng import DeterministicRng
from repro.utils.validation import ConfigError


@pytest.fixture(params=[MixHashFamily, H3HashFamily])
def family(request):
    return request.param(k=4, size=1024, rng=DeterministicRng(5))


def test_indices_in_range(family):
    for key in range(0, 70000, 997):
        for index in family.indices(key):
            assert 0 <= index < family.size


def test_indices_deterministic(family):
    assert family.indices(12345) == family.indices(12345)


def test_reseed_changes_mapping(family):
    before = family.indices(12345)
    family.reseed()
    after = family.indices(12345)
    assert before != after  # astronomically unlikely to collide on 4 indices


def test_k_functions_returned(family):
    assert len(family.indices(7)) == 4


def test_distribution_roughly_uniform(family):
    counts = [0] * family.size
    for key in range(4000):
        for index in family.indices(key):
            counts[index] += 1
    # 16000 insertions over 1024 buckets: mean ~15.6; no bucket should
    # be pathologically hot.
    assert max(counts) < 60


def test_h3_is_linear_over_xor():
    family = H3HashFamily(k=1, size=1 << 16, rng=DeterministicRng(1), key_bits=16)
    # H3 over GF(2): h(a ^ b) == h(a) ^ h(b) when size is a power of two.
    a, b = 0x1234, 0x0F0F
    ha = family.indices(a)[0]
    hb = family.indices(b)[0]
    hab = family.indices(a ^ b)[0]
    assert hab == ha ^ hb


def test_h3_rejects_wide_keys():
    family = H3HashFamily(k=1, size=64, rng=DeterministicRng(1), key_bits=8)
    with pytest.raises(ConfigError):
        family.indices(256)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_mix_family_total(key):
    family = MixHashFamily(k=2, size=333, rng=DeterministicRng(2))
    for index in family.indices(key):
        assert 0 <= index < 333


def test_invalid_construction():
    with pytest.raises(ConfigError):
        MixHashFamily(k=0, size=16, rng=DeterministicRng(1))
    with pytest.raises(ConfigError):
        MixHashFamily(k=1, size=1, rng=DeterministicRng(1))
