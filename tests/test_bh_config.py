"""Unit tests for BlockHammer configuration math (Eq. 1, Eq. 3, Tables
1 and 7)."""

import pytest

from repro.core.config import BlockHammerConfig
from repro.dram.spec import DDR4_2400, LPDDR4_3200
from repro.utils.units import MS
from repro.utils.validation import ConfigError


def test_table1_values():
    """The paper's flagship configuration (Table 1)."""
    cfg = BlockHammerConfig()
    assert cfg.nrh == 32768
    assert cfg.nrh_star == pytest.approx(16384.0)  # double-sided Eq. 3
    assert cfg.nbl == 8192
    assert cfg.t_cbf_ns == 64 * MS
    # tDelay ~ 7.7 us (Table 1).
    assert cfg.t_delay_ns == pytest.approx(7700.0, rel=0.02)
    # History buffer ~887 entries (Table 1; exact value is a ceil).
    assert cfg.history_entries in (887, 888)


def test_eq3_paper_worst_case():
    cfg = BlockHammerConfig(blast_radius=6, blast_decay=0.5)
    assert cfg.nrh_star / cfg.nrh == pytest.approx(0.2539, abs=1e-3)


def test_eq3_double_sided():
    cfg = BlockHammerConfig(blast_radius=1)
    assert cfg.nrh_star == cfg.nrh / 2


def test_eq1_worst_case_schedule_fits_cbf_lifetime():
    """NBL fast ACTs + tDelay-spaced ACTs exactly exhaust the per-window
    activation budget — the designed-in property behind Eq. 1."""
    cfg = BlockHammerConfig()
    budget = (cfg.t_cbf_ns / cfg.t_refw_ns) * cfg.nrh_star
    burst_time = cfg.nbl * cfg.t_rc_ns
    delayed = (cfg.t_cbf_ns - burst_time) / cfg.t_delay_ns
    assert cfg.nbl + delayed == pytest.approx(budget, rel=1e-9)


def test_table7_presets():
    expected = {
        32768: (1024, 8192),
        16384: (1024, 4096),
        8192: (1024, 2048),
        4096: (2048, 1024),
        2048: (4096, 512),
        1024: (8192, 256),
    }
    for nrh, (cbf_size, nbl) in expected.items():
        cfg = BlockHammerConfig.for_nrh(nrh)
        assert cfg.cbf_size == cbf_size, nrh
        assert cfg.nbl == nbl, nrh


def test_for_nrh_caps_cbf_size():
    cfg = BlockHammerConfig.for_nrh(64, max_cbf_size=4096)
    assert cfg.cbf_size == 4096


def test_lpddr4_reduces_tdelay():
    """tREFW halves in LPDDR4, which allows a smaller tDelay (Sec 3.1.3)."""
    ddr4 = BlockHammerConfig.for_nrh(32768, DDR4_2400)
    lp = BlockHammerConfig.for_nrh(32768, LPDDR4_3200)
    assert lp.t_delay_ns < ddr4.t_delay_ns


def test_counter_width_covers_nbl():
    cfg = BlockHammerConfig()
    assert (1 << cfg.counter_bits) - 1 >= cfg.nbl
    assert cfg.counter_max >= cfg.nbl


def test_rhli_denominator_table1():
    cfg = BlockHammerConfig()
    # NRH* x (tCBF/tREFW) - NBL = 16384 - 8192.
    assert cfg.rhli_denominator == pytest.approx(8192.0)


def test_tdelay_scales_inversely_with_nrh():
    small = BlockHammerConfig.for_nrh(1024)
    large = BlockHammerConfig.for_nrh(32768)
    assert small.t_delay_ns > large.t_delay_ns
    # NRH=1K: tDelay ~ 64 ms / 256 ~ 250 us.
    assert small.t_delay_ns == pytest.approx(250_000.0, rel=0.05)


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        BlockHammerConfig(nbl=20000, nrh=32768)  # NBL >= NRH*
    with pytest.raises(ConfigError):
        BlockHammerConfig.for_nrh(4)


def test_summary_contains_key_parameters():
    summary = BlockHammerConfig().summary()
    assert summary["NRH"] == 32768
    assert summary["NBL"] == 8192
    assert summary["tDelay_us"] == pytest.approx(7.7, rel=0.02)


def test_scaled_config_preserves_tdelay():
    """Scaling tREFW and NRH by the same factor keeps tDelay (and hence
    the attacker's absolute activation-rate cap) unchanged."""
    full = BlockHammerConfig.for_nrh(32768, DDR4_2400)
    scaled = BlockHammerConfig.for_nrh(256, DDR4_2400.scaled(128))
    assert scaled.t_delay_ns == pytest.approx(full.t_delay_ns, rel=0.02)
    full_rate = full.nrh_star / full.t_refw_ns
    scaled_rate = scaled.nrh_star / scaled.t_refw_ns
    assert scaled_rate == pytest.approx(full_rate, rel=0.02)
