"""Unit tests for DRAM specs and scaling."""

import pytest

from repro.dram.spec import DDR3_1600, DDR4_2400, LPDDR4_3200, DramSpec, scaled_threshold
from repro.utils.units import MS
from repro.utils.validation import ConfigError


def test_ddr4_matches_paper_table1():
    assert DDR4_2400.tRC == 46.25
    assert DDR4_2400.tFAW == 35.0
    assert DDR4_2400.tREFW == 64 * MS
    assert DDR4_2400.banks_per_rank == 16
    assert DDR4_2400.rows_per_bank == 65536


def test_lpddr4_halves_refresh_window():
    assert LPDDR4_3200.tREFW == 32 * MS


def test_presets_are_self_consistent():
    for preset in (DDR4_2400, LPDDR4_3200, DDR3_1600):
        assert preset.tRC >= preset.tRAS
        assert preset.tREFI < preset.tREFW


def test_scaled_preserves_command_timings():
    scaled = DDR4_2400.scaled(64)
    assert scaled.tRC == DDR4_2400.tRC
    assert scaled.tFAW == DDR4_2400.tFAW
    assert scaled.tRFC == DDR4_2400.tRFC
    assert scaled.tREFI == DDR4_2400.tREFI  # refresh duty cycle preserved
    assert scaled.tREFW == DDR4_2400.tREFW / 64


def test_scaled_repartitions_refresh_groups():
    scaled = DDR4_2400.scaled(64)
    # One full array walk per scaled window.
    assert scaled.refresh_groups == round(scaled.tREFW / scaled.tREFI)


def test_scaled_rejects_factor_below_one():
    with pytest.raises(ConfigError):
        DDR4_2400.scaled(0.5)


def test_scaled_threshold_rounds_and_floors():
    assert scaled_threshold(32768, 64) == 512
    assert scaled_threshold(100, 1000) == 1  # floor of 1
    assert scaled_threshold(1000, 3) == 333


def test_derived_quantities():
    spec = DDR4_2400
    assert spec.total_banks == 16
    assert spec.max_acts_per_refresh_window == pytest.approx(64e6 / 46.25)
    assert spec.read_latency() == pytest.approx(spec.tCL + spec.tBL)
    assert spec.rows_per_refresh_group == 65536 // 8192


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        DramSpec(rows_per_bank=1)
    with pytest.raises(ConfigError):
        DramSpec(tRC=10.0, tRAS=32.0)
