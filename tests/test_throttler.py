"""Unit tests for AttackThrottler (RHLI + quotas)."""

import pytest

from repro.core.config import BlockHammerConfig
from repro.core.throttler import AttackThrottler


def make_throttler(nbl=64, nrh=1024, t_cbf=10_000.0, **kwargs):
    config = BlockHammerConfig(
        nrh=nrh, t_refw_ns=t_cbf, t_cbf_ns=t_cbf, nbl=nbl, cbf_size=1024
    )
    return AttackThrottler(config, num_threads=2, num_banks=4, **kwargs), config


def test_rhli_starts_zero():
    throttler, _ = make_throttler()
    assert throttler.rhli(0, 0) == 0.0
    assert throttler.max_inflight(0, 0) is None
    assert throttler.max_inflight_total(0) is None


def test_rhli_grows_with_blacklisted_acts():
    throttler, config = make_throttler()
    for _ in range(10):
        throttler.record_blacklisted_act(0, 2)
    assert throttler.rhli(0, 2) == pytest.approx(10 / config.rhli_denominator)
    assert throttler.rhli(0, 1) == 0.0
    assert throttler.rhli(1, 2) == 0.0


def test_quota_shrinks_and_blocks_at_one():
    throttler, config = make_throttler()
    denom = config.rhli_denominator
    half = int(denom // 2)
    for _ in range(half):
        throttler.record_blacklisted_act(0, 0)
    quota_half = throttler.max_inflight(0, 0)
    assert quota_half is not None and 0 < quota_half < config.base_quota
    for _ in range(int(denom)):
        throttler.record_blacklisted_act(0, 0)
    assert throttler.rhli(0, 0) >= 1.0
    assert throttler.max_inflight(0, 0) == 0
    assert throttler.max_inflight_total(0) == 0


def test_counters_saturate_at_cap():
    throttler, config = make_throttler()
    for _ in range(10 * config.throttler_counter_max):
        throttler.record_blacklisted_act(0, 0)
    assert throttler.rhli(0, 0) <= config.throttler_counter_max / config.rhli_denominator


def test_observe_cap_override_allows_rhli_above_one():
    throttler, config = make_throttler(counter_cap=1 << 20)
    for _ in range(int(3 * config.rhli_denominator)):
        throttler.record_blacklisted_act(0, 0)
    assert throttler.rhli(0, 0) >= 3.0


def test_rotation_swaps_and_clears_like_dcbf():
    throttler, config = make_throttler(t_cbf=10_000.0)
    epoch = config.epoch_ns
    for _ in range(10):
        throttler.record_blacklisted_act(0, 0)
    throttler.maybe_rotate(epoch)
    # The passive counter (now active) still holds the counts.
    assert throttler.rhli(0, 0) > 0.0
    throttler.maybe_rotate(2 * epoch)
    # Two rotations with no new events: clean.
    assert throttler.rhli(0, 0) == 0.0


def test_thread_max_rhli_and_snapshot():
    throttler, _ = make_throttler()
    for _ in range(5):
        throttler.record_blacklisted_act(0, 1)
    for _ in range(9):
        throttler.record_blacklisted_act(0, 3)
    assert throttler.thread_max_rhli(0) == throttler.rhli(0, 3)
    snapshot = throttler.rhli_snapshot()
    assert set(snapshot) == {(0, 1), (0, 3)}
    assert snapshot[(0, 3)] > snapshot[(0, 1)]


def test_storage_matches_paper_accounting():
    """Two counters per <thread, bank> pair (Table 1)."""
    throttler, _ = make_throttler()
    assert len(throttler._counters) == 2
    assert len(throttler._counters[0]) == 2  # threads
    assert len(throttler._counters[0][0]) == 4  # banks
