"""Unit tests for FR-FCFS scheduling and mitigation gating."""

import pytest

from repro.dram.address import DecodedAddress
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.mem.request import Request, RequestKind
from repro.mem.scheduler import FcfsPolicy, FrFcfsPolicy
from repro.mitigations.base import MitigationMechanism, NoMitigation

NO_BLOCK = frozenset()


def make_request(bank=0, row=0, write=False, thread=0):
    kind = RequestKind.WRITE if write else RequestKind.READ
    return Request(thread, kind, DecodedAddress(0, bank, row, 0), arrival=0.0)


class BlockRow(MitigationMechanism):
    """Test double: blocks ACTs to one row until a fixed time."""

    def __init__(self, row, until):
        super().__init__()
        self.row = row
        self.until = until

    def act_allowed_at(self, rank, bank, row, thread, now):
        if row == self.row:
            return max(now, self.until)
        return now


@pytest.fixture
def device(small_spec):
    return DramDevice(small_spec)


def test_closed_bank_gets_act(device):
    policy = FrFcfsPolicy()
    sel = policy.select([make_request(row=5)], device, NoMitigation(), 0.0, NO_BLOCK)
    assert sel.command.kind is CommandKind.ACT
    assert sel.command.row == 5


def test_row_hit_prioritized_over_older_conflict(device, small_spec):
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    now = small_spec.tRCD
    older_conflict = make_request(row=9)
    younger_hit = make_request(row=5)
    policy = FrFcfsPolicy()
    sel = policy.select(
        [older_conflict, younger_hit], device, NoMitigation(), now, NO_BLOCK
    )
    assert sel.command.kind is CommandKind.RD
    assert sel.request is younger_hit


def test_conflict_precharges_when_no_hits(device, small_spec):
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    now = small_spec.tRAS + 1.0
    policy = FrFcfsPolicy()
    sel = policy.select([make_request(row=9)], device, NoMitigation(), now, NO_BLOCK)
    assert sel.command.kind is CommandKind.PRE


def test_no_precharge_under_pending_hit(device, small_spec):
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    now = small_spec.tRAS + 1.0
    conflict = make_request(row=9)
    # A pending hit whose column timing is not yet ready still protects
    # the open row from being precharged.
    hit = make_request(row=5)
    device.bank(0, 0).next_rd = now + 100.0  # force the hit not-ready
    policy = FrFcfsPolicy()
    sel = policy.select([conflict, hit], device, NoMitigation(), now, NO_BLOCK)
    assert sel.command is None
    assert sel.next_ready == pytest.approx(now + 100.0)


def test_unsafe_act_skipped_younger_safe_proceeds(device):
    blocked = make_request(row=7)
    safe = make_request(row=8)
    policy = FrFcfsPolicy()
    mitigation = BlockRow(row=7, until=500.0)
    sel = policy.select([blocked, safe], device, mitigation, 0.0, NO_BLOCK)
    assert sel.command.kind is CommandKind.ACT
    assert sel.command.row == 8


def test_all_unsafe_reports_wake_time(device):
    blocked = make_request(row=7)
    policy = FrFcfsPolicy()
    mitigation = BlockRow(row=7, until=500.0)
    sel = policy.select([blocked], device, mitigation, 0.0, NO_BLOCK)
    assert sel.command is None
    assert sel.next_ready == pytest.approx(500.0)


def test_blocked_rank_accepts_no_row_commands(device):
    policy = FrFcfsPolicy()
    sel = policy.select(
        [make_request(row=5)], device, NoMitigation(), 0.0, frozenset({0})
    )
    assert sel.command is None


def test_blocked_rank_still_serves_column_hits(device, small_spec):
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    policy = FrFcfsPolicy()
    sel = policy.select(
        [make_request(row=5)], device, NoMitigation(), small_spec.tRCD, frozenset({0})
    )
    assert sel.command.kind is CommandKind.RD


def test_one_row_command_per_bank_per_step(device):
    a = make_request(bank=0, row=1)
    b = make_request(bank=0, row=2)
    c = make_request(bank=1, row=3)
    policy = FrFcfsPolicy()
    sel = policy.select([a, b, c], device, NoMitigation(), 0.0, NO_BLOCK)
    # Oldest per bank wins: request a (bank 0).
    assert sel.request is a


def test_fcfs_considers_only_head(device):
    policy = FcfsPolicy()
    head_blocked = make_request(row=7)
    younger = make_request(row=8)
    mitigation = BlockRow(row=7, until=500.0)
    sel = policy.select([head_blocked, younger], device, mitigation, 0.0, NO_BLOCK)
    # Strict FCFS: does NOT bypass the blocked head.
    assert sel.command is None


def test_write_hit_selected(device, small_spec):
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    policy = FrFcfsPolicy()
    sel = policy.select(
        [make_request(row=5, write=True)],
        device,
        NoMitigation(),
        small_spec.tRCD,
        NO_BLOCK,
    )
    assert sel.command.kind is CommandKind.WR
