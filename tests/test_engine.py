"""Unit tests for the event queue."""

from repro.sim.engine import EventQueue


def test_pops_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(5.0, lambda t: order.append("b"))
    queue.push(1.0, lambda t: order.append("a"))
    queue.push(9.0, lambda t: order.append("c"))
    while not queue.empty:
        t, callback = queue.pop()
        callback(t)
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    order = []
    for label in "abc":
        queue.push(3.0, lambda t, l=label: order.append(l))
    while not queue.empty:
        t, cb = queue.pop()
        cb(t)
    assert order == ["a", "b", "c"]


def test_peek_and_len():
    queue = EventQueue()
    assert queue.peek_time() is None
    queue.push(2.0, lambda t: None)
    queue.push(1.0, lambda t: None)
    assert queue.peek_time() == 1.0
    assert len(queue) == 2
