"""Sweep-report edge cases, per-job profiles, and the last-report reset.

Satellites of the observability PR: ``format_sweep_report`` must render
degenerate sweeps (zero jobs, all-cached, failures-only) sensibly, the
``SweepReport`` counters must add up under retry+timeout combinations,
and the module-global last-report slot must be resettable so sequential
sweeps in one process never leak accounting into each other.
"""

from __future__ import annotations

import pytest

from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.harness.faults import FaultPlan, FaultSpec, crash_once, hang_once
from repro.harness.parallel import (
    SweepReport,
    failed,
    run_jobs,
    single_job,
)
from repro.harness.reporting import format_sweep_report
from repro.harness.retry import ExecPolicy
from repro.harness.runner import HarnessConfig

needs_pool = pytest.mark.skipif(
    not parallel.pool_available(), reason="process pools unavailable in sandbox"
)

FAST = ExecPolicy(attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)


@pytest.fixture(scope="module")
def hcfg() -> HarnessConfig:
    return HarnessConfig(scale=128.0, instructions_per_thread=1_500, warmup_ns=1_000.0)


@pytest.fixture(scope="module")
def jobs(hcfg):
    apps = ["403.gcc", "401.bzip2", "445.gobmk"]
    return [single_job(hcfg, app, "none") for app in apps]


# ----------------------------------------------------------------------
# format_sweep_report edge cases.
# ----------------------------------------------------------------------
def test_format_zero_job_sweep():
    text = format_sweep_report(SweepReport())
    assert "0 job(s)" in text
    assert "0 failed" in text
    assert "FAILED" not in text
    assert len(text.splitlines()) == 1  # headline only


def test_format_all_cached_sweep(tmp_path, jobs):
    cache = ResultCache(tmp_path)
    run_jobs(jobs, workers=1, cache=cache)
    report = SweepReport()
    run_jobs(jobs, workers=1, cache=cache, report=report)
    assert report.cached == report.total == len(jobs)
    assert report.executed == 0
    assert [p.status for p in report.profiles] == ["cached"] * len(jobs)
    text = format_sweep_report(report)
    assert f"{len(jobs)} cached, 0 executed" in text


def test_format_failures_only_sweep(jobs):
    plan = FaultPlan((FaultSpec(match="", action="crash", attempts=None),))
    report = SweepReport()
    results = run_jobs(
        jobs, workers=1, policy=FAST, on_error="skip", faults=plan, report=report
    )
    assert all(failed(entry) for entry in results.values())
    assert report.executed == 0 and len(report.failures) == len(jobs)
    assert {p.status for p in report.profiles} == {"failed"}
    assert all(p.attempts == FAST.attempts for p in report.profiles)
    text = format_sweep_report(report)
    assert text.count("FAILED [crash]") == len(jobs)


# ----------------------------------------------------------------------
# Counter totals under retry/timeout combinations.
# ----------------------------------------------------------------------
def test_serial_retry_counters_add_up(jobs):
    """One transient crash: counters record the retry and the profile
    records both attempts; every job still executes exactly once."""
    report = SweepReport()
    results = run_jobs(
        jobs, workers=1, policy=FAST, faults=crash_once("401.bzip2"), report=report
    )
    assert not any(failed(entry) for entry in results.values())
    assert report.executed == report.total == len(jobs)
    assert report.crashes == 1 and report.retries == 1
    assert not report.failures
    by_label = {p.label: p for p in report.profiles}
    assert by_label["single:401.bzip2:none"].attempts == 2
    assert by_label["single:403.gcc:none"].attempts == 1


@needs_pool
def test_pool_crash_and_hang_counters_add_up(jobs):
    """A crash on one job plus a first-attempt hang on another: both
    faults land in the counters and both jobs converge.  The hang may
    be recorded as a timeout *or* as a crash casualty — a worker crash
    breaks the shared pool, and a hang collected during the rebuild is
    accounted as a crash — so the assertion is on the combined total."""
    plan = FaultPlan(
        crash_once("401.bzip2").specs + hang_once("445.gobmk", seconds=60.0).specs
    )
    policy = ExecPolicy(
        attempts=3, backoff_base_s=0.01, backoff_max_s=0.05, job_timeout_s=2.5
    )
    report = SweepReport()
    results = run_jobs(jobs, workers=2, policy=policy, faults=plan, report=report)
    assert not any(failed(entry) for entry in results.values())
    assert report.executed == report.total == len(jobs)
    assert report.crashes >= 1
    assert report.crashes + report.timeouts >= 2  # both faults counted
    assert report.retries >= 2  # one per injected fault
    assert not report.failures
    executed = [p for p in report.profiles if p.status == "executed"]
    assert len(executed) == len(jobs)
    assert all(p.wall_s > 0.0 and p.events > 0 for p in executed)


def test_report_accumulates_across_runs(tmp_path, jobs):
    """One report instance passed to two ``run_jobs`` calls keeps a
    running total (the documented accumulation contract)."""
    cache = ResultCache(tmp_path)
    report = SweepReport()
    run_jobs(jobs[:2], workers=1, cache=cache, report=report)
    run_jobs(jobs, workers=1, cache=cache, report=report)
    assert report.total == 5
    assert report.executed == 3 and report.cached == 2
    assert len(report.profiles) == 5


# ----------------------------------------------------------------------
# The last-report module global.
# ----------------------------------------------------------------------
def test_reset_last_report_clears_the_slot(jobs):
    run_jobs(jobs[:1], workers=1)
    assert parallel.last_report() is not None
    parallel.reset_last_report()
    assert parallel.last_report() is None


def test_last_report_does_not_leak_across_sweeps(jobs):
    """Without an explicit report, each ``run_jobs`` call publishes a
    fresh report — the second sweep's counters never include the
    first's."""
    run_jobs(jobs, workers=1)
    first = parallel.last_report()
    assert first.total == len(jobs)
    run_jobs(jobs[:1], workers=1)
    second = parallel.last_report()
    assert second is not first
    assert second.total == 1
