"""Unit tests for the deterministic RNG."""

from hypothesis import given, strategies as st

from repro.utils.rng import DeterministicRng, splitmix64


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.uniform() for _ in range(20)] == [b.uniform() for _ in range(20)]
    assert [a.next_seed() for _ in range(20)] == [b.next_seed() for _ in range(20)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.next_seed() for _ in range(4)] != [b.next_seed() for _ in range(4)]


def test_fork_is_deterministic_and_independent():
    parent = DeterministicRng(7)
    child1 = parent.fork("bloom")
    child2 = DeterministicRng(7).fork("bloom")
    other = DeterministicRng(7).fork("history")
    s1 = [child1.next_seed() for _ in range(5)]
    assert s1 == [child2.next_seed() for _ in range(5)]
    assert s1 != [other.next_seed() for _ in range(5)]


def test_fork_does_not_consume_parent_stream():
    a = DeterministicRng(9)
    b = DeterministicRng(9)
    a.fork("x")
    assert a.uniform() == b.uniform()


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_splitmix_output_is_64bit(state):
    new_state, out = splitmix64(state)
    assert 0 <= new_state < (1 << 64)
    assert 0 <= out < (1 << 64)


def test_splitmix_advances_state():
    s0 = 12345
    s1, o1 = splitmix64(s0)
    s2, o2 = splitmix64(s1)
    assert s1 != s0 and s2 != s1
    assert o1 != o2


@given(st.floats(min_value=0.5, max_value=500.0))
def test_geometric_mean_nonnegative(mean):
    rng = DeterministicRng(3)
    samples = [rng.geometric(mean) for _ in range(200)]
    assert all(s >= 0 for s in samples)


def test_geometric_mean_tracks_target():
    rng = DeterministicRng(3)
    mean = 50.0
    samples = [rng.geometric(mean) for _ in range(5000)]
    observed = sum(samples) / len(samples)
    assert 0.7 * mean < observed < 1.3 * mean


def test_geometric_zero_mean():
    rng = DeterministicRng(3)
    assert rng.geometric(0.0) == 0
