"""Unit and property tests for Bloom filters.

The no-false-negative property is load-bearing for BlockHammer's
security guarantee, so it gets hypothesis coverage.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter, CountingBloomFilter
from repro.utils.rng import DeterministicRng


def test_bloom_insert_then_test():
    bf = BloomFilter(256, rng=DeterministicRng(1))
    bf.insert(42)
    assert bf.test(42)


def test_bloom_clear_resets():
    bf = BloomFilter(256, rng=DeterministicRng(1))
    bf.insert(42)
    bf.clear()
    assert not bf.test(42) or True  # reseeded: may alias, but bits are 0
    assert bf.fill_ratio() == 0.0
    assert bf.insertions == 0


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=60))
@settings(max_examples=50, deadline=None)
def test_bloom_no_false_negatives(keys):
    bf = BloomFilter(512, rng=DeterministicRng(7))
    for key in keys:
        bf.insert(key)
    assert all(bf.test(key) for key in keys)


def test_cbf_counts_at_least_truth():
    cbf = CountingBloomFilter(256, rng=DeterministicRng(1))
    for _ in range(10):
        cbf.insert(42)
    assert cbf.test(42) >= 10


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=1 << 16),
        st.integers(min_value=1, max_value=20),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_cbf_estimate_is_upper_bound(insertions):
    """The CBF estimate can exceed but never undercount the truth."""
    cbf = CountingBloomFilter(512, rng=DeterministicRng(9))
    for key, count in insertions.items():
        for _ in range(count):
            cbf.insert(key)
    for key, count in insertions.items():
        assert cbf.test(key) >= count


def test_cbf_saturates_at_counter_max():
    cbf = CountingBloomFilter(64, counter_max=5, rng=DeterministicRng(1))
    for _ in range(50):
        cbf.insert(7)
    assert cbf.test(7) == 5
    assert cbf.saturated_fraction() > 0.0


def test_cbf_insert_returns_estimate():
    cbf = CountingBloomFilter(256, rng=DeterministicRng(1))
    assert cbf.insert(3) == 1
    assert cbf.insert(3) == 2


def test_cbf_clear_zeroes_and_reseeds():
    cbf = CountingBloomFilter(256, rng=DeterministicRng(1))
    before = cbf.hashes.indices(99)
    cbf.insert(99)
    cbf.clear()
    assert cbf.test(99) == 0 or cbf.hashes.indices(99) != before
    assert cbf.insertions == 0


def test_cbf_clear_without_reseed_keeps_hashes():
    cbf = CountingBloomFilter(256, rng=DeterministicRng(1))
    before = cbf.hashes.indices(99)
    cbf.clear(reseed=False)
    assert cbf.hashes.indices(99) == before


def test_aliasing_can_overcount_but_min_bounds_it():
    # Force aliasing with a tiny filter.
    cbf = CountingBloomFilter(4, hash_count=2, rng=DeterministicRng(3))
    for key in range(20):
        cbf.insert(key)
    # Estimates may exceed per-key truth (1) but no estimate may exceed
    # the total insertion count.
    for key in range(20):
        assert 1 <= cbf.test(key) <= 20
