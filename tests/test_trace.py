"""Unit tests for trace primitives."""

import pytest

from repro.cpu.trace import CallableTrace, ListTrace, TraceRecord
from repro.utils.validation import ConfigError


def test_record_validation():
    with pytest.raises(ConfigError):
        TraceRecord(gap=-1, address=0)
    with pytest.raises(ConfigError):
        TraceRecord(gap=0, address=-5)


def test_list_trace_loops():
    trace = ListTrace([TraceRecord(1, 64), TraceRecord(2, 128)])
    seen = [trace.next_record() for _ in range(5)]
    assert [r.address for r in seen] == [64, 128, 64, 128, 64]


def test_list_trace_no_loop_raises():
    trace = ListTrace([TraceRecord(1, 64)], loop=False)
    trace.next_record()
    with pytest.raises(StopIteration):
        trace.next_record()


def test_empty_trace_rejected():
    with pytest.raises(ConfigError):
        ListTrace([])


def test_callable_trace():
    counter = iter(range(100))
    trace = CallableTrace(lambda: TraceRecord(0, next(counter) * 64))
    assert trace.next_record().address == 0
    assert trace.next_record().address == 64
