"""Unit and property tests for in-DRAM row mappings."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.rowmap import (
    LinearRowMapping,
    MirroredRowMapping,
    ScrambledRowMapping,
)

ROWS = 1024


@pytest.fixture(params=["linear", "mirrored", "scrambled"])
def mapping(request):
    if request.param == "linear":
        return LinearRowMapping(ROWS)
    if request.param == "mirrored":
        return MirroredRowMapping(ROWS, block=4)
    return ScrambledRowMapping(ROWS, seed=0xDEAD)


@given(st.integers(min_value=0, max_value=ROWS - 1))
def test_scrambled_roundtrip(logical):
    mapping = ScrambledRowMapping(ROWS, seed=99)
    assert mapping.to_logical(mapping.to_physical(logical)) == logical


def test_mappings_are_bijections(mapping):
    images = {mapping.to_physical(r) for r in range(ROWS)}
    assert images == set(range(ROWS))


def test_roundtrip_all_rows(mapping):
    for row in range(0, ROWS, 37):
        assert mapping.to_logical(mapping.to_physical(row)) == row


def test_linear_identity():
    mapping = LinearRowMapping(16)
    assert [mapping.to_physical(r) for r in range(16)] == list(range(16))


def test_mirrored_swaps_pairs():
    mapping = MirroredRowMapping(8, block=2)
    assert mapping.to_physical(0) == 1
    assert mapping.to_physical(1) == 0
    assert mapping.to_physical(6) == 7


def test_physical_neighbors_clip_at_edges():
    mapping = LinearRowMapping(16)
    assert mapping.physical_neighbors(0, 2) == [1, 2]
    assert mapping.physical_neighbors(15, 1) == [14]
    assert sorted(mapping.physical_neighbors(8, 1)) == [7, 9]


def test_logical_neighbors_for_scrambled_differ_from_linear():
    mapping = ScrambledRowMapping(ROWS, seed=5)
    linear_guess = [99, 101]
    true_neighbors = mapping.logical_neighbors(100, 1)
    # The scrambled mapping's true victims are (almost surely) not the
    # logically-adjacent rows — the Section 2.3 compatibility problem.
    assert sorted(true_neighbors) != linear_guess


def test_scrambled_different_seeds_differ():
    a = ScrambledRowMapping(ROWS, seed=1)
    b = ScrambledRowMapping(ROWS, seed=2)
    assert any(a.to_physical(r) != b.to_physical(r) for r in range(32))


def test_non_power_of_two_rows():
    mapping = ScrambledRowMapping(1000, seed=123)
    images = {mapping.to_physical(r) for r in range(1000)}
    assert images == set(range(1000))
