"""Unit tests for request queues."""

import pytest

from repro.dram.address import DecodedAddress
from repro.mem.queues import RequestQueue
from repro.mem.request import Request, RequestKind
from repro.utils.validation import ConfigError


def make_request(thread=0, bank=0, row=0, write=False):
    kind = RequestKind.WRITE if write else RequestKind.READ
    return Request(thread, kind, DecodedAddress(0, bank, row, 0), arrival=0.0)


def test_fifo_order_preserved():
    queue = RequestQueue(4)
    requests = [make_request(row=i) for i in range(3)]
    for r in requests:
        queue.push(r)
    assert list(queue) == requests


def test_capacity_enforced():
    queue = RequestQueue(2)
    queue.push(make_request())
    queue.push(make_request())
    assert queue.full
    with pytest.raises(ConfigError):
        queue.push(make_request())


def test_remove_and_len():
    queue = RequestQueue(4)
    a, b = make_request(row=1), make_request(row=2)
    queue.push(a)
    queue.push(b)
    queue.remove(a)
    assert len(queue) == 1
    assert list(queue) == [b]
    assert not queue.empty


def test_requests_for_bank_filters():
    queue = RequestQueue(8)
    a = make_request(bank=0)
    b = make_request(bank=1)
    c = make_request(bank=0)
    for r in (a, b, c):
        queue.push(r)
    assert queue.requests_for_bank(0, 0) == [a, c]
    assert queue.requests_for_bank(0, 1) == [b]


def test_request_denormalized_fields():
    r = make_request(thread=3, bank=5, row=77, write=True)
    assert r.is_write
    assert r.rank == 0 and r.bank == 5 and r.row == 77
    assert r.bank_key == 5
    assert r.key() == (0, 5)
