"""The job-based parallel experiment executor.

Determinism is the load-bearing property: a sweep must produce the same
rows whether it runs serially in-process or fans out over a process
pool, because paper figures are compared across machines and worker
counts.  These tests run a small Figure 4 subset and a tiny mix sweep
both ways and require *identical* row dicts (same values, same order).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    assemble_mix_rows,
    fig4_singlecore,
    fig5_multicore,
    mix_sweep_jobs,
)
from repro.harness.parallel import (
    SimJob,
    dedupe_jobs,
    execute_job,
    mix_job,
    resolve_workers,
    run_jobs,
    single_job,
    single_key,
)
from repro.harness.runner import HarnessConfig


@pytest.fixture(scope="module")
def tiny_hcfg() -> HarnessConfig:
    """Small enough for tier-1, large enough to exercise scheduling."""
    return HarnessConfig(
        scale=128.0,
        paper_nrh=32768,
        instructions_per_thread=4_000,
        warmup_ns=5_000.0,
    )


# ----------------------------------------------------------------------
# Job declaration and deduplication.
# ----------------------------------------------------------------------
def test_single_job_keys_are_stable(tiny_hcfg):
    a = single_job(tiny_hcfg, "403.gcc", "blockhammer")
    b = single_job(tiny_hcfg, "403.gcc", "blockhammer")
    assert a.key == b.key
    assert dedupe_jobs([a, b]) == [a]


def test_dedupe_merges_extracts(tiny_hcfg):
    from repro.workloads.mixes import attack_mixes

    mix = attack_mixes(1)[0]
    a = mix_job(tiny_hcfg, mix, "blockhammer", extract=("thread_rhli",))
    b = mix_job(tiny_hcfg, mix, "blockhammer", extract=("delay_stats",))
    merged = dedupe_jobs([a, b])
    assert len(merged) == 1
    assert merged[0].extract == ("thread_rhli", "delay_stats")


def test_dedupe_rejects_conflicting_reuse(tiny_hcfg):
    a = single_job(tiny_hcfg, "403.gcc")
    b = SimJob(key=a.key, hcfg=tiny_hcfg, kind="single", app="429.mcf")
    with pytest.raises(ValueError):
        dedupe_jobs([a, b])


def test_job_validation(tiny_hcfg):
    with pytest.raises(ValueError):
        SimJob(key=("x",), hcfg=tiny_hcfg, kind="nope")
    with pytest.raises(ValueError):
        SimJob(key=("x",), hcfg=tiny_hcfg, kind="single")  # no app
    with pytest.raises(ValueError):
        single_job(tiny_hcfg, "403.gcc", extract=("no_such_extractor",))


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers(0) == 1
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3


def test_mix_sweep_jobs_share_alone_runs(tiny_hcfg):
    """Alone-IPC jobs deduplicate across sweeps batched into one
    execution (the same mixes swept under different mechanism lists
    declare identical alone runs, which must collapse to one job)."""
    from repro.workloads.mixes import benign_mixes

    mixes = benign_mixes(2)
    jobs = mix_sweep_jobs(tiny_hcfg, mixes, ["blockhammer"])
    jobs += mix_sweep_jobs(tiny_hcfg, mixes, ["para"])
    singles = [j for j in jobs if j.kind == "single"]
    unique_singles = [j for j in dedupe_jobs(jobs) if j.kind == "single"]
    assert len(singles) == 2 * len(unique_singles)


def test_mix_sweep_jobs_share_alone_runs_across_mixes(tiny_hcfg):
    """Alone-IPC jobs also deduplicate across mixes and scenarios when
    two mixes place the same app in the same slot (with this master
    seed, 3+3 mixes are enough to guarantee collisions)."""
    from repro.workloads.mixes import attack_mixes, benign_mixes

    jobs = mix_sweep_jobs(tiny_hcfg, benign_mixes(3), ["blockhammer"])
    jobs += mix_sweep_jobs(tiny_hcfg, attack_mixes(3), ["blockhammer"])
    singles = [j for j in jobs if j.kind == "single"]
    unique_singles = [j for j in dedupe_jobs(jobs) if j.kind == "single"]
    assert len(unique_singles) < len(singles)


# ----------------------------------------------------------------------
# Serial/parallel determinism (the acceptance property).
# ----------------------------------------------------------------------
def test_fig4_subset_serial_vs_parallel_identical(tiny_hcfg):
    apps = ["403.gcc", "429.mcf"]
    mechanisms = ["graphene", "blockhammer"]
    serial = fig4_singlecore(tiny_hcfg, apps, mechanisms, workers=1)
    parallel = fig4_singlecore(tiny_hcfg, apps, mechanisms, workers=2)
    assert serial == parallel  # identical row dicts, identical order


def test_mix_sweep_serial_vs_parallel_identical(tiny_hcfg):
    rows_serial = fig5_multicore(tiny_hcfg, 1, ["blockhammer"], workers=1)
    rows_parallel = fig5_multicore(tiny_hcfg, 1, ["blockhammer"], workers=2)
    assert rows_serial == rows_parallel


# ----------------------------------------------------------------------
# Interrupted sweeps still flush a final progress report.
# ----------------------------------------------------------------------
def test_interrupt_flushes_final_report_before_propagating(
    tiny_hcfg, monkeypatch, capsys
):
    """Ctrl-C mid-sweep under ``--progress`` must print the final
    SweepReport (how many jobs are already checkpointed, so the user
    knows a resume is warm) *before* the KeyboardInterrupt propagates."""
    import repro.harness.parallel as parallel

    real = parallel.execute_job
    executed = []

    def fake(job):
        if executed:
            raise KeyboardInterrupt
        executed.append(job.key)
        return real(job)

    monkeypatch.setattr(parallel, "execute_job", fake)
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    jobs = [
        single_job(tiny_hcfg, "403.gcc", "none"),
        single_job(tiny_hcfg, "403.gcc", "blockhammer"),
    ]
    with pytest.raises(KeyboardInterrupt):
        run_jobs(jobs, workers=1, cache=False)
    err = capsys.readouterr().err
    assert "interrupted: 1 completed job(s) checkpointed" in err
    assert "sweep: 2 job(s) — 0 cached, 1 executed" in err


def test_interrupt_is_silent_without_progress(tiny_hcfg, monkeypatch, capsys):
    """Without ``--progress`` the interrupt propagates without extra
    output (quiet mode stays quiet)."""
    import repro.harness.parallel as parallel

    monkeypatch.setattr(
        parallel, "execute_job", lambda job: (_ for _ in ()).throw(KeyboardInterrupt)
    )
    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    with pytest.raises(KeyboardInterrupt):
        run_jobs([single_job(tiny_hcfg, "403.gcc", "none")], workers=1, cache=False)
    assert "interrupted" not in capsys.readouterr().err


# ----------------------------------------------------------------------
# Tier-1 smoke: one tiny sweep through the parallel path.
# ----------------------------------------------------------------------
@pytest.mark.perf_smoke
def test_perf_smoke_parallel_path(tiny_hcfg):
    """A minimal sweep through the pool-backed executor: exercises job
    pickling, worker fan-out, extractor transport, and keyed assembly."""
    jobs = [
        single_job(tiny_hcfg, "403.gcc", "none"),
        single_job(tiny_hcfg, "403.gcc", "blockhammer"),
    ]
    results = run_jobs(jobs, workers=2)
    assert set(results) == {j.key for j in jobs}
    base = results[single_key(tiny_hcfg, "403.gcc", 0, "none")]
    bh = results[single_key(tiny_hcfg, "403.gcc", 0, "blockhammer")]
    assert base.result.threads[0].instructions >= tiny_hcfg.instructions_per_thread
    assert bh.mechanism_name == "blockhammer"
    assert bh.bitflips == 0
    # The pool path and the in-process path agree exactly.
    assert execute_job(jobs[0]).result == base.result


@pytest.mark.perf_smoke
def test_perf_smoke_extractors_cross_process(tiny_hcfg):
    from repro.workloads.mixes import attack_mixes

    mix = attack_mixes(1)[0]
    job = mix_job(tiny_hcfg, mix, "blockhammer", extract=("thread_rhli", "delay_stats"))
    results = run_jobs([job], workers=2)
    res = results[job.key]
    rhli = res.extras["thread_rhli"]
    assert len(rhli) == len(mix.app_names)
    assert res.extras["delay_stats"].total_acts > 0
