"""Acceptance tests: trace events match ``SimResult`` counters.

One attack-mix BlockHammer scenario runs once with full observability
and once without (module-scoped), and the tests assert the ISSUE's
acceptance criteria: no ring drops, trace-event counts equal to the
simulation's own counters (throttle blocks, D-CBF rotations, victim
refreshes), and bit-identical results modulo ``events_processed`` —
the one field metrics sampling legitimately perturbs.

The system is built the way ``Runner.run_mix`` builds it (same traces,
targets, and attacker core parameters) but held directly so the tests
can read controller-side counters after the run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.runner import ATTACKER_CORE_PARAMS, HarnessConfig
from repro.mitigations.registry import build_mitigation
from repro.obs import ObsConfig, TelemetryBus, to_perfetto
from repro.sim.system import System
from repro.workloads.mixes import attack_mixes

#: Aggressive scaling so the short run crosses several D-CBF epochs
#: (at the default scale=128 the mechanism epoch dwarfs a test run).
HCFG = HarnessConfig(scale=4096.0, instructions_per_thread=12_000, warmup_ns=5_000.0)
MECHANISM = "blockhammer"


def _run_attack(obs=None):
    mix = attack_mixes(1)[0]
    spec = HCFG.spec()
    traces = mix.build_traces(spec, HCFG.mapping(), seed=HCFG.seed)
    targets = [
        None if slot in mix.attacker_threads else HCFG.instructions_per_thread
        for slot in range(len(traces))
    ]
    per_thread = [
        ATTACKER_CORE_PARAMS if slot in mix.attacker_threads else None
        for slot in range(len(traces))
    ]
    kwargs = HCFG.mechanism_kwargs(MECHANISM)
    system = System(
        HCFG.system_config(),
        traces,
        mitigation_factory=lambda: build_mitigation(MECHANISM, **kwargs),
        core_params_per_thread=per_thread,
        obs=obs,
    )
    result = system.run(
        instructions_per_thread=targets,
        max_time_ns=HCFG.max_time_ns,
        warmup_ns=HCFG.warmup_ns,
    )
    return system, result


@pytest.fixture(scope="module")
def traced():
    bus = TelemetryBus(ObsConfig(trace=True, metrics=True, metrics_epoch_ns=5_000.0))
    system, result = _run_attack(obs=bus)
    return bus, system, result


@pytest.fixture(scope="module")
def untraced():
    _, result = _run_attack(obs=None)
    return result


@pytest.mark.obs_smoke
def test_nothing_dropped(traced):
    bus, _, _ = traced
    assert bus.trace.dropped == 0
    assert bus.trace.total_emitted > 0


@pytest.mark.obs_smoke
def test_throttle_events_match_quota_counters(traced):
    """Every measured ``throttle_block`` trace event corresponds to one
    quota-blocked injection in the controllers' per-thread stats (the
    stats reset at the warmup boundary, so only measured events count)."""
    bus, system, _ = traced
    quota_blocked = sum(
        stats.quota_blocked_injections
        for controller in system.controllers
        for stats in controller.thread_stats
    )
    assert quota_blocked > 0  # the attack actually tripped throttling
    assert bus.trace.count("mem", "throttle_block", measured_only=True) == quota_blocked


@pytest.mark.obs_smoke
def test_dcbf_rotations_match_verdict_epochs(traced):
    """Every D-CBF rotation across the whole run (warmup included —
    ``verdict_epoch`` never resets) appears as one trace event."""
    bus, system, _ = traced
    rotations = sum(m.rowblocker.verdict_epoch for m in system.mitigations)
    assert rotations > 0  # the run crossed at least one mechanism epoch
    assert bus.trace.count("mitigation", "dcbf_rotate") == rotations


@pytest.mark.obs_smoke
def test_blacklisted_acts_recorded(traced):
    bus, system, _ = traced
    assert bus.trace.count("mitigation", "blacklist_act") > 0
    assert bus.trace.count("dram", "ACT") > 0  # command stream captured


@pytest.mark.obs_smoke
def test_observability_does_not_change_results(traced, untraced):
    """Full tracing + metrics leaves the simulation bit-identical modulo
    ``events_processed`` (metrics sampling rides the event queue)."""
    _, _, observed = traced
    assert dataclasses.replace(observed, events_processed=0) == dataclasses.replace(
        untraced, events_processed=0
    )


@pytest.mark.obs_smoke
def test_metrics_cover_both_phases(traced):
    bus, _, _ = traced
    phases = {row["phase"] for row in bus.metrics.rows}
    assert phases == {"warmup", "measure"}
    metrics = {row["metric"] for row in bus.metrics.rows}
    assert {"rhli", "blacklist_occupancy", "read_queue_depth"} <= metrics


@pytest.mark.obs_smoke
def test_perfetto_export_of_real_run(traced):
    bus, _, _ = traced
    document = to_perfetto(bus.trace.events, measure_start=bus.trace.measure_start)
    names = {e.get("name") for e in document["traceEvents"]}
    assert {"ACT", "throttle_block", "dcbf_rotate", "measure_start"} <= names
    # Trace timestamps are microseconds; the boundary marker sits where
    # the warmup ended.
    marker = next(
        e for e in document["traceEvents"] if e.get("name") == "measure_start"
    )
    assert marker["ts"] == pytest.approx(HCFG.warmup_ns / 1000.0)


@pytest.mark.obs_smoke
def test_vref_events_match_victim_refreshes():
    """Graphene issues targeted refreshes through the controllers'
    VREF path; each measured ``vref`` trace event is one
    ``SimResult.victim_refreshes`` count."""
    mix = attack_mixes(1)[0]
    hcfg = dataclasses.replace(HCFG, instructions_per_thread=4_000)
    bus = TelemetryBus(ObsConfig(trace=True, trace_commands=False))
    spec = hcfg.spec()
    traces = mix.build_traces(spec, hcfg.mapping(), seed=hcfg.seed)
    targets = [
        None if slot in mix.attacker_threads else hcfg.instructions_per_thread
        for slot in range(len(traces))
    ]
    system = System(
        hcfg.system_config(),
        traces,
        mitigation_factory=lambda: build_mitigation("graphene"),
        obs=bus,
    )
    result = system.run(
        instructions_per_thread=targets, warmup_ns=hcfg.warmup_ns
    )
    assert result.victim_refreshes > 0
    assert (
        bus.trace.count("mem", "vref", measured_only=True)
        == result.victim_refreshes
    )
