"""Time-leap (quiescence-horizon batching) edge cases.

The event loop lets each controller leap through batches of scheduling
steps (:meth:`MemoryController.run_until`) instead of waking tick by
tick; ``System.single_step = True`` restores the legacy cadence.  These
tests pin the refresh-edge interactions the batching must not disturb:

* a REF deadline *is* a leap horizon — an idle controller's next step
  lands exactly on the deadline and the REF issues at that instant;
* per-rank and per-channel refresh staggering survives batching
  (deadlines a fraction of tREFI apart must each get their own step);
* a mitigation whose ``advance_to`` horizon is much shorter than the
  controller's own wake cadence is re-invoked at (never after) every
  horizon it reports;
* property test: batched runs are bit-identical to the tick-by-tick
  oracle — commands, results, and processed-event counts — across
  mechanisms with every time-advance style (none, proactive throttling,
  probabilistic reactive, table-driven reactive).
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from bisect import bisect_left

from repro.cpu.trace import ListTrace, TraceRecord
from repro.harness.runner import HarnessConfig, Runner
from repro.mitigations.base import MitigationMechanism
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import attack_mixes

from test_system import make_records


def run_system(
    spec,
    traces,
    *,
    single_step,
    mitigation=None,
    num_channels=None,
    max_time_ns=60_000.0,
    seed=7,
):
    """Run a System with per-device command capture, optionally in the
    legacy tick-by-tick mode, and return (system, logs, result)."""
    config = SystemConfig(spec=spec, num_channels=num_channels, seed=seed)
    system = System(config, traces, mitigation=mitigation)
    logs = []
    for device in system.memsys.devices:
        device.command_log = []
        logs.append(device.command_log)
    old = System.single_step
    System.single_step = single_step
    try:
        result = system.run(instructions_per_thread=None, max_time_ns=max_time_ns)
    finally:
        System.single_step = old
    return system, logs, result


def one_touch_trace():
    """One read at t=0, then silence: the second record's compute gap
    (~10 ms of instructions) reaches past every test window, so the
    memory system spends the run with refresh as its only wake source.
    (Traces replay for background threads, so a truly one-record trace
    would re-issue its access forever.)"""
    return ListTrace(
        [
            TraceRecord(gap=1, address=0, is_write=False),
            TraceRecord(gap=50_000_000, address=0, is_write=False),
        ]
    )


def ref_times(log, rank=None):
    return [
        cmd[0] for cmd in log if cmd[1] == "REF" and (rank is None or cmd[2] == rank)
    ]


def deadline_schedule(first_due, interval, count):
    """REF deadlines as RefreshManager computes them: repeated addition
    (bit-exact expectations, no re-association through multiplication)."""
    out = []
    t = first_due
    for _ in range(count):
        out.append(t)
        t += interval
    return out


# ----------------------------------------------------------------------
# REF exactly on a leap horizon.
# ----------------------------------------------------------------------
def test_idle_controller_refreshes_exactly_on_deadline(small_spec):
    """Once the single touch drains, the only wake source is the refresh
    deadline: every leap lands *exactly* on ``next_due`` and the REF
    issues at that instant (float-equal, no drift across leaps).  The
    first REF may slip by a precharge (the touched row is still open);
    from the second on the rank is quiescent and the schedule is exact."""
    system, logs, _ = run_system(
        small_spec, [one_touch_trace()], single_step=False, max_time_ns=60_000.0
    )
    interval = system.controller.refresh.interval
    times = ref_times(logs[0])
    assert len(times) >= 6
    deadlines = deadline_schedule(interval, interval, len(times))
    assert times[0] >= deadlines[0]  # never early
    assert times[0] < deadlines[0] + small_spec.tRP + small_spec.tCK
    assert times[1:] == deadlines[1:]  # exactly on the leap horizon


def test_idle_refresh_schedule_matches_single_step_oracle(small_spec):
    _, batched, _ = run_system(small_spec, [one_touch_trace()], single_step=False)
    _, oracle, _ = run_system(small_spec, [one_touch_trace()], single_step=True)
    assert batched[0] == oracle[0]


# ----------------------------------------------------------------------
# Per-rank / per-channel REF staggering.
# ----------------------------------------------------------------------
def test_per_rank_stagger_survives_batching(small_spec):
    """Two ranks refresh half a tREFI apart; batching must give each
    sub-interval deadline its own scheduling step."""
    spec = replace(small_spec, ranks=2)
    system, logs, _ = run_system(
        spec, [one_touch_trace()], single_step=False, max_time_ns=40_000.0
    )
    interval = system.controller.refresh.interval
    for rank in (0, 1):
        times = ref_times(logs[0], rank=rank)
        assert len(times) >= 3
        # Mirror RefreshManager's own expressions bit-for-bit.
        first_due = interval * (1.0 + rank / 2)
        deadlines = deadline_schedule(first_due, interval, len(times))
        assert deadlines[0] <= times[0] < deadlines[0] + spec.tRP + spec.tCK
        assert times[1:] == deadlines[1:]
    # The two ranks are genuinely interleaved, half a tREFI apart.
    assert ref_times(logs[0], rank=1)[0] - ref_times(logs[0], rank=0)[0] == pytest.approx(
        interval / 2, abs=spec.tRP + spec.tCK
    )


def test_per_channel_stagger_survives_batching(small_spec):
    """Channel 0 refreshes at phase 0; channel 1's deadlines carry a
    seed-derived phase offset within one tREFI.  Idle channels must hit
    their own offsets exactly, and the whole schedule must match the
    tick-by-tick oracle."""
    _, batched, _ = run_system(
        small_spec, [one_touch_trace()], single_step=False, num_channels=2
    )
    system, oracle, _ = run_system(
        small_spec, [one_touch_trace()], single_step=True, num_channels=2
    )
    offsets = [ctrl.refresh.phase_offset_ns for ctrl in system.controllers]
    interval = system.controllers[0].refresh.interval
    assert offsets[0] == 0.0
    assert 0.0 < offsets[1] < interval
    for channel in (0, 1):
        times = ref_times(batched[channel])
        assert len(times) >= 3
        first_due = offsets[channel] + interval * 1.0
        deadlines = deadline_schedule(first_due, interval, len(times))
        slack = small_spec.tRP + small_spec.tCK
        assert deadlines[0] <= times[0] < deadlines[0] + slack
        assert times[1:] == deadlines[1:]
        assert batched[channel] == oracle[channel]


def test_loaded_multichannel_refresh_matches_oracle(small_spec):
    """Same check under real traffic (REFs slip behind bank activity and
    are no longer exactly on their deadlines — the slip itself must be
    bit-identical between batched and tick-by-tick runs)."""
    spec = replace(small_spec, ranks=2)

    def build():
        return [ListTrace(make_records(count=400, rows=100, seed=s)) for s in (3, 4)]

    _, batched, res_b = run_system(
        spec, build(), single_step=False, num_channels=2, max_time_ns=30_000.0
    )
    _, oracle, res_o = run_system(
        spec, build(), single_step=True, num_channels=2, max_time_ns=30_000.0
    )
    assert any(ref_times(log) for log in batched)
    assert batched == oracle
    assert dataclasses.asdict(res_b) == dataclasses.asdict(res_o)


# ----------------------------------------------------------------------
# Mitigation advance_to horizon shorter than the controller's.
# ----------------------------------------------------------------------
class ShortHorizonMechanism(MitigationMechanism):
    """Never interferes, but reports a tiny periodic quiescence horizon
    — much shorter than the controller's refresh/queue horizons — and
    records every ``advance_to`` call so tests can check the contract:
    the controller re-invokes at (never after) each reported horizon."""

    name = "short-horizon"

    def __init__(self, period_ns: float) -> None:
        super().__init__()
        self.period_ns = period_ns
        self.calls: list[tuple[float, float]] = []

    def advance_to(self, now: float) -> float:
        horizon = (now // self.period_ns + 1.0) * self.period_ns
        self.calls.append((now, horizon))
        return horizon


def test_short_mitigation_horizon_bounds_every_leap(small_spec):
    period = 50.0  # far below tREFI (7812.5) and typical queue horizons
    mech = ShortHorizonMechanism(period)
    _, logs, _ = run_system(
        small_spec,
        [ListTrace(make_records(count=300, rows=64))],
        single_step=False,
        mitigation=mech,
        max_time_ns=20_000.0,
    )
    calls = mech.calls
    assert len(calls) >= 100  # the horizon actually throttled the leaps
    assert calls[0][0] == 0.0
    command_times = sorted(cmd[0] for cmd in logs[0])
    for (_, horizon), (t_next, _) in zip(calls, calls[1:]):
        # Never early: advance_to only fires once the previous horizon
        # is reached.
        assert t_next >= horizon
        # Never leapt past: no scheduling step may run at or beyond an
        # unserviced horizon.  A sleeping controller takes no steps (the
        # legacy per-step cadence did not poll an idle channel either),
        # so a gap larger than one period is legal only if no command
        # issued inside [horizon, t_next).
        if t_next >= horizon + period:
            lo = bisect_left(command_times, horizon)
            hi = bisect_left(command_times, t_next)
            assert lo == hi, (
                f"controller issued {hi - lo} command(s) in [{horizon}, {t_next}) "
                "without servicing the mitigation horizon"
            )


def test_short_mitigation_horizon_matches_oracle(small_spec):
    def run(single_step):
        mech = ShortHorizonMechanism(50.0)
        _, logs, result = run_system(
            small_spec,
            [ListTrace(make_records(count=300, rows=64))],
            single_step=single_step,
            mitigation=mech,
            max_time_ns=20_000.0,
        )
        return logs, dataclasses.asdict(result)

    batched_logs, batched_result = run(False)
    oracle_logs, oracle_result = run(True)
    assert batched_logs == oracle_logs
    assert batched_result == oracle_result


# ----------------------------------------------------------------------
# Property test: batched == tick-by-tick across mechanism styles.
# ----------------------------------------------------------------------
def run_harness(single_step: bool, mechanism: str, seed: int, channels: int):
    """One harness-level run (full Runner pipeline: workload generation,
    mechanism construction, energy model) with the batching mode forced."""
    hcfg = HarnessConfig(
        scale=1024.0,
        instructions_per_thread=2000,
        warmup_ns=2_000.0,
        num_channels=channels,
        seed=1 + seed,
    )
    runner = Runner(hcfg, capture_commands=True)
    mix = attack_mixes(1, threads=2, master_seed=4000 + seed)[0]
    old = System.single_step
    System.single_step = single_step
    try:
        outcome = runner.run_mix(mix, mechanism)
    finally:
        System.single_step = old
    return outcome.command_logs, dataclasses.asdict(outcome.result)


@pytest.mark.parametrize("channels", [1, 2])
@pytest.mark.parametrize(
    "mechanism", ["none", "blockhammer", "para", "twice", "graphene"]
)
def test_batched_equals_tick_by_tick_oracle(mechanism, channels):
    """The property at the heart of the refactor: for every time-advance
    style — no-op, proactive throttling with cached verdicts (the fused
    scheduler path), probabilistic reactive refresh, and table-driven
    reactive refresh — a batched run is indistinguishable from the
    legacy tick-by-tick cadence: same commands on every channel, same
    result rows, and the same processed-event count (each batched step
    is accounted exactly like the per-step wake it replaces)."""
    batched_logs, batched_result = run_harness(False, mechanism, 0, channels)
    oracle_logs, oracle_result = run_harness(True, mechanism, 0, channels)
    assert len(batched_logs) == channels
    assert all(len(log) > 50 for log in batched_logs)
    assert batched_logs == oracle_logs
    assert batched_result == oracle_result
