"""Differential scheduler tests: fast FR-FCFS ≡ naive reference.

Sweeps seeds × {benign, attack, mixed} × {1, 2, 4} channels through the
incremental :class:`FrFcfsPolicy` and the naive
:class:`ReferenceFrFcfsPolicy` and asserts full command-trace equality
— every DRAM command's (time, kind, rank, bank, row, col) on every
channel, warmup included — plus bit-identical ``SimResult`` rows and
energy (see ``tests/differential.py`` for the harness and for why
``events_processed`` alone is excluded).

The mechanism rotates with the scenario/seed (BlockHammer, the
unprotected baseline, Graphene, PARA, naive-throttle, blockhammer-os,
MRLoc, CBT, TWiCe) so proactive verdict caching, reactive victim
refreshes, the plain timing-only path, and the no-stability-declared
per-step re-query path are all differentially covered — every
mechanism in the registry participates in the time-advance contract.  The ``governed`` scenario additionally
runs an OS governor above the memory system (mechanism-coupled kill in
``blockhammer-os`` on even seeds, plus a system-level migrate/kill
governor): governor actions reshape the command stream mid-run
(deschedules, channel re-pins) and must preserve fast == reference
bit-identity, action log included.

The ``perf_smoke``-marked smoke is the seconds-fast subset wired into
``scripts/perf_smoke.sh`` (tier-1).
"""

from __future__ import annotations

import pytest

from differential import (
    SCENARIOS,
    assert_equivalent,
    run_pair,
    run_policy,
    scenario_mix,
)
from repro.mem.scheduler import FrFcfsPolicy, ReferenceFrFcfsPolicy


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("channels", [1, 2, 4])
def test_fast_policy_matches_reference(scenario, seed, channels):
    fast, ref = run_pair(scenario, seed, channels)
    assert_equivalent(fast, ref)


def test_reactive_scenario_covers_twice():
    """The parametrized sweep's seeds {0, 1} reach mrloc and cbt in the
    ``reactive`` rotation; seed 2 pins TWiCe — with an assertion that
    the run actually exercised the victim-refresh path batching must
    preserve (the whole point of covering reactive mechanisms)."""
    fast, ref = run_pair("reactive", 2, 1)
    assert fast.result["mitigation"] == "twice"
    assert_equivalent(fast, ref)
    assert fast.result["victim_refreshes"] > 0


def test_commands_were_actually_captured():
    """Guard against the harness silently comparing empty traces."""
    fast, ref = run_pair("attack", 0, 2, instructions=1500, warmup_ns=1000.0)
    assert len(fast.commands) == 2
    assert all(len(cmds) > 100 for cmds in fast.commands)
    kinds = {cmd[1] for cmds in fast.commands for cmd in cmds}
    # A real attack run exercises the row-command vocabulary (the run is
    # shorter than a refresh interval, so no REF is expected).
    assert {"ACT", "PRE", "RD"} <= kinds


def test_scenarios_are_deterministic_workloads():
    """Same (scenario, seed) -> same mix; different seeds -> different
    apps (the sweep actually varies its inputs)."""
    assert scenario_mix("attack", 0) == scenario_mix("attack", 0)
    assert scenario_mix("benign", 0) != scenario_mix("benign", 1)
    assert scenario_mix("attack", 0).has_attack
    assert not scenario_mix("benign", 0).has_attack
    assert scenario_mix("governed", 0).has_attack


def test_governed_scenario_actually_acts():
    """The governed scenario is only real coverage if governor actions
    fire *inside* the differential runs: the system-level governor must
    log actions (identically under both policies — also asserted for
    every pair by ``assert_equivalent``).  Seed 0 covers channel
    migration above the mechanism-coupled ``blockhammer-os`` governor;
    seed 1 covers mid-run MLP-quota rescaling *and* a system-level
    deschedule (quota+kill)."""
    fast, ref = run_pair("governed", 0, 2)
    actions = fast.governor_actions
    assert actions is not None and actions["epochs"] > 0
    assert actions["migrations"], "migrate governor never fired"
    assert fast.governor_actions == ref.governor_actions
    # Even seed -> blockhammer-os: the mechanism-coupled deployment.
    assert fast.result["mitigation"] == "blockhammer-os"

    fast, ref = run_pair("governed", 1, 2)
    actions = fast.governor_actions
    assert actions["quota_updates"] > 0, "quota governor never fired"
    assert actions["kills"], "system-level kill never fired"
    assert fast.governor_actions == ref.governor_actions


@pytest.mark.perf_smoke
def test_differential_smoke_one_seed():
    """Fast differential smoke for scripts/perf_smoke.sh: one seed, one
    attack scenario, both policies, identical command streams and rows."""
    fast, ref = run_pair("attack", 0, 2, instructions=1500, warmup_ns=1000.0)
    assert_equivalent(fast, ref)
    assert fast.policy == FrFcfsPolicy.name
    assert ref.policy == ReferenceFrFcfsPolicy.name
