"""Property tests for the incremental FR-FCFS candidate cache.

The fast policy's correctness rests on one invariant: **a bank whose
cached entry is still live (not dirtied, not expired) would produce the
same decision if re-walked from scratch.**  These tests pin the two
halves of that invariant:

* *exact dirtiness* — each mutation (enqueue, dequeue, command issue,
  verdict-epoch rotation) invalidates exactly the affected bank(s),
  never more, never fewer;
* *never-stale* — a randomized workout drives a real controller with
  an epoch-style blocking mechanism and, after every step, re-derives
  every still-cached bank decision with a fresh, cache-free oracle and
  demands equality.

The oracle here is deliberately trivial (hit > oldest-safe > idle); the
full scheduling equivalence, timing included, is pinned by
``tests/test_differential_scheduler.py``.
"""

from __future__ import annotations

import pytest

from repro.dram.address import bank_key
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.mem.controller import MemoryController
from repro.mem.queues import RequestQueue
from repro.mem.request import Request, RequestKind
from repro.mem.scheduler import _HIT, _IDLE, _ROW, FrFcfsPolicy
from repro.mitigations.base import MitigationMechanism, NoMitigation
from repro.utils.rng import DeterministicRng

NO_BLOCK = frozenset()


def make_request(bank=0, row=0, write=False, thread=0):
    kind = RequestKind.WRITE if write else RequestKind.READ
    from repro.dram.address import DecodedAddress

    return Request(thread, kind, DecodedAddress(0, bank, row, 0), arrival=0.0)


class EpochBlocker(MitigationMechanism):
    """Blocks a per-epoch pseudo-random set of (bank, row) pairs until
    the epoch boundary — the epoch-style verdict shape (BlockHammer's
    CBF rotation) the cache's expiry protocol is built around.

    Within an epoch verdicts are frozen, so ``act_block_stable`` is the
    epoch end; rotation is the only en-masse verdict change.
    """

    name = "epoch-blocker"

    def __init__(self, epoch_ns: float = 50.0, block_fraction: float = 0.4) -> None:
        super().__init__()
        self.epoch_ns = epoch_ns
        self.block_fraction = block_fraction
        self.queries = 0

    def _epoch(self, now: float) -> int:
        return int(now // self.epoch_ns)

    @property
    def act_block_stable(self) -> float:
        return self._stable

    _stable = 0.0

    def on_time_advance(self, now: float) -> None:
        self._stable = (self._epoch(now) + 1) * self.epoch_ns

    def _blocked(self, bank: int, row: int, now: float) -> bool:
        rng = DeterministicRng(self._epoch(now)).fork(f"b{bank}-r{row}")
        return rng.uniform() < self.block_fraction

    def act_allowed_at(self, rank, bank, row, thread, now):
        self.queries += 1
        if self._blocked(bank, row, now):
            return (self._epoch(now) + 1) * self.epoch_ns
        return now


@pytest.fixture
def device(small_spec):
    return DramDevice(small_spec)


def prime(queue, device, mitigation=None, now=0.0):
    """One select call populates the candidate cache."""
    FrFcfsPolicy().select(queue, device, mitigation or NoMitigation(), now, NO_BLOCK)
    return dict(queue.bank_cache)


# ----------------------------------------------------------------------
# Exact dirtiness.
# ----------------------------------------------------------------------
def test_push_invalidates_exactly_the_affected_bank(device):
    queue = RequestQueue(16)
    for bank in (0, 1, 2):
        queue.push(make_request(bank=bank, row=bank))
    before = prime(queue, device)
    assert set(before) == {bank_key(0, 0), bank_key(0, 1), bank_key(0, 2)}
    queue.push(make_request(bank=1, row=9))
    assert bank_key(0, 1) not in queue.bank_cache
    assert queue.bank_cache[bank_key(0, 0)] == before[bank_key(0, 0)]
    assert queue.bank_cache[bank_key(0, 2)] == before[bank_key(0, 2)]


def test_remove_invalidates_exactly_the_affected_bank(device):
    queue = RequestQueue(16)
    victim = make_request(bank=2, row=7)
    for request in (make_request(bank=0), make_request(bank=1), victim):
        queue.push(request)
    before = prime(queue, device)
    queue.remove(victim)
    assert bank_key(0, 2) not in queue.bank_cache
    assert queue.bank_cache[bank_key(0, 0)] == before[bank_key(0, 0)]
    assert queue.bank_cache[bank_key(0, 1)] == before[bank_key(0, 1)]


def test_explicit_bank_and_rank_invalidation():
    queue = RequestQueue(16)
    entries = {bank_key(0, 0): ("x",), bank_key(0, 3): ("y",), bank_key(1, 2): ("z",)}
    queue.bank_cache.update(entries)
    queue.invalidate_bank(bank_key(0, 3))
    assert set(queue.bank_cache) == {bank_key(0, 0), bank_key(1, 2)}
    queue.invalidate_rank(0)
    assert set(queue.bank_cache) == {bank_key(1, 2)}
    queue.invalidate_all()
    assert not queue.bank_cache


def test_issued_command_dirties_exactly_its_bank_in_both_queues(small_spec, device):
    controller = MemoryController(small_spec, device)
    controller.enqueue(make_request(bank=0, row=5), 0.0)
    controller.enqueue(make_request(bank=1, row=6), 0.0)
    controller.enqueue(make_request(bank=1, row=6, write=True), 0.0)
    controller.step(0.0)  # issues ACT to bank 0 (oldest decider)
    assert device.bank(0, 0).open_row == 5
    # Bank 0's cached decision is void in both queues; bank 1's read-
    # queue entry (cached by the same select) survives untouched.
    assert bank_key(0, 0) not in controller.read_queue.bank_cache
    assert bank_key(0, 0) not in controller.write_queue.bank_cache
    assert bank_key(0, 1) in controller.read_queue.bank_cache


def test_refresh_dirties_the_whole_rank(small_spec, device):
    controller = MemoryController(small_spec, device)
    for bank in range(small_spec.banks_per_rank):
        controller.read_queue.bank_cache[bank_key(0, bank)] = ("stale",)
    controller._invalidate_rank(0)
    assert not controller.read_queue.bank_cache


# ----------------------------------------------------------------------
# Verdict-epoch expiry.
# ----------------------------------------------------------------------
def test_epoch_rotation_expires_cached_verdict_entries(device):
    mech = EpochBlocker(epoch_ns=50.0, block_fraction=1.0)  # block everything
    mech.on_time_advance(0.0)
    queue = RequestQueue(16)
    queue.push(make_request(bank=0, row=3))
    policy = FrFcfsPolicy()
    sel = policy.select(queue, device, mech, 0.0, NO_BLOCK)
    assert sel.command is None
    entry = queue.bank_cache[bank_key(0, 0)]
    assert entry[0] == _IDLE
    assert entry[4] <= 50.0  # expires no later than the epoch boundary
    queries_before = mech.queries
    # Within the epoch: the cached verdict is trusted, no re-query.
    policy.select(queue, device, mech, 10.0, NO_BLOCK)
    assert mech.queries == queries_before
    # Past the boundary the entry is expired: the bank is re-walked.
    mech.on_time_advance(60.0)
    policy.select(queue, device, mech, 60.0, NO_BLOCK)
    assert mech.queries > queries_before


def test_rowblocker_rotation_advances_verdict_epoch_and_horizon():
    from repro.core.config import BlockHammerConfig
    from repro.core.rowblocker import RowBlocker

    config = BlockHammerConfig.for_nrh(32768)
    rb = RowBlocker(config, num_ranks=1, banks_per_rank=2, rows_per_bank=64)
    assert rb.verdict_epoch == 0
    horizon = rb.next_rotate
    rb.maybe_rotate(horizon + 1.0)
    assert rb.verdict_epoch == 1
    assert rb.next_rotate > horizon


def test_never_blocking_mechanism_caches_forever(device):
    queue = RequestQueue(16)
    queue.push(make_request(bank=0, row=3))
    mech = NoMitigation()
    assert mech.never_blocks
    prime(queue, device, mech)
    entry = queue.bank_cache[bank_key(0, 0)]
    assert entry[0] == _ROW
    assert entry[4] > 1.0e29  # never expires; only dirtying re-walks


# ----------------------------------------------------------------------
# Randomized never-stale property.
# ----------------------------------------------------------------------
def _oracle(bank_requests, open_row, mech, now):
    """Cache-free re-derivation of a bank's decision (hit > oldest-safe
    row decider > idle), bypassing every cached verdict."""
    if open_row is not None:
        for req in bank_requests:
            if req.row == open_row:
                return (_HIT, req)
    for req in bank_requests:
        if mech.act_allowed_at(req.rank, req.bank, req.row, req.thread, now) <= now:
            return (_ROW, req)
    return (_IDLE, None)


def test_random_workout_never_leaves_a_stale_live_entry(small_spec, device):
    """Drive a real controller (random enqueues, real command issue,
    epoch rotations) and after every step re-check every *live* cached
    entry against the oracle.  Entries past their expiry instant are
    exempt: the policy re-walks them before trusting them."""
    mech = EpochBlocker(epoch_ns=40.0, block_fraction=0.4)
    mech.on_time_advance(0.0)
    controller = MemoryController(small_spec, device, mitigation=mech)
    rng = DeterministicRng(99).fork("workout")
    now = 0.0
    checked = 0
    for _ in range(400):
        now += rng.uniform() * 6.0
        if rng.uniform() < 0.7:
            request = make_request(
                bank=rng.randint(0, small_spec.banks_per_rank - 1),
                row=rng.randint(0, 7),
                write=rng.uniform() < 0.3,
            )
            controller.enqueue(request, now)
        controller.step(now)
        for queue in (controller.read_queue, controller.write_queue):
            for key, entry in queue.bank_cache.items():
                if now >= entry[4]:
                    continue  # expired: will be re-walked before use
                bank = device.flat_banks[key]
                tag, req = _oracle(queue.by_bank[key], bank.open_row, mech, now)
                checked += 1
                assert entry[0] == tag, (key, now, entry)
                if tag != _IDLE:
                    assert entry[1] is req, (key, now, entry)
                if tag == _ROW:
                    expected = (
                        CommandKind.ACT if bank.open_row is None else CommandKind.PRE
                    )
                    assert entry[2] is expected
    assert checked > 200  # the workout genuinely exercised live entries


def test_multi_rank_scan_mode_does_not_grow_heaps(small_spec):
    """Multi-rank devices route to the every-bank scan permanently; the
    scan must not push wake/expiry heap items it will never drain."""
    from dataclasses import replace

    spec2 = replace(small_spec, ranks=2)
    device2 = DramDevice(spec2)
    mech = EpochBlocker(epoch_ns=40.0, block_fraction=0.3)
    mech.on_time_advance(0.0)
    controller = MemoryController(spec2, device2, mitigation=mech)
    rng = DeterministicRng(7).fork("multirank")
    now = 0.0
    for _ in range(300):
        now += rng.uniform() * 5.0
        if rng.uniform() < 0.7:
            from repro.dram.address import DecodedAddress

            request = Request(
                0,
                RequestKind.READ,
                DecodedAddress(
                    rng.randint(0, 1),
                    rng.randint(0, spec2.banks_per_rank - 1),
                    rng.randint(0, 7),
                    0,
                ),
                arrival=now,
            )
            controller.enqueue(request, now)
        controller.step(now)
    for queue in (controller.read_queue, controller.write_queue):
        assert all(len(heap) == 0 for heap in queue.wake_heaps)
        assert len(queue.expiry_heap) == 0
        # Scan-touched banks stay dirty (bounded by the bank count) so
        # a single-rank resume would re-track them.
        assert len(queue.dirty) <= spec2.ranks * spec2.banks_per_rank
