"""Unit tests for the memory controller."""

import pytest

from repro.dram.address import DecodedAddress
from repro.dram.device import DramDevice
from repro.mem.controller import ControllerConfig, MemoryController
from repro.mem.request import Request, RequestKind, ServiceClass
from repro.mitigations.base import MitigationMechanism
from repro.utils.validation import ConfigError

_NEVER = 1.0e30


def make_controller(spec, mitigation=None, num_threads=2, config=None):
    device = DramDevice(spec)
    return MemoryController(
        spec, device, mitigation, config=config, num_threads=num_threads
    )


def make_request(thread=0, bank=0, row=0, col=0, write=False):
    kind = RequestKind.WRITE if write else RequestKind.READ
    return Request(thread, kind, DecodedAddress(0, bank, row, col), arrival=0.0)


def drive(controller, until_ns, start=0.0):
    """Step the controller until ``until_ns`` (or it goes fully idle)."""
    now = start
    while now < until_ns:
        wake = controller.step(now)
        if wake >= _NEVER:
            break
        now = max(wake, now + 0.01)
    return now


def test_read_completes_with_callback(small_spec):
    controller = make_controller(small_spec)
    completions = []
    controller.on_request_complete = lambda req, t: completions.append((req, t))
    request = make_request(row=3)
    assert controller.enqueue(request, 0.0)
    drive(controller, 2000.0)
    assert len(completions) == 1
    done_request, done_time = completions[0]
    assert done_request is request
    expected = small_spec.tRCD + small_spec.tCL + small_spec.tBL
    assert done_time >= expected
    assert request.service_class is ServiceClass.MISS


def test_row_hit_classification(small_spec):
    controller = make_controller(small_spec)
    controller.on_request_complete = lambda req, t: None
    first = make_request(row=3, col=0)
    second = make_request(row=3, col=1)
    controller.enqueue(first, 0.0)
    drive(controller, 500.0)  # opens row 3
    controller.enqueue(second, 500.0)
    drive(controller, 2000.0, start=500.0)
    assert first.service_class is ServiceClass.MISS
    assert second.service_class is ServiceClass.HIT
    stats = controller.thread_stats[0]
    assert stats.row_misses == 1 and stats.row_hits == 1


def test_conflict_classification(small_spec):
    controller = make_controller(small_spec)
    controller.on_request_complete = lambda req, t: None
    first = make_request(row=3)
    conflict = make_request(row=9)
    controller.enqueue(first, 0.0)
    drive(controller, 500.0)
    controller.enqueue(conflict, 500.0)
    drive(controller, 3000.0, start=500.0)
    assert conflict.service_class is ServiceClass.CONFLICT


def test_queue_capacity_backpressure(small_spec):
    controller = make_controller(
        small_spec,
        config=ControllerConfig(
            read_queue_depth=2,
            write_queue_depth=2,
            write_drain_high=2,
            write_drain_low=1,
        ),
    )
    assert controller.enqueue(make_request(row=1), 0.0)
    assert controller.enqueue(make_request(row=2), 0.0)
    rejected = make_request(row=3)
    assert not controller.enqueue(rejected, 0.0)
    assert controller.thread_stats[0].blocked_injections == 1


def test_quota_enforcement(small_spec):
    class OneInflight(MitigationMechanism):
        def max_inflight(self, thread, rank, bank):
            return 1 if thread == 0 else None

    controller = make_controller(small_spec, OneInflight())
    assert controller.enqueue(make_request(thread=0, row=1), 0.0)
    assert not controller.enqueue(make_request(thread=0, row=2), 0.0)
    # Other threads and other banks are unaffected.
    assert controller.enqueue(make_request(thread=1, row=2), 0.0)
    assert controller.enqueue(make_request(thread=0, bank=1, row=2), 0.0)


def test_total_quota_enforcement(small_spec):
    class TotalTwo(MitigationMechanism):
        def max_inflight_total(self, thread):
            return 2 if thread == 0 else None

    controller = make_controller(small_spec, TotalTwo())
    assert controller.enqueue(make_request(thread=0, bank=0, row=1), 0.0)
    assert controller.enqueue(make_request(thread=0, bank=1, row=1), 0.0)
    assert not controller.enqueue(make_request(thread=0, bank=2, row=1), 0.0)
    assert controller.enqueue(make_request(thread=1, bank=2, row=1), 0.0)


def test_refresh_issued_when_due(small_spec):
    controller = make_controller(small_spec)
    drive(controller, small_spec.tREFI * 2.5)
    assert sum(controller.refresh.refreshes_issued) >= 2


def test_refresh_drains_open_banks(small_spec):
    controller = make_controller(small_spec)
    controller.on_request_complete = lambda req, t: None
    controller.enqueue(make_request(row=3), 0.0)
    drive(controller, small_spec.tREFI * 1.5)
    assert controller.device.counts.ref >= 1
    # The bank was precharged for the REF.
    assert controller.device.counts.pre >= 1


def test_victim_refresh_executes(small_spec):
    class OneVref(MitigationMechanism):
        def __init__(self):
            super().__init__()
            self.queued = False

        def on_activate(self, rank, bank, row, thread, now):
            if not self.queued:
                self.queue_victim_refresh(rank, bank, row + 1)
                self.queued = True

    mechanism = OneVref()
    controller = make_controller(small_spec, mechanism)
    controller.on_request_complete = lambda req, t: None
    controller.enqueue(make_request(row=3), 0.0)
    drive(controller, 5000.0)
    assert controller.vref_count == 1
    assert controller.device.counts.vref == 1


def test_write_drain_hysteresis(small_spec):
    config = ControllerConfig(
        read_queue_depth=64, write_queue_depth=64, write_drain_high=4, write_drain_low=1
    )
    controller = make_controller(small_spec, config=config)
    controller.on_request_complete = lambda req, t: None
    for i in range(4):
        controller.enqueue(make_request(row=i, bank=i % 2, write=True), 0.0)
    controller.enqueue(make_request(row=9), 0.0)
    drive(controller, 5000.0)
    assert controller.device.counts.wr == 4
    assert controller.device.counts.rd == 1


def test_invalid_controller_config():
    with pytest.raises(ConfigError):
        ControllerConfig(write_drain_high=10, write_drain_low=20)


def test_thread_stats_avg_latency(small_spec):
    controller = make_controller(small_spec)
    controller.on_request_complete = lambda req, t: None
    controller.enqueue(make_request(row=1), 0.0)
    drive(controller, 2000.0)
    stats = controller.thread_stats[0]
    assert stats.read_latency_count == 1
    assert stats.avg_read_latency > small_spec.tCL
    assert stats.row_hit_rate == 0.0
