"""Unit tests for the RowHammer disturbance model."""

import pytest

from repro.dram.rowhammer import DisturbanceModel, DisturbanceProfile
from repro.utils.validation import ConfigError


def make_model(nrh=10, blast=1, decay=0.5, rows=100):
    profile = DisturbanceProfile(nrh=nrh, blast_radius=blast, decay=decay)
    return DisturbanceModel(profile, rows=rows, rank=0, bank=0)


def test_impact_factors():
    profile = DisturbanceProfile(nrh=100, blast_radius=3, decay=0.5)
    assert profile.impact(1) == 1.0
    assert profile.impact(2) == 0.5
    assert profile.impact(3) == 0.25
    assert profile.impact(4) == 0.0
    assert profile.impact(0) == 0.0
    assert profile.impact_sum() == pytest.approx(1.75)


def test_paper_worst_case_profile():
    profile = DisturbanceProfile.paper_worst_case()
    assert profile.blast_radius == 6
    # Eq. 3 denominator: NRH* = 0.2539 NRH for this profile.
    nrh_star_ratio = 1.0 / (2.0 * profile.impact_sum())
    assert nrh_star_ratio == pytest.approx(0.2539, abs=1e-3)


def test_adjacent_rows_accumulate_disturbance():
    model = make_model(nrh=10)
    for _ in range(5):
        model.on_activate(50, now=0.0)
    assert model.disturbance_of(49) == 5.0
    assert model.disturbance_of(51) == 5.0
    assert model.disturbance_of(50) == 0.0
    assert model.disturbance_of(48) == 0.0  # outside blast radius 1


def test_bitflip_at_threshold():
    model = make_model(nrh=10)
    flips = []
    for i in range(12):
        flips += model.on_activate(50, now=float(i))
    assert len(model.bitflips) == 2  # rows 49 and 51
    assert {f.physical_row for f in model.bitflips} == {49, 51}
    assert all(f.disturbance >= 10 for f in model.bitflips)


def test_one_flip_record_per_victim_per_refresh_period():
    model = make_model(nrh=3)
    for _ in range(10):
        model.on_activate(50, now=0.0)
    assert len([f for f in model.bitflips if f.physical_row == 49]) == 1
    model.on_refresh_row(49)
    for _ in range(5):
        model.on_activate(50, now=1.0)
    assert len([f for f in model.bitflips if f.physical_row == 49]) == 2


def test_refresh_resets_disturbance():
    model = make_model(nrh=10)
    for _ in range(5):
        model.on_activate(50, now=0.0)
    model.on_refresh_row(49)
    assert model.disturbance_of(49) == 0.0
    assert model.disturbance_of(51) == 5.0


def test_refresh_range_small_and_large_paths():
    model = make_model(nrh=100, rows=100)
    for _ in range(5):
        model.on_activate(50, now=0.0)
        model.on_activate(10, now=0.0)
    # Large-count path (scans tracked rows).
    model.on_refresh_range(0, 60)
    assert model.disturbance_of(49) == 0.0
    assert model.disturbance_of(51) == 0.0
    assert model.disturbance_of(9) == 0.0
    # Small-count path (walks the range).
    for _ in range(5):
        model.on_activate(80, now=0.0)
    model.on_refresh_range(79, 3)
    assert model.disturbance_of(79) == 0.0
    assert model.disturbance_of(81) == 0.0


def test_refresh_range_wraparound():
    model = make_model(nrh=100, rows=100)
    model.on_activate(0, now=0.0)  # disturbs row 1 (and clips at -1)
    model.on_activate(99, now=0.0)  # disturbs row 98
    model.on_refresh_range(98, 4)  # covers 98, 99, 0, 1
    assert model.disturbance_of(1) == 0.0
    assert model.disturbance_of(98) == 0.0


def test_blast_radius_decay():
    model = make_model(nrh=100, blast=3, decay=0.5)
    model.on_activate(50, now=0.0)
    assert model.disturbance_of(49) == 1.0
    assert model.disturbance_of(48) == 0.5
    assert model.disturbance_of(47) == 0.25
    assert model.disturbance_of(46) == 0.0


def test_edge_rows_clip():
    model = make_model(nrh=100, blast=2)
    model.on_activate(0, now=0.0)
    assert model.disturbance_of(1) == 1.0
    assert model.disturbance_of(2) == 0.5
    assert model.tracked_rows() == 2


def test_max_disturbance():
    model = make_model(nrh=100)
    assert model.max_disturbance() == 0.0
    for _ in range(7):
        model.on_activate(50, now=0.0)
    assert model.max_disturbance() == 7.0


def test_invalid_profile_rejected():
    with pytest.raises(ConfigError):
        DisturbanceProfile(nrh=0)
    with pytest.raises(ConfigError):
        DisturbanceProfile(blast_radius=0)
    with pytest.raises(ConfigError):
        DisturbanceProfile(decay=0.0)
