"""The OS governor subsystem (repro.os): invariants and plumbing.

Governor invariants (ISSUE 5):

* a killed thread issues **zero** requests after its kill timestamp;
* a migrated thread accrues RHLI only on its quarantine channel after
  the migration;
* quota decay/recovery is monotone between strike epochs (strictly
  non-increasing while suspect, non-decreasing while recovering).

Plus the telemetry protocol (duck-typed across mechanisms), the
GovernorSpec factory, and the disabled-governor default costing
nothing (pinned globally by the golden-fixture suites).
"""

from __future__ import annotations

import pytest

from repro.core.blockhammer import BlockHammer
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.mitigations.graphene import Graphene
from repro.os import (
    Governor,
    GovernorSpec,
    KillPolicy,
    MigratePolicy,
    QuotaScalePolicy,
    ThreadTelemetry,
    build_governor,
)
from repro.os.telemetry import TelemetrySample
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.validation import ConfigError
from repro.workloads.attacks import double_sided_attack
from repro.workloads.generator import build_benign_trace
from repro.workloads.profiles import profile_by_name


def build_system(
    small_spec,
    governor,
    channels: int = 1,
    attack_channels=None,
    mechanism_factory=BlockHammer,
):
    """One attacker (thread 0) plus one benign thread under blockhammer,
    mirroring the ``blockhammer-os`` test rig but with a *system-level*
    governor."""
    spec = small_spec.with_channels(channels) if channels > 1 else small_spec
    mapping = AddressMapping(spec, MappingScheme.MOP)
    attack = double_sided_attack(
        spec, mapping, victim_row=64, banks=[0, 1], channels=attack_channels
    )
    benign = build_benign_trace(
        profile_by_name("429.mcf"), spec, mapping, seed=4, row_offset=1024
    )
    config = SystemConfig(
        spec=spec,
        num_channels=channels,
        disturbance=DisturbanceProfile(nrh=128),
    )
    return System(
        config,
        [attack, benign],
        mitigation_factory=mechanism_factory,
        governor=governor,
    )


# ----------------------------------------------------------------------
# Invariant 1: a killed thread issues zero requests after the kill.
# ----------------------------------------------------------------------
def test_killed_thread_issues_zero_requests_after_kill(small_spec):
    governor = Governor(
        [KillPolicy(kill_rhli=0.03, patience_epochs=1)], epoch_ns=10_000.0
    )
    system = build_system(small_spec, governor)
    result = system.run(instructions_per_thread=[None, 40_000])

    assert governor.killed == {0}
    (kill_thread, kill_time), = governor.kill_log
    assert kill_thread == 0
    attacker = system.cores[0]
    assert attacker.descheduled_at == kill_time
    # The load-bearing invariant: the issue counter froze at the kill.
    assert attacker.requests_issued == attacker.requests_at_deschedule
    # The benign thread was untouched and completed normally.
    assert 1 not in governor.killed
    assert system.cores[1].descheduled_at is None
    assert result.total_bitflips == 0


def test_killed_thread_does_not_gate_completion(small_spec):
    """A system-level kill stamps the core finished so runs with an
    instruction target on the killed thread still terminate."""
    governor = Governor(
        [KillPolicy(kill_rhli=0.03, patience_epochs=1)], epoch_ns=10_000.0
    )
    system = build_system(small_spec, governor)
    # The attacker carries a target it can never reach once killed.
    result = system.run(instructions_per_thread=[100_000_000, 40_000])
    assert governor.killed == {0}
    assert system.cores[0].finish_time is not None
    assert result.threads[1].instructions >= 40_000


# ----------------------------------------------------------------------
# Invariant 2: a migrated thread accrues RHLI only on its quarantine
# channel (after the migration).
# ----------------------------------------------------------------------
class SnapshottingGovernor(Governor):
    """Records per-channel attacker RHLI at the first review after the
    migration at which the attacker has *no request still in flight* on
    its original channel.  Requests enqueued before the move may
    legally activate blacklisted rows much later (RowBlocker paces them
    by tDelay — tens of microseconds here), so the invariant is "no
    accrual after the old channel drains", not "none after the
    migration instant"."""

    snapshot: list[float] | None = None

    def _review(self, now: float) -> None:
        if self.migrations and self.snapshot is None:
            old_channel = self._system.controllers[0]
            if old_channel._inflight_per_thread.get(0, 0) == 0:
                self.snapshot = [
                    mechanism.thread_max_rhli(0)
                    for mechanism in self._system.memsys.mitigations
                ]
        super()._review(now)


def test_migrated_thread_accrues_rhli_only_on_quarantine_channel(small_spec):
    governor = SnapshottingGovernor(
        [MigratePolicy(suspect_score=0.01, patience_epochs=1, quarantine_channel=1)],
        epoch_ns=10_000.0,
    )
    # Attacker confined to channel 0 of 2 until the governor moves it.
    # The benign target is generous: the attacker must have time to be
    # re-blacklisted on the quarantine channel after the move, and the
    # governor needs at least one post-migration review epoch.
    system = build_system(small_spec, governor, channels=2, attack_channels=[0])
    system.run(instructions_per_thread=[None, 150_000])

    assert governor.migrations == {0: 1}
    assert system.cores[0].repinned_channel == 1
    settled = governor.snapshot  # taken once the old channel drained
    assert settled is not None, "run too short: channel 0 never drained"
    after = [m.thread_max_rhli(0) for m in system.memsys.mitigations]
    # Channel 0 (the original home) accrued nothing after its queue
    # drained; the attack pressure re-emerged on the quarantine channel
    # only.
    assert settled[0] > 0.0  # it *was* hammering channel 0 before
    assert after[0] == settled[0]
    assert after[1] > 0.0
    # The benign thread was not migrated.
    assert system.cores[1].repinned_channel is None


def test_migrate_rejects_out_of_range_quarantine_channel(small_spec):
    governor = Governor(
        [MigratePolicy(suspect_score=0.01, quarantine_channel=7)],
        epoch_ns=10_000.0,
    )
    system = build_system(small_spec, governor, channels=2, attack_channels=[0])
    with pytest.raises(ConfigError):
        system.run(instructions_per_thread=[None, 40_000])


# ----------------------------------------------------------------------
# Invariant 3: quota decay/recovery is monotone between strike epochs.
# ----------------------------------------------------------------------
def _sample(score: float) -> TelemetrySample:
    return TelemetrySample(
        now=0.0,
        epoch=0,
        num_channels=1,
        threads=[ThreadTelemetry(thread=0, rhli=score)],
    )


def test_quota_scale_monotone_decay_then_recovery():
    policy = QuotaScalePolicy(
        suspect_score=0.5, decay=0.5, recovery=2.0, min_scale=1.0 / 16.0
    )
    sink = Governor([policy], epoch_ns=1.0)  # detached sink: records only

    decays = []
    for _ in range(8):
        policy.review(_sample(0.9), sink)
        decays.append(policy.scale(0))
    assert decays == sorted(decays, reverse=True)  # non-increasing
    assert decays[-1] == 1.0 / 16.0  # floored, never zero

    recoveries = []
    for _ in range(8):
        policy.review(_sample(0.0), sink)
        recoveries.append(policy.scale(0))
    assert recoveries == sorted(recoveries)  # non-decreasing
    assert recoveries[-1] == 1.0  # capped at unthrottled
    # Every logged update corresponds to an actual scale transition.
    sequence = [1.0] + decays + recoveries
    transitions = sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)
    assert sink.quota_updates == transitions


def test_quota_scale_applies_to_core_mlp(small_spec):
    governor = Governor(
        [QuotaScalePolicy(suspect_score=0.01, decay=0.5)], epoch_ns=10_000.0
    )
    system = build_system(small_spec, governor)
    system.run(instructions_per_thread=[None, 40_000])
    assert governor.quota_scale.get(0, 1.0) < 1.0
    attacker = system.cores[0]
    assert attacker._mlp_limit < attacker.params.max_outstanding
    assert attacker._mlp_limit >= 1  # never fully unschedulable
    benign = system.cores[1]
    assert benign._mlp_limit == benign.params.max_outstanding


# ----------------------------------------------------------------------
# Telemetry protocol: duck-typed across mechanisms.
# ----------------------------------------------------------------------
def test_mechanism_telemetry_duck_typing(small_spec):
    governor = Governor([KillPolicy(kill_rhli=0.03)], epoch_ns=10_000.0)
    system = build_system(small_spec, governor)
    system.run(instructions_per_thread=[None, 40_000])
    sample = system.memsys.os_telemetry(now=0.0)
    assert [row.thread for row in sample.threads] == [0, 1]
    assert sample.threads[0].rhli is not None
    assert sample.threads[1].rhli == 0.0  # benign threads sit at 0
    assert sample.blacklisted_acts > 0

    reactive = build_system(small_spec, None, mechanism_factory=Graphene)
    reactive.run(instructions_per_thread=[None, 20_000])
    sample = reactive.memsys.os_telemetry(now=0.0)
    assert all(row.rhli is None for row in sample.threads)
    assert sample.blacklisted_acts == 0
    # No RHLI and no quota rejections (graphene never throttles at the
    # source): every thread scores exactly 0, so a governor above a
    # reactive baseline never fires — queue-full backpressure, which
    # *does* happen under load, must not read as suspicion.
    assert all(row.suspect_score == 0.0 for row in sample.threads)


def test_suspect_score_fallback_math():
    tracked = ThreadTelemetry(thread=0, rhli=0.7, quota_blocked=99, requests=1)
    assert tracked.suspect_score == 0.7  # RHLI wins when tracked
    untracked = ThreadTelemetry(
        thread=0, rhli=None, quota_blocked=30, blocked_injections=500, requests=70
    )
    assert untracked.suspect_score == pytest.approx(0.3)
    # Queue-full rejections alone are load, not suspicion.
    backpressured = ThreadTelemetry(
        thread=0, rhli=None, blocked_injections=500, requests=70
    )
    assert backpressured.suspect_score == 0.0
    idle = ThreadTelemetry(thread=0, rhli=None)
    assert idle.suspect_score == 0.0


# ----------------------------------------------------------------------
# GovernorSpec factory and guard rails.
# ----------------------------------------------------------------------
def test_governor_spec_factory():
    assert build_governor(None) is None
    for policy, cls in (
        ("kill", KillPolicy),
        ("quota", QuotaScalePolicy),
        ("migrate", MigratePolicy),
    ):
        governor = build_governor(GovernorSpec(policy=policy, epoch_ns=5.0))
        assert isinstance(governor.policies[0], cls)
        assert governor.epoch_ns == 5.0
    killer = build_governor(
        GovernorSpec(policy="kill", threshold=0.25, patience_epochs=3)
    )
    assert killer.policies[0].kill_rhli == 0.25
    assert killer.policies[0].patience_epochs == 3


def test_governor_spec_multi_policy():
    governor = build_governor(
        GovernorSpec(policy="quota+kill", epoch_ns=5.0, threshold=0.1)
    )
    assert [type(p) for p in governor.policies] == [QuotaScalePolicy, KillPolicy]
    assert governor.policies[0].suspect_score == 0.1
    assert governor.policies[1].kill_rhli == 0.1


def test_governor_spec_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        GovernorSpec(policy="reboot")
    with pytest.raises(ConfigError):
        GovernorSpec(policy="kill+reboot")


def test_governor_rejects_double_binding(small_spec):
    governor = Governor([KillPolicy()], epoch_ns=1.0)
    governor.bind_mechanism(BlockHammer(), epoch_ns=1.0)
    with pytest.raises(ConfigError):
        governor.attach(object())


def test_mechanism_coupled_governor_rejects_core_acting_policies():
    """Quota and migrate act on cores; a mechanism-coupled governor
    cannot enforce them and must refuse rather than log fabricated
    actions."""
    for policy in (QuotaScalePolicy(), MigratePolicy()):
        governor = Governor([policy], epoch_ns=1.0)
        with pytest.raises(ConfigError):
            governor.bind_mechanism(BlockHammer(), epoch_ns=1.0)


def test_policy_parameter_validation():
    with pytest.raises(ConfigError):
        KillPolicy(kill_rhli=0.0)
    with pytest.raises(ConfigError):
        KillPolicy(patience_epochs=0)
    with pytest.raises(ConfigError):
        QuotaScalePolicy(decay=1.5)
    with pytest.raises(ConfigError):
        QuotaScalePolicy(recovery=0.5)
    with pytest.raises(ConfigError):
        MigratePolicy(suspect_score=-1.0)
    with pytest.raises(ConfigError):
        Governor([], epoch_ns=0.0)


# ----------------------------------------------------------------------
# Strike bookkeeping (the normalized review-cadence edges).
# ----------------------------------------------------------------------
def test_kill_policy_drops_strike_state_for_killed_threads():
    policy = KillPolicy(kill_rhli=0.5, patience_epochs=2)
    sink = Governor([policy], epoch_ns=1.0)
    policy.review(_sample(0.9), sink)
    assert policy.strikes(0) == 1
    policy.review(_sample(0.9), sink)
    assert sink.killed == {0}
    assert policy.strikes(0) == 0  # no retained entry for the dead thread
    policy.review(_sample(0.9), sink)  # further reviews skip killed threads
    assert policy.strikes(0) == 0
    assert len(sink.kill_log) == 1


def test_review_clock_anchors_to_first_observed_time():
    governor = Governor([KillPolicy(kill_rhli=0.5)], epoch_ns=100.0)
    governor.bind_mechanism(BlockHammer(), epoch_ns=100.0)
    # First observation at t=250 (a nonzero attach time): the first
    # review lands one epoch later, not at the stale attach-relative
    # t=100/t=200 instants.
    assert governor.advance(250.0) == 350.0
    assert governor.epochs == 0
