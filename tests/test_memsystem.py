"""The channel-sharded memory system.

Two load-bearing properties:

1. **Single-channel bit-identity** — ``num_channels=1`` must reproduce
   the pre-refactor simulator exactly.  ``tests/golden_fig5.json`` was
   captured from the pre-MemorySystem code (the canonical Figure 5 sweep
   at a tier-1-sized configuration plus one raw attack-mix SimResult);
   every value is compared for float-exact equality.
2. **Channel isolation** — a multi-channel system runs one controller +
   device shard + mitigation instance per channel (distinct objects,
   independently-populated state) and reports both aggregate and
   per-channel statistics that are consistent with each other.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.harness.experiments import fig5_multicore
from repro.harness.runner import HarnessConfig, Runner
from repro.mem.memsystem import MemorySystem
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.validation import ConfigError
from repro.workloads.mixes import attack_mixes

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_fig5.json").read_text()
)


@pytest.fixture(scope="module")
def golden_hcfg() -> HarnessConfig:
    cfg = GOLDEN["config"]
    return HarnessConfig(
        scale=cfg["scale"],
        paper_nrh=cfg["paper_nrh"],
        instructions_per_thread=cfg["instructions_per_thread"],
        warmup_ns=cfg["warmup_ns"],
    )


@pytest.fixture(scope="module")
def hcfg2() -> HarnessConfig:
    """A 2-channel configuration, tier-1 sized."""
    return HarnessConfig(
        scale=128.0, instructions_per_thread=4_000, warmup_ns=5_000.0, num_channels=2
    )


# ----------------------------------------------------------------------
# 1. Single-channel bit-identity against pre-refactor golden values.
# ----------------------------------------------------------------------
def test_single_channel_fig5_rows_bit_identical_to_golden(golden_hcfg):
    rows = fig5_multicore(
        golden_hcfg, GOLDEN["num_mixes"], GOLDEN["mechanisms"], workers=1
    )
    got = [
        {
            "mix": r.mix,
            "scenario": r.scenario,
            "mechanism": r.mechanism,
            "metrics": dataclasses.asdict(r.metrics),
            "norm": dataclasses.asdict(r.norm),
            "norm_energy": r.norm_energy,
            "bitflips": r.bitflips,
            "victim_refreshes": r.victim_refreshes,
        }
        for r in rows
    ]
    assert got == GOLDEN["rows"]


def test_single_channel_raw_simresult_bit_identical_to_golden(golden_hcfg):
    outcome = Runner(golden_hcfg).run_mix(attack_mixes(1)[0], "blockhammer")
    res = outcome.result
    g = GOLDEN["attack_mix_blockhammer_simresult"]
    assert res.mitigation == g["mitigation"]
    assert res.elapsed_ns == g["elapsed_ns"]
    assert dataclasses.asdict(res.counts) == g["counts"]
    assert res.active_time_ns == g["active_time_ns"]
    assert res.refreshes == g["refreshes"]
    assert res.victim_refreshes == g["victim_refreshes"]
    assert res.commands_issued == g["commands_issued"]
    assert len(res.bitflips) == g["bitflips"]
    assert outcome.energy.total_j == g["energy_total_j"]
    for thread, gt in zip(res.threads, g["threads"]):
        assert thread.instructions == gt["instructions"]
        assert thread.finish_time_ns == gt["finish_time_ns"]
        assert thread.ipc == gt["ipc"]
        mem = thread.mem
        for field in (
            "reads",
            "writes",
            "row_hits",
            "row_misses",
            "row_conflicts",
            "activations",
            "read_latency_sum",
            "read_latency_count",
            "blocked_injections",
        ):
            assert getattr(mem, field) == gt[field], field
    # Single-channel runs still report one per-channel row (equal to the
    # aggregate) and no redundant per-thread channel split.
    assert len(res.channels) == 1
    assert res.channels[0].counts == res.counts
    assert res.threads[0].mem_per_channel == []


# ----------------------------------------------------------------------
# 2. Multi-channel sharding.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def outcome2(hcfg2):
    return Runner(hcfg2).run_mix(attack_mixes(1)[0], "blockhammer")


def test_per_channel_mitigation_instances_distinct_with_state(outcome2):
    mechanisms = outcome2.mechanisms
    assert len(mechanisms) == 2
    assert len({id(m) for m in mechanisms}) == 2
    # Both instances observed their own channel's traffic: state was
    # populated independently, not mirrored through a shared object.
    for mechanism in mechanisms:
        assert mechanism.delay_stats().total_acts > 0
    assert mechanisms[0].delay_stats() is not mechanisms[1].delay_stats()
    assert mechanisms[0].rowblocker is not mechanisms[1].rowblocker
    assert mechanisms[0].throttler is not mechanisms[1].throttler


def test_both_channels_carry_traffic_and_aggregate_sums(outcome2):
    res = outcome2.result
    assert len(res.channels) == 2
    for ch in res.channels:
        assert ch.counts.act > 0
        assert ch.counts.rd > 0
    assert res.counts.act == sum(ch.counts.act for ch in res.channels)
    assert res.counts.rd == sum(ch.counts.rd for ch in res.channels)
    assert res.counts.ref == sum(ch.counts.ref for ch in res.channels)
    assert res.refreshes == sum(ch.refreshes for ch in res.channels)
    assert res.victim_refreshes == sum(ch.victim_refreshes for ch in res.channels)
    assert res.commands_issued == sum(ch.commands_issued for ch in res.channels)
    # channel-major rank active time: channels x ranks entries.
    assert len(res.active_time_ns) == 2 * len(res.channels[0].active_time_ns)


def test_per_thread_stats_merge_across_channels(outcome2):
    res = outcome2.result
    for thread in res.threads:
        assert len(thread.mem_per_channel) == 2
        assert thread.mem.reads == sum(m.reads for m in thread.mem_per_channel)
        assert thread.mem.activations == sum(
            m.activations for m in thread.mem_per_channel
        )
        assert thread.mem.read_latency_count == sum(
            m.read_latency_count for m in thread.mem_per_channel
        )


def test_channel_attack_covers_every_channel(hcfg2):
    """The channel-aware attack hammers aggressor rows on every channel
    round-robin, so each per-channel mitigation sees the attack."""
    outcome = Runner(hcfg2).run_mix(attack_mixes(1)[0], "none")
    attacker = outcome.result.threads[0]
    acts = [m.activations for m in attacker.mem_per_channel]
    assert all(a > 0 for a in acts)


def test_refresh_phase_staggered_and_deterministic(hcfg2):
    from repro.mitigations.base import NoMitigation

    def build():
        config = SystemConfig(
            spec=hcfg2.spec(),
            num_channels=2,
            disturbance=hcfg2.disturbance(),
            seed=hcfg2.seed,
        )
        return MemorySystem(config, num_threads=1, mitigation_factory=NoMitigation)

    a, b = build(), build()
    phases_a = [c.refresh.phase_offset_ns for c in a.controllers]
    phases_b = [c.refresh.phase_offset_ns for c in b.controllers]
    # Channel 0 keeps the canonical phase; channel 1 is offset within
    # one tREFI; offsets are a pure function of the seed.
    assert phases_a[0] == 0.0
    assert 0.0 < phases_a[1] < hcfg2.spec().tREFI
    assert phases_a == phases_b


def test_harness_num_channels_defers_to_spec():
    """num_channels=None must not override a multi-channel base spec
    (mirroring SystemConfig's None-defers-to-spec semantics)."""
    from repro.dram.spec import DDR4_2400

    hcfg = HarnessConfig(base_spec=DDR4_2400.with_channels(2))
    assert hcfg.channels == 2
    assert hcfg.spec().channels == 2
    assert hcfg.system_config().channels == 2
    override = HarnessConfig(base_spec=DDR4_2400.with_channels(2), num_channels=1)
    assert override.spec().channels == 1


def test_shared_mitigation_instance_rejected_for_multi_channel(hcfg2):
    from repro.core.blockhammer import BlockHammer

    config = SystemConfig(
        spec=hcfg2.spec(), num_channels=2, disturbance=hcfg2.disturbance()
    )
    mix = attack_mixes(1)[0]
    traces = mix.build_traces(hcfg2.spec(), hcfg2.mapping(), seed=1)
    with pytest.raises(ConfigError):
        System(config, traces, mitigation=BlockHammer())


def test_requests_route_to_their_channel(hcfg2):
    """Every request a channel's controller served targeted that
    channel (the devices only ever see their own shard's rows)."""
    outcome = Runner(hcfg2).run_mix(attack_mixes(1)[0], "none")
    res = outcome.result
    total_reads = sum(t.mem.reads for t in res.threads)
    per_channel_reads = sum(
        m.reads for t in res.threads for m in t.mem_per_channel
    )
    assert total_reads == per_channel_reads > 0
