"""Unit tests for the hardware cost model (Table 4)."""

import pytest

from repro.core.config import BlockHammerConfig
from repro.hwcost.mechanisms import (
    CPU_DIE_AREA_MM2,
    blockhammer_cost,
    mechanism_cost,
    table4_rows,
)
from repro.hwcost.models import CamModel, SramModel


def test_sram_calibration_anchor():
    """48 KB SRAM reproduces the paper's D-CBF anchor point."""
    cost = SramModel.cost(48 * 1024 * 8)
    assert cost.area_mm2 == pytest.approx(0.11, rel=1e-6)
    assert cost.access_energy_pj == pytest.approx(18.11, rel=1e-6)
    assert cost.static_power_mw == pytest.approx(19.81, rel=1e-6)


def test_cam_calibration_anchor():
    """5.22 KB CAM reproduces the paper's Graphene anchor point."""
    bits = int(5.22 * 1024 * 8)
    cost = CamModel.cost(bits)
    assert cost.area_mm2 == pytest.approx(0.04, rel=1e-2)
    assert cost.access_energy_pj == pytest.approx(40.67, rel=1e-2)
    assert cost.static_power_mw == pytest.approx(3.11, rel=1e-2)


def test_zero_bits_zero_cost():
    assert SramModel.cost(0).area_mm2 == 0.0
    assert CamModel.cost(0).static_power_mw == 0.0


def test_cam_costs_more_per_bit_than_sram():
    assert CamModel.AREA_MM2_PER_BIT > SramModel.AREA_MM2_PER_BIT
    sram = SramModel.cost(10_000)
    cam = CamModel.cost(10_000)
    assert cam.area_mm2 > sram.area_mm2


def test_blockhammer_32k_area_fraction_small():
    cost = blockhammer_cost(32768)
    # Paper: ~0.06% CPU area; our model lands in the same ballpark.
    assert cost.cpu_area_percent < 0.5
    assert 40 < cost.sram_kb < 80  # ~52 KB of SRAM structures


def test_blockhammer_cost_computed_from_config():
    config = BlockHammerConfig.for_nrh(32768)
    cost = blockhammer_cost(32768, config=config)
    dcbf_bits = 2 * config.cbf_size * config.counter_bits * 16
    assert cost.sram.bits > dcbf_bits  # D-CBF plus HB plus throttler


def test_scaling_to_1k_matches_paper_shape():
    """Table 4's key scaling claims at NRH = 1K."""
    bh = mechanism_cost("blockhammer", 1024)
    twice = mechanism_cost("twice", 1024)
    cbt = mechanism_cost("cbt", 1024)
    graphene = mechanism_cost("graphene", 1024)
    # TWiCe and CBT area blow up to multiples of BlockHammer's.
    assert twice.total_area_mm2 > 2.0 * bh.total_area_mm2
    assert cbt.total_area_mm2 > 1.5 * bh.total_area_mm2
    # Graphene's access energy is many times BlockHammer's (paper: 9.2x).
    assert graphene.access_energy_pj > 4.0 * bh.access_energy_pj


def test_probabilistic_mechanisms_nearly_free():
    para = mechanism_cost("para", 32768)
    prohit = mechanism_cost("prohit", 32768)
    assert para.total_area_mm2 == 0.0
    assert prohit.total_area_mm2 < 0.01


def test_fixed_design_points_not_scalable():
    assert mechanism_cost("prohit", 1024) is None
    assert mechanism_cost("mrloc", 1024) is None
    assert mechanism_cost("prohit", 32768) is not None


def test_twice_cbt_scale_inversely_with_nrh():
    for name in ("twice", "cbt"):
        at_32k = mechanism_cost(name, 32768)
        at_1k = mechanism_cost(name, 1024)
        assert at_1k.sram_kb == pytest.approx(32 * at_32k.sram_kb, rel=0.01)


def test_table4_rows_complete():
    rows = table4_rows()
    names_32k = [r.name for r in rows if r.nrh == 32768]
    names_1k = [r.name for r in rows if r.nrh == 1024]
    assert len(names_32k) == 7
    # PRoHIT/MRLoc drop out at 1K (the paper's "x" cells).
    assert set(names_1k) == {"blockhammer", "para", "cbt", "twice", "graphene"}


def test_unknown_mechanism_rejected():
    with pytest.raises(ValueError):
        mechanism_cost("nonsense", 32768)


def test_cpu_area_reference():
    assert CPU_DIE_AREA_MM2 > 100
