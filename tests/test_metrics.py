"""Unit tests for multiprogrammed performance metrics."""

import pytest

from repro.metrics.speedup import (
    MultiprogramMetrics,
    compute_metrics,
    harmonic_speedup,
    maximum_slowdown,
    weighted_speedup,
)
from repro.utils.validation import ConfigError


def test_no_interference_is_identity():
    shared = {0: 1.0, 1: 2.0}
    alone = {0: 1.0, 1: 2.0}
    assert weighted_speedup(shared, alone) == pytest.approx(2.0)
    assert harmonic_speedup(shared, alone) == pytest.approx(1.0)
    assert maximum_slowdown(shared, alone) == pytest.approx(1.0)


def test_uniform_halving():
    shared = {0: 0.5, 1: 1.0}
    alone = {0: 1.0, 1: 2.0}
    assert weighted_speedup(shared, alone) == pytest.approx(1.0)
    assert harmonic_speedup(shared, alone) == pytest.approx(0.5)
    assert maximum_slowdown(shared, alone) == pytest.approx(2.0)


def test_max_slowdown_tracks_worst_thread():
    shared = {0: 0.9, 1: 0.1}
    alone = {0: 1.0, 1: 1.0}
    assert maximum_slowdown(shared, alone) == pytest.approx(10.0)


def test_zero_shared_ipc_handled():
    shared = {0: 0.0}
    alone = {0: 1.0}
    assert harmonic_speedup(shared, alone) == 0.0
    assert maximum_slowdown(shared, alone) == float("inf")


def test_mismatched_threads_rejected():
    with pytest.raises(ConfigError):
        weighted_speedup({0: 1.0}, {1: 1.0})
    with pytest.raises(ConfigError):
        weighted_speedup({}, {})
    with pytest.raises(ConfigError):
        weighted_speedup({0: 1.0}, {0: 0.0})  # alone IPC must be positive


def test_compute_and_normalize():
    metrics = compute_metrics({0: 0.5}, {0: 1.0})
    baseline = MultiprogramMetrics(1.0, 1.0, 1.0)
    normalized = metrics.normalized_to(baseline)
    assert normalized.weighted_speedup == pytest.approx(0.5)
    assert normalized.maximum_slowdown == pytest.approx(2.0)


def test_weighted_speedup_bounded_by_thread_count():
    shared = {i: 1.0 for i in range(8)}
    alone = {i: 1.0 for i in range(8)}
    assert weighted_speedup(shared, alone) == pytest.approx(8.0)
