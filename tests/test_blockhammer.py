"""Integration tests for the BlockHammer mechanism (Section 3)."""

import pytest

from repro.core.blockhammer import BlockHammer
from repro.core.config import BlockHammerConfig
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.spec import scaled_threshold
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.attacks import double_sided_attack
from repro.dram.address import AddressMapping, MappingScheme


def build_attack_system(small_spec, mechanism, nrh=128):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = double_sided_attack(small_spec, mapping, victim_row=64, banks=[0, 1])
    config = SystemConfig(
        spec=small_spec, disturbance=DisturbanceProfile(nrh=nrh, blast_radius=1)
    )
    return System(config, [trace], mechanism)


def test_unprotected_attack_flips_bits(small_spec):
    system = build_attack_system(small_spec, None)
    result = system.run(instructions_per_thread=40_000)
    assert result.total_bitflips > 0


def test_blockhammer_prevents_all_bitflips(small_spec):
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism)
    result = system.run(instructions_per_thread=40_000)
    assert result.total_bitflips == 0


def test_blockhammer_attack_act_rate_bounded(small_spec):
    """Combined victim disturbance never reaches NRH: each aggressor is
    capped at NRH* = NRH/2 (Eq. 3), so even both aggressors of a
    double-sided attack together stay below the flip threshold."""
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism)
    result = system.run(instructions_per_thread=40_000)
    max_disturbance = max(
        system.device.model(0, b).max_disturbance()
        for b in range(small_spec.banks_per_rank)
    )
    assert max_disturbance < mechanism.config.nrh
    assert result.total_bitflips == 0


def test_config_derived_from_context(small_spec):
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism, nrh=128)
    assert mechanism.config.nrh == 128
    assert mechanism.config.nbl == 32
    # Derived, not the explicit-config path.
    assert mechanism.rowblocker is not None
    assert mechanism.throttler is not None


def test_explicit_config_respected(small_spec):
    config = BlockHammerConfig.for_nrh(scaled_threshold(32768, 64), small_spec)
    mechanism = BlockHammer(config=config)
    build_attack_system(small_spec, mechanism)
    assert mechanism.config is config


def test_observe_only_never_interferes(small_spec):
    observe = BlockHammer(observe_only=True)
    system = build_attack_system(small_spec, observe)
    result = system.run(instructions_per_thread=30_000)
    # Attack proceeds unthrottled (bit-flips happen!) but RHLI is measured.
    assert result.total_bitflips > 0
    assert observe.thread_max_rhli(0) > 1.0
    assert observe.name == "blockhammer-observe"


def test_full_mode_keeps_rhli_below_one(small_spec):
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism)
    system.run(instructions_per_thread=30_000)
    assert mechanism.thread_max_rhli(0) <= 1.0


def test_table6_properties():
    mechanism = BlockHammer()
    assert mechanism.comprehensive_protection
    assert mechanism.commodity_compatible
    assert mechanism.scales_with_vulnerability
    assert mechanism.deterministic_protection


def test_blockhammer_issues_no_victim_refreshes(small_spec):
    """BlockHammer never needs the adjacency oracle (Section 9 prop 2)."""
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism)
    result = system.run(instructions_per_thread=30_000)
    assert result.victim_refreshes == 0


def test_delay_stats_exposed(small_spec):
    mechanism = BlockHammer()
    system = build_attack_system(small_spec, mechanism)
    system.run(instructions_per_thread=30_000)
    stats = mechanism.delay_stats()
    assert stats.total_acts > 0
    assert stats.delayed_acts > 0  # the attack was throttled
