"""Chaos tests for the fault-tolerant sweep executor.

The contract under test: a sweep that hits worker crashes, hangs, or
corrupted cache entries must converge to rows **bit-identical** to a
fault-free run (jobs are pure functions of their key, so a retry is a
replay), and an interrupted sweep must resume from its checkpoints,
re-executing only the jobs that never finished.

Faults are injected deterministically via :mod:`repro.harness.faults`
(a picklable plan evaluated inside workers), never by monkeypatching
the executor — the production dispatch/retry/checkpoint code runs
unmodified.  Pool-based tests skip when the sandbox cannot spawn
process pools (``parallel.pool_available()``); the serial degradations
(`SimulatedCrash`, checkpoint-then-``KeyboardInterrupt``) run anywhere.
"""

from __future__ import annotations

import pickle

import pytest

from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.harness.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrash,
    corrupt_cache_entry,
    crash_once,
    hang_once,
)
from repro.harness.parallel import (
    JobExecutionError,
    JobFailure,
    SweepReport,
    failed,
    job_executions,
    run_jobs,
    single_job,
)
from repro.harness.retry import (
    DEFAULT_RETRIES,
    ExecPolicy,
    jitter_fraction,
    resolve_policy,
)
from repro.harness.runner import HarnessConfig

needs_pool = pytest.mark.skipif(
    not parallel.pool_available(), reason="process pools unavailable in sandbox"
)

#: Fast retries for tests: three attempts, near-zero backoff.
FAST = ExecPolicy(attempts=3, backoff_base_s=0.01, backoff_max_s=0.05)


@pytest.fixture(scope="module")
def hcfg() -> HarnessConfig:
    """Small enough that a 4-job sweep runs in well under a second."""
    return HarnessConfig(
        scale=128.0, instructions_per_thread=1_500, warmup_ns=1_000.0
    )


@pytest.fixture(scope="module")
def jobs(hcfg):
    apps = ["403.gcc", "401.bzip2", "445.gobmk", "458.sjeng"]
    return [single_job(hcfg, app, "none") for app in apps]


@pytest.fixture(scope="module")
def fault_free(jobs):
    """Reference rows from a clean serial run (no faults, no cache)."""
    return run_jobs(jobs, workers=1)


def assert_identical(results, reference):
    assert set(results) == set(reference)
    for key, ref in reference.items():
        got = results[key]
        assert not failed(got)
        assert got.result == ref.result
        assert got.energy == ref.energy


# ----------------------------------------------------------------------
# Retry policy unit tests.
# ----------------------------------------------------------------------
def test_backoff_grows_and_caps():
    policy = ExecPolicy(backoff_base_s=0.1, backoff_max_s=0.3, jitter=0.0)
    delays = [policy.backoff_delay(("k",), a) for a in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.3, 0.3, 0.3]


def test_jitter_is_deterministic_and_bounded():
    key = ("single", "403.gcc", "none")
    assert jitter_fraction(key, 1) == jitter_fraction(key, 1)
    assert jitter_fraction(key, 1) != jitter_fraction(key, 2)
    for attempt in range(1, 20):
        assert 0.0 <= jitter_fraction(key, attempt) < 1.0
    policy = ExecPolicy(backoff_base_s=0.1, backoff_max_s=10.0, jitter=0.25)
    delay = policy.backoff_delay(key, 1)
    assert 0.1 <= delay <= 0.1 * 1.25
    assert delay == policy.backoff_delay(key, 1)  # reproducible


def test_may_retry_budget_and_deadline():
    policy = ExecPolicy(attempts=3, retry_deadline_s=10.0)
    assert policy.may_retry(1, 0.0) and policy.may_retry(2, 9.9)
    assert not policy.may_retry(3, 0.0)  # attempt budget exhausted
    assert not policy.may_retry(1, 10.1)  # deadline exceeded


def test_policy_validation():
    with pytest.raises(ValueError):
        ExecPolicy(attempts=0)
    with pytest.raises(ValueError):
        ExecPolicy(jitter=-0.1)
    with pytest.raises(ValueError):
        ExecPolicy(job_timeout_s=0.0)
    with pytest.raises(ValueError):
        ExecPolicy(on_error="explode")


def test_resolve_policy_reads_environment(monkeypatch):
    from repro.harness.retry import JOB_TIMEOUT_ENV, ON_ERROR_ENV, RETRIES_ENV

    assert resolve_policy(None).attempts == DEFAULT_RETRIES + 1
    monkeypatch.setenv(RETRIES_ENV, "5")
    monkeypatch.setenv(JOB_TIMEOUT_ENV, "2.5")
    monkeypatch.setenv(ON_ERROR_ENV, "skip")
    policy = resolve_policy(None)
    assert policy.attempts == 6  # retries + the first attempt
    assert policy.job_timeout_s == 2.5
    assert policy.on_error == "skip"
    # Explicit policies pass through; on_error override replaces.
    assert resolve_policy(FAST) is FAST
    assert resolve_policy(FAST, on_error="skip").on_error == "skip"
    monkeypatch.setenv(RETRIES_ENV, "many")
    with pytest.raises(ValueError):
        resolve_policy(None)


# ----------------------------------------------------------------------
# Fault plan unit tests.
# ----------------------------------------------------------------------
def test_fault_spec_matching(jobs):
    spec = FaultSpec(match="401.bzip2", action="error", attempts=(1, 3))
    assert spec.applies(jobs[1], 1) and spec.applies(jobs[1], 3)
    assert not spec.applies(jobs[1], 2)  # attempt not listed
    assert not spec.applies(jobs[0], 1)  # key does not match
    always = FaultSpec(match="401.bzip2", action="error", attempts=None)
    assert all(always.applies(jobs[1], a) for a in (1, 2, 7))


def test_fault_plan_is_picklable_and_validates(jobs):
    plan = FaultPlan(
        (
            FaultSpec(match="403.gcc", action="crash"),
            FaultSpec(match="445.gobmk", action="hang", seconds=9.0),
        )
    )
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.spec_for(jobs[0], 1).action == "crash"
    assert clone.spec_for(jobs[0], 2) is None  # crash_once-style default
    with pytest.raises(ValueError):
        FaultSpec(match="x", action="segfault")
    with pytest.raises(ValueError):
        FaultSpec(match="x", action="hang", seconds=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(match="x", action="crash", attempts=(0,))


def test_error_fault_raises_in_process(jobs):
    plan = FaultPlan((FaultSpec(match="403.gcc", action="error"),))
    with pytest.raises(InjectedFault):
        plan.apply(jobs[0], 1, in_process=True)
    plan.apply(jobs[1], 1, in_process=True)  # non-matching: no-op


# ----------------------------------------------------------------------
# Chaos: crash / hang / timeout recovery through the real pool.
# ----------------------------------------------------------------------
@needs_pool
@pytest.mark.chaos_smoke
def test_worker_crash_retries_to_identical_rows(jobs, fault_free):
    """A worker that dies mid-job (os._exit inside the child) breaks the
    pool; the executor rebuilds it, replays the victim, and the sweep
    still produces bit-identical rows."""
    report = SweepReport()
    results = run_jobs(
        jobs,
        workers=2,
        policy=FAST,
        faults=crash_once("401.bzip2"),
        report=report,
    )
    assert_identical(results, fault_free)
    assert report.crashes >= 1 and report.retries >= 1
    assert not report.failures


@needs_pool
@pytest.mark.chaos_smoke
def test_hang_hits_timeout_then_retry_succeeds(jobs, fault_free):
    """A first-attempt hang trips the per-job wall-clock timeout; the
    hung worker is killed and the retry (fault expired) converges."""
    policy = ExecPolicy(
        attempts=3, backoff_base_s=0.01, backoff_max_s=0.05, job_timeout_s=1.5
    )
    report = SweepReport()
    results = run_jobs(
        jobs,
        workers=2,
        policy=policy,
        faults=hang_once("445.gobmk", seconds=60.0),
        report=report,
    )
    assert_identical(results, fault_free)
    assert report.timeouts == 1
    assert not report.failures


@needs_pool
@pytest.mark.chaos_smoke
def test_persistent_hang_exhausts_attempts_and_skips(jobs, fault_free):
    """A job that hangs on *every* attempt burns its budget and lands as
    a structured timeout failure under on_error='skip'; innocent jobs
    sharing the pool still complete with correct rows."""
    plan = FaultPlan(
        (FaultSpec(match="458.sjeng", action="hang", attempts=None, seconds=60.0),)
    )
    policy = ExecPolicy(
        attempts=2, backoff_base_s=0.01, backoff_max_s=0.05, job_timeout_s=1.0
    )
    report = SweepReport()
    results = run_jobs(
        jobs, workers=2, policy=policy, on_error="skip", faults=plan, report=report
    )
    failures = [entry for entry in results.values() if failed(entry)]
    assert len(failures) == 1
    assert isinstance(failures[0], JobFailure)
    assert failures[0].kind == "timeout" and failures[0].attempts == 2
    assert report.timeouts == 2 and report.failures == failures
    good = {k: v for k, v in results.items() if not failed(v)}
    for key, entry in good.items():
        assert entry.result == fault_free[key].result


@needs_pool
@pytest.mark.chaos_smoke
def test_crash_exit_code_is_the_documented_one():
    """The injected crash kills the worker with CRASH_EXIT_CODE — proof
    the chaos plan executes inside the child, not in the parent."""
    import concurrent.futures as cf
    import multiprocessing as mp

    ctx = mp.get_context("spawn") if hasattr(mp, "get_context") else mp
    proc = ctx.Process(target=__import__("os")._exit, args=(CRASH_EXIT_CODE,))
    proc.start()
    proc.join()
    assert proc.exitcode == CRASH_EXIT_CODE
    assert issubclass(cf.process.BrokenProcessPool, cf.BrokenExecutor)


def test_exhausted_crash_raises_by_default(jobs):
    """on_error='raise' (the default) surfaces a JobExecutionError that
    names every failed job; serial crashes degrade to SimulatedCrash."""
    plan = FaultPlan((FaultSpec(match="458.sjeng", action="crash", attempts=None),))
    policy = ExecPolicy(attempts=2, backoff_base_s=0.01, backoff_max_s=0.05)
    with pytest.raises(JobExecutionError) as excinfo:
        run_jobs(jobs, workers=1, policy=policy, faults=plan)
    [failure] = excinfo.value.failures
    assert failure.kind == "crash" and failure.attempts == 2
    assert "SimulatedCrash" in failure.error


def test_serial_crash_skip_still_checkpoints_good_jobs(tmp_path, jobs, fault_free):
    """on_error='skip' on the serial path: the failing job becomes a
    JobFailure row, every other job lands in the cache."""
    cache = ResultCache(tmp_path)
    plan = FaultPlan((FaultSpec(match="401.bzip2", action="crash", attempts=None),))
    policy = ExecPolicy(attempts=2, backoff_base_s=0.01, backoff_max_s=0.05)
    report = SweepReport()
    results = run_jobs(
        jobs, workers=1, policy=policy, on_error="skip",
        faults=plan, cache=cache, report=report,
    )
    assert cache.stores == len(jobs) - 1
    assert report.crashes == 2  # one per attempt
    failures = [entry for entry in results.values() if failed(entry)]
    assert len(failures) == 1 and failures[0].kind == "crash"


def test_serial_transient_crash_recovers(jobs, fault_free):
    """First-attempt crash on the serial path (SimulatedCrash) retries
    in-process and converges to identical rows."""
    report = SweepReport()
    results = run_jobs(
        jobs, workers=1, policy=FAST, faults=crash_once("403.gcc"), report=report
    )
    assert_identical(results, fault_free)
    assert report.crashes == 1 and report.retries == 1


# ----------------------------------------------------------------------
# Chaos: cache corruption and interrupted-sweep resume.
# ----------------------------------------------------------------------
@pytest.mark.chaos_smoke
def test_corrupt_cache_entry_quarantined_and_resimulated(tmp_path, jobs, fault_free):
    cache = ResultCache(tmp_path)
    run_jobs(jobs, workers=1, cache=cache)
    assert cache.stores == len(jobs)
    corrupt_cache_entry(cache, jobs[1])

    before = job_executions()
    warm = ResultCache(tmp_path)
    results = run_jobs(jobs, workers=1, cache=warm)
    assert job_executions() - before == 1  # only the corrupted job re-runs
    assert warm.corrupt == 1 and warm.hits == len(jobs) - 1
    assert_identical(results, fault_free)
    # Quarantined out of the lookup namespace, rewritten on re-store.
    assert len(list(tmp_path.glob("*.corrupt"))) == 1
    assert warm.stores == 1
    fresh = ResultCache(tmp_path)
    run_jobs(jobs, workers=1, cache=fresh)
    assert fresh.hits == len(jobs) and fresh.corrupt == 0


@pytest.mark.chaos_smoke
def test_truncated_cache_entry_quarantined(tmp_path, jobs):
    cache = ResultCache(tmp_path)
    run_jobs(jobs, workers=1, cache=cache)
    corrupt_cache_entry(cache, jobs[2], mode="truncate")
    warm = ResultCache(tmp_path)
    before = job_executions()
    run_jobs(jobs, workers=1, cache=warm)
    assert job_executions() - before == 1
    assert warm.corrupt == 1


@pytest.mark.chaos_smoke
def test_interrupted_sweep_resumes_from_checkpoints(tmp_path, jobs, fault_free):
    """Ctrl-C mid-sweep: completed jobs are already on disk, and the
    rerun executes only the jobs that never finished."""
    cache = ResultCache(tmp_path)
    plan = FaultPlan((FaultSpec(match="445.gobmk", action="interrupt"),))
    with pytest.raises(KeyboardInterrupt):
        run_jobs(jobs, workers=1, cache=cache, faults=plan)
    assert cache.stores == 2  # gcc and bzip2 landed before the interrupt

    before = job_executions()
    warm = ResultCache(tmp_path)
    results = run_jobs(jobs, workers=1, cache=warm)
    assert job_executions() - before == 2  # only gobmk and sjeng
    assert warm.hits == 2
    assert_identical(results, fault_free)


# ----------------------------------------------------------------------
# Acceptance: the kitchen sink — crash + hang + corrupted cache entry
# in one sweep, bit-identical to the fault-free reference.
# ----------------------------------------------------------------------
@needs_pool
@pytest.mark.chaos_smoke
def test_combined_faults_converge_bit_identical(tmp_path, jobs, fault_free):
    cache = ResultCache(tmp_path)
    run_jobs([jobs[0]], workers=1, cache=cache)  # pre-populate, then corrupt
    corrupt_cache_entry(cache, jobs[0])

    # The hang fires on attempts 1 AND 2: a worker crash (os._exit)
    # breaks the whole pool, so if gobmk happens to be in flight when
    # bzip2 dies, its first attempt is consumed as a collateral crash —
    # which interleaving occurs depends on wall-clock job durations.
    # Arming attempt 2 as well guarantees at least one hang survives to
    # the per-job timeout regardless of scheduling.
    plan = FaultPlan(
        (
            FaultSpec(match="401.bzip2", action="crash", attempts=(1,)),
            FaultSpec(
                match="445.gobmk", action="hang", attempts=(1, 2), seconds=60.0
            ),
        )
    )
    policy = ExecPolicy(
        attempts=3, backoff_base_s=0.01, backoff_max_s=0.05, job_timeout_s=1.5
    )
    report = SweepReport()
    chaotic = ResultCache(tmp_path)
    results = run_jobs(
        jobs, workers=2, policy=policy, faults=plan, cache=chaotic, report=report
    )
    assert_identical(results, fault_free)
    assert chaotic.corrupt == 1  # the poisoned entry was quarantined
    assert report.crashes >= 1 and report.timeouts >= 1
    assert not report.failures and report.completed
    # Everything the sweep recovered is now checkpointed: a fresh run
    # over the same directory performs zero simulations.
    before = job_executions()
    warm = ResultCache(tmp_path)
    rerun = run_jobs(jobs, workers=1, cache=warm)
    assert job_executions() == before
    assert_identical(rerun, fault_free)


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------
def test_sweep_report_rendering(jobs):
    from repro.harness.reporting import format_sweep_report

    report = SweepReport()
    run_jobs(jobs[:2], workers=1, report=report)
    text = format_sweep_report(report)
    assert "2 job(s)" in text and "0 crashes" in text and "0 failed" in text

    report.failures.append(
        JobFailure(key=jobs[0].key, kind="timeout", attempts=3, error="hung")
    )
    text = format_sweep_report(report)
    assert "FAILED [timeout] after 3 attempt(s)" in text


def test_last_report_tracks_most_recent_sweep(jobs):
    run_jobs(jobs[:2], workers=1)
    report = parallel.last_report()
    assert report is not None
    assert report.total == 2 and report.completed
