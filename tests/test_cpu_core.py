"""Unit tests for the bounded-MLP core model."""

import pytest

from repro.cpu.cache import SetAssocCache
from repro.cpu.core import Core, CoreParams
from repro.cpu.trace import ListTrace, TraceRecord
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.device import DramDevice
from repro.mem.controller import MemoryController


class FakeController:
    """Accepts everything; lets tests complete requests manually."""

    def __init__(self, accept=True):
        self.accept = accept
        self.requests = []

    def enqueue(self, request, now):
        if not self.accept:
            return False
        self.requests.append(request)
        return True


def make_core(records, controller=None, params=None, spec=None, llc=None):
    from repro.dram.spec import DDR4_2400

    spec = spec or DDR4_2400
    mapping = AddressMapping(spec, MappingScheme.MOP)
    controller = controller or FakeController()
    core = Core(0, ListTrace(records), controller, mapping, params, llc)
    return core, controller


def test_compute_gap_paces_injection():
    params = CoreParams(freq_ghz=1.0, issue_width=1)  # 1 ns per instruction
    records = [TraceRecord(gap=100, address=0)]
    core, controller = make_core(records, params=params)
    core.instructions_target = 101
    wake = core.wake(0.0)
    # The access cannot issue until its 100 instructions execute.
    assert wake == pytest.approx(100.0)
    assert not controller.requests
    core.wake(100.0)
    assert len(controller.requests) == 1


def test_mlp_limit_blocks_reads():
    params = CoreParams(max_outstanding=2)
    records = [TraceRecord(gap=0, address=i * 64) for i in range(10)]
    core, controller = make_core(records, params=params)
    core.instructions_target = 10
    wake = core.wake(0.0)
    assert wake is None  # blocked on MLP
    assert len(controller.requests) == 2
    core.on_complete(controller.requests[0], 50.0)
    core.wake(50.0)
    assert len(controller.requests) == 3


def test_rejection_backoff_grows():
    params = CoreParams(retry_delay_ns=10.0, retry_backoff_max_ns=80.0)
    records = [TraceRecord(gap=0, address=0)]
    core, controller = make_core(records, FakeController(accept=False), params)
    core.instructions_target = 100
    assert core.wake(0.0) == pytest.approx(10.0)
    assert core.wake(10.0) == pytest.approx(10.0 + 20.0)
    assert core.wake(30.0) == pytest.approx(30.0 + 40.0)


def test_done_requires_outstanding_drain():
    records = [TraceRecord(gap=0, address=0)]
    core, controller = make_core(records)
    core.instructions_target = 1
    core.wake(0.0)
    assert not core.done  # read still outstanding
    core.on_complete(controller.requests[0], 30.0)
    assert core.done
    assert core.finish_time == pytest.approx(30.0)


def test_writes_do_not_occupy_mlp_slots():
    params = CoreParams(max_outstanding=1)
    records = [TraceRecord(gap=0, address=i * 64, is_write=True) for i in range(5)]
    core, controller = make_core(records, params=params)
    core.instructions_target = 5
    core.wake(0.0)
    assert len(controller.requests) == 5
    assert core.done


def test_ipc_measures_span():
    params = CoreParams(freq_ghz=1.0, issue_width=1)
    records = [TraceRecord(gap=9, address=0)]
    core, controller = make_core(records, params=params)
    core.instructions_target = 10
    core.wake(0.0)
    core.wake(9.0)
    core.on_complete(controller.requests[0], 20.0)
    # 10 instructions over 20 ns at 1 GHz = 0.5 IPC.
    assert core.ipc() == pytest.approx(0.5)


def test_reset_measurement_clears_counters():
    records = [TraceRecord(gap=0, address=i * 64) for i in range(100)]
    core, controller = make_core(records)
    core.instructions_target = None
    core.wake(0.0)
    retired_before = core.instructions_retired
    assert retired_before > 0
    core.reset_measurement(100.0, 5)
    assert core.instructions_retired == 0
    assert core.instructions_target == 5
    assert core.measure_start == 100.0


def test_llc_filters_hits():
    llc = SetAssocCache(size_bytes=1024, ways=2, line_bytes=64)
    records = [TraceRecord(gap=0, address=0), TraceRecord(gap=0, address=0)]
    core, controller = make_core(records, llc=llc)
    core.instructions_target = 2
    core.wake(0.0)
    # Second access hits in the LLC: only one memory request.
    assert len(controller.requests) == 1


def test_finite_trace_ends_run():
    records = [TraceRecord(gap=0, address=0)]
    core, controller = make_core(
        [TraceRecord(gap=0, address=0)],
    )
    core.trace = ListTrace(records, loop=False)
    core.instructions_target = 1000
    core.wake(0.0)
    core.on_complete(controller.requests[0], 10.0)
    core.wake(10.0)
    assert core.done
