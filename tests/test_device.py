"""Unit tests for the DRAM device aggregate."""

import pytest

from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.rowmap import ScrambledRowMapping
from repro.dram.spec import DDR4_2400


@pytest.fixture
def device(small_spec):
    return DramDevice(small_spec, disturbance=DisturbanceProfile(nrh=8))


def _open_row(device, rank, bank, row, now=0.0):
    device.issue(Command(CommandKind.ACT, rank, bank, row), now)


def test_act_then_read(device, small_spec):
    _open_row(device, 0, 0, 5)
    cmd = Command(CommandKind.RD, 0, 0, 5, 0)
    t = device.earliest_issue(cmd, 0.0)
    assert t == pytest.approx(small_spec.tRCD)
    device.issue(cmd, t)
    assert device.counts.rd == 1
    assert device.counts.act == 1


def test_data_bus_serializes_reads(device, small_spec):
    _open_row(device, 0, 0, 5, now=0.0)
    _open_row(device, 0, 1, 6, now=small_spec.tRRD)
    t0 = device.earliest_issue(Command(CommandKind.RD, 0, 0, 5, 0), 100.0)
    device.issue(Command(CommandKind.RD, 0, 0, 5, 0), t0)
    # The second read's data must start after the first burst completes.
    t1 = device.earliest_issue(Command(CommandKind.RD, 0, 1, 6, 0), t0)
    assert t1 + small_spec.tCL >= device.bus_free - 1e-9


def test_act_applies_disturbance_through_rowmap(small_spec):
    rowmap = ScrambledRowMapping(small_spec.rows_per_bank, seed=3)
    device = DramDevice(small_spec, rowmap, DisturbanceProfile(nrh=1000))
    device.issue(Command(CommandKind.ACT, 0, 0, 10), 0.0)
    physical = rowmap.to_physical(10)
    model = device.model(0, 0)
    for neighbor in (physical - 1, physical + 1):
        if 0 <= neighbor < small_spec.rows_per_bank:
            assert model.disturbance_of(neighbor) == 1.0


def test_bitflips_surface_from_issue(device, small_spec):
    s = small_spec
    now = 0.0
    flips = []
    for i in range(10):
        flips += device.issue(Command(CommandKind.ACT, 0, 0, 20), now)
        now += s.tRAS
        device.issue(Command(CommandKind.PRE, 0, 0, 20), now)
        now += s.tRP
    assert device.total_bitflips == 2  # rows 19 and 21 at NRH=8
    assert len(device.bitflips) == 2


def test_vref_refreshes_victim(device, small_spec):
    s = small_spec
    now = 0.0
    for _ in range(4):
        device.issue(Command(CommandKind.ACT, 0, 0, 20), now)
        now += s.tRAS
        device.issue(Command(CommandKind.PRE, 0, 0, 20), now)
        now += s.tRP
    assert device.model(0, 0).disturbance_of(21) == 4.0
    device.issue(Command(CommandKind.VREF, 0, 0, 21), now)
    assert device.model(0, 0).disturbance_of(21) == 0.0
    assert device.counts.vref == 1


def test_ref_walks_refresh_groups(device, small_spec):
    model = device.model(0, 0)
    # Disturb a row in the first refresh group.
    device.issue(Command(CommandKind.ACT, 0, 0, 1), 0.0)
    assert model.disturbance_of(0) == 1.0
    device.issue(Command(CommandKind.PRE, 0, 0, 1), small_spec.tRAS)
    device.issue(Command(CommandKind.REF, 0, 0), small_spec.tRAS + small_spec.tRP)
    assert model.disturbance_of(0) == 0.0
    assert device.counts.ref == 1


def test_active_time_integration(device, small_spec):
    s = small_spec
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    device.issue(Command(CommandKind.PRE, 0, 0, 5), s.tRAS)
    device.finalize_active_time(1000.0)
    assert device.active_time[0] == pytest.approx(s.tRAS)


def test_active_time_counts_overlapping_banks_once(device, small_spec):
    s = small_spec
    device.issue(Command(CommandKind.ACT, 0, 0, 5), 0.0)
    device.issue(Command(CommandKind.ACT, 0, 1, 6), s.tRRD)
    device.issue(Command(CommandKind.PRE, 0, 0, 5), s.tRAS)
    device.issue(Command(CommandKind.PRE, 0, 1, 6), s.tRAS + s.tRRD)
    device.finalize_active_time(1000.0)
    # Rank active from 0 to tRAS + tRRD (one interval, not two summed).
    assert device.active_time[0] == pytest.approx(s.tRAS + s.tRRD)


def test_flat_banks_lookup(device):
    assert device.flat_banks[0] is device.bank(0, 0)
    assert device.flat_banks[1] is device.bank(0, 1)
